"""E8 — Trust, integrity and privacy overhead (RQ3).

Claim (paper, RQ3/Challenges): the system must handle "privacy, integrity,
and trust related to intellectual properties" — and doing so costs something.

The benchmark measures what the trust machinery costs and what it buys:

* redundant (k = 2/3) execution versus single execution — latency and bytes;
* a fleet with one malicious executor — how often the wrong result would
  have been accepted without voting versus with it, and how far the liar's
  reputation falls.

The malicious executor is a :class:`repro.faults.adversary.ResultCorruptingLiar`
profile — the same behaviour the fault-injection subsystem assigns fleet-wide
(benchmark E14) — so this benchmark and the subsystem cannot drift apart.
"""

from repro.core.api import AirDnDNode
from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.faults.adversary import ResultCorruptingLiar
from repro.geometry.vector import Vec2
from repro.metrics.report import ResultTable
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator

from benchmarks.conftest import run_once_with_benchmark

TASKS = 12


def build_fleet(seed, with_malicious):
    sim = Simulator(seed=seed)
    environment = RadioEnvironment(sim, LinkBudget())
    registry = FunctionRegistry()
    registry.register(
        FunctionDefinition("answer", lambda p, d: 42, lambda p: 5e7, result_size_bytes=300)
    )
    requester = AirDnDNode(
        sim, environment, StaticNode(sim, Vec2(0, 0), name="requester"), registry
    )
    positions = [(40, 0), (0, 40), (40, 40), (-40, 0)]
    executors = []
    for index, (x, y) in enumerate(positions):
        node = AirDnDNode(
            sim,
            environment,
            StaticNode(sim, Vec2(float(x), float(y)), name=f"exec-{index}"),
            registry,
        )
        if with_malicious and index == 0:
            ResultCorruptingLiar().apply(node)
        executors.append(node)
    sim.run(until=2.0)
    return sim, requester, executors


def run_redundancy(redundancy, with_malicious, seed=81):
    sim, requester, _ = build_fleet(seed, with_malicious)
    lifecycles = []
    for i in range(TASKS):
        sim.schedule(
            i * 0.5,
            lambda: lifecycles.append(requester.submit_function("answer", redundancy=redundancy)),
        )
    sim.run(until=60.0)
    done = [l for l in lifecycles if l.is_terminal]
    correct = [l for l in done if l.succeeded and l.result.value == 42]
    wrong = [l for l in done if l.succeeded and l.result.value != 42]
    latencies = [l.total_latency() for l in done if l.succeeded]
    return {
        "completed": len(done),
        "correct": len(correct),
        "wrong_accepted": len(wrong),
        "mean_latency": sum(latencies) / len(latencies) if latencies else float("nan"),
        "mesh_bytes": sim.monitor.counter_value("radio.bytes_delivered"),
        "liar_reputation": requester.trust.score_of("exec-0"),
    }


def run_all():
    return {
        "single, honest fleet": run_redundancy(1, with_malicious=False),
        "single, 1 malicious": run_redundancy(1, with_malicious=True),
        "k=3 voting, 1 malicious": run_redundancy(3, with_malicious=True),
    }


def test_e8_trust_overhead_and_benefit(benchmark, print_table):
    results = run_once_with_benchmark(benchmark, run_all)

    table = ResultTable(
        "E8  Redundant execution: what integrity costs and buys (12 tasks)",
        ["configuration", "correct results", "wrong results accepted",
         "mean latency [s]", "bytes on mesh", "malicious node reputation"],
    )
    for name, data in results.items():
        table.add_row(name, data["correct"], data["wrong_accepted"], data["mean_latency"],
                      data["mesh_bytes"], data["liar_reputation"])
    print_table(table)

    honest = results["single, honest fleet"]
    exposed = results["single, 1 malicious"]
    protected = results["k=3 voting, 1 malicious"]
    # Without redundancy a malicious executor gets wrong answers accepted.
    assert exposed["wrong_accepted"] > 0
    # Voting eliminates (or at least sharply reduces) accepted wrong answers.
    assert protected["wrong_accepted"] < exposed["wrong_accepted"]
    assert protected["correct"] >= TASKS * 0.7
    # The protection has a measurable cost: more bytes and no better latency.
    assert protected["mesh_bytes"] > honest["mesh_bytes"]
    assert protected["mean_latency"] >= honest["mean_latency"] * 0.9
    # The liar's reputation collapses once voting catches it.
    assert protected["liar_reputation"] < exposed["liar_reputation"] + 1e-9

"""E12 — Multi-dimensional sweep-grid consistency.

The paper's evaluation is a set of ablations over protocol knobs (beacon
period, trust configuration, workload rate), not just fleet size.  The sweep
engine regenerates them from one command, so its seeding discipline *is* the
reproducibility story: a 2-D grid must be nothing more than its 1-D slices
run under the same seeds.

The seed of a (point, repetition) cell is a pure function of the point's flat
row-major index::

    seed = base_seed + flat_index * seed_stride + repetition

so for a grid over (n × beacon_period) with J beacon values, the n-slice at
``beacon_period = b_j`` occupies flat indices ``j, J + j, 2J + j, ...`` — a
1-D n-sweep with ``base_seed + j * stride`` and ``seed_stride = J * stride``
lands on exactly the same seeds.  This benchmark runs the 2-D grid and both
families of 1-D slices and asserts every metric of every repetition matches
point-for-point, plus that the protocol knob actually moves the physics
(beacon traffic grows as the beacon period shrinks).

Metrics can be ``nan`` (e.g. latency percentiles of a point with no completed
tasks); cells are compared nan-aware.
"""

from __future__ import annotations

import math
import os
from typing import List

from repro.experiments.runner import (
    DEFAULT_SEED_STRIDE,
    ExperimentRunner,
    ScenarioRunOnce,
    SweepGrid,
    sweep_scenario_grid,
)
from repro.metrics.report import ResultTable

SMOKE = os.environ.get("E12_SMOKE") == "1"
SCENARIO = "highway"
FLEET_SIZES = [2, 3] if SMOKE else [2, 4, 6]
BEACON_PERIODS = [0.5, 1.0] if SMOKE else [0.2, 0.5, 1.0]
DURATION = 4.0 if SMOKE else 8.0
REPETITIONS = 1 if SMOKE else 2
BASE_SEED = 1000


def _cells_equal(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    return all(
        a[key] == b[key] or (math.isnan(a[key]) and math.isnan(b[key])) for key in a
    )


def _slice_runner(base_seed: int, seed_stride: int) -> ExperimentRunner:
    run_once = ScenarioRunOnce(scenario=SCENARIO, duration=DURATION)
    return ExperimentRunner(
        run_once,
        repetitions=REPETITIONS,
        base_seed=base_seed,
        seed_stride=seed_stride,
    )


def test_two_dimensional_grid_reproduces_its_one_dimensional_slices(print_table):
    grid = SweepGrid({"n": FLEET_SIZES, "beacon_period": BEACON_PERIODS})
    grid_results = sweep_scenario_grid(
        SCENARIO, grid, duration=DURATION, repetitions=REPETITIONS, base_seed=BASE_SEED
    )
    by_params = {
        (point["n"], point["beacon_period"]): result
        for result in grid_results
        for point in [result.point.as_dict()]
    }
    assert len(by_params) == len(FLEET_SIZES) * len(BEACON_PERIODS)
    stride_j = len(BEACON_PERIODS)

    # --- beacon-period slices: contiguous flat indices at each fleet size ----
    for i, n in enumerate(FLEET_SIZES):
        runner = _slice_runner(
            base_seed=BASE_SEED + i * stride_j * DEFAULT_SEED_STRIDE,
            seed_stride=DEFAULT_SEED_STRIDE,
        )
        slice_results = runner.run_grid(
            SweepGrid({"n": [n], "beacon_period": BEACON_PERIODS})
        )
        for result in slice_results:
            params = result.point.as_dict()
            reference = by_params[(params["n"], params["beacon_period"])]
            assert len(result.runs) == len(reference.runs)
            for run, reference_run in zip(result.runs, reference.runs):
                assert _cells_equal(run, reference_run)

    # --- fleet-size slices: strided flat indices at each beacon period -------
    for j, beacon_period in enumerate(BEACON_PERIODS):
        runner = _slice_runner(
            base_seed=BASE_SEED + j * DEFAULT_SEED_STRIDE,
            seed_stride=stride_j * DEFAULT_SEED_STRIDE,
        )
        slice_results = runner.run_grid(
            SweepGrid({"n": FLEET_SIZES, "beacon_period": [beacon_period]})
        )
        for result in slice_results:
            params = result.point.as_dict()
            reference = by_params[(params["n"], params["beacon_period"])]
            for run, reference_run in zip(result.runs, reference.runs):
                assert _cells_equal(run, reference_run)

    # --- the swept knob moves the physics ------------------------------------
    # More frequent beacons (smaller period) mean more mesh traffic at every
    # fleet size; this is the RQ1/RQ3 sensitivity direction the paper argues.
    chattiest, calmest = min(BEACON_PERIODS), max(BEACON_PERIODS)
    for n in FLEET_SIZES:
        assert (
            by_params[(n, chattiest)].mean("mesh_bytes")
            > by_params[(n, calmest)].mean("mesh_bytes")
        )

    table = ResultTable(
        f"E12: {SCENARIO} sweep grid, n × beacon_period "
        f"({REPETITIONS} reps, {DURATION:g} sim-s)",
        ["n", "beacon_period", "mesh_bytes", "tasks_completed", "success_rate"],
    )
    for result in grid_results:
        params = result.point.as_dict()
        table.add_row(
            params["n"],
            params["beacon_period"],
            result.mean("mesh_bytes"),
            result.mean("tasks_completed"),
            result.mean("success_rate"),
        )
    print_table(table)


def test_grid_seeds_are_disjoint_across_points():
    grid = SweepGrid({"n": FLEET_SIZES, "beacon_period": BEACON_PERIODS})
    runner = ExperimentRunner(
        lambda params, seed: {}, repetitions=REPETITIONS, base_seed=BASE_SEED
    )
    seeds: List[int] = [
        runner.seed_for(index, repetition)
        for index in range(len(grid))
        for repetition in range(REPETITIONS)
    ]
    assert len(seeds) == len(set(seeds))

"""E13 — Batched link pipeline + obstacle-indexed visibility benchmark.

After the radio medium was spatially indexed (E11), profiles of urban runs
showed the remaining hot path to be *per-pair* physics: one
``LinkBudget.quality`` call per (sender, receiver) and, inside it, a
line-of-sight test scanning every obstacle polygon.  This benchmark drives
the two optimisations that replaced that path at the fleet size the sweep
engine targets:

* ``use_batched_links`` — per-sender link rows filled by one
  ``quality_batch`` call per position epoch instead of N scalar probes;
* ``use_obstacle_index`` — LOS tests that only touch the obstacle edges
  grid-bucketed along the ray instead of every footprint.

Two checks on a broadcast-heavy urban-grid fleet (N=500, street grid with a
built-up district of occluding buildings):

* **Exact equivalence** — the delivered-frame sequence (time, sender,
  receiver, SNR, rate) and the radio counters are byte-identical at fixed
  seed across **all four** flag combinations.  This is the contract that
  lets the fast paths replace the reference paths outright.
* **Speedup** — wall-clock per simulated second with both optimisations on
  must be ≥ 3× faster than with both reference flags.

Set ``E13_SMOKE=1`` (CI) to shrink the fleet and skip the timing assertion,
which is meaningless on noisy shared runners.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, List, Tuple

from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.metrics.report import ResultTable
from repro.mobility.manager import MobilityManager
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator

SMOKE = os.environ.get("E13_SMOKE") == "1"
N = 60 if SMOKE else 500
DURATION_S = 0.75 if SMOKE else 1.5
SEED = 130
#: Street pitch of the urban grid; nodes sit on the horizontal street lines.
STREET_PITCH_M = 100.0
#: Node spacing along each street.
NODE_STEP_M = 60.0
#: Broadcast-heavy: ~6.7 beacons per node-second.
BEACON_PERIOD_S = 0.15
#: Mobility tick = position epoch length; several broadcasts share each
#: epoch's link rows, as in a real scenario.
TICK_S = 0.75

COUNTERS = (
    "radio.frames_delivered",
    "radio.frames_lost",
    "radio.frames_out_of_range",
    "radio.bytes_delivered",
)


def district_buildings(side: int) -> List[Rectangle]:
    """Occluding footprints for a built-up district in the grid's centre.

    One building per block, 10 m street setback, covering roughly the
    central third of the fleet's extent — enough NLOS geometry to matter,
    small enough that the brute-force reference scan stays runnable.
    """
    rows = range(side // 3, side // 3 + max(2, side // 4))
    cols = range(1, max(3, (side * int(NODE_STEP_M) // int(STREET_PITCH_M)) // 2))
    return [
        Rectangle(
            col * STREET_PITCH_M + 10.0,
            row * STREET_PITCH_M + 10.0,
            (col + 1) * STREET_PITCH_M - 10.0,
            (row + 1) * STREET_PITCH_M - 10.0,
        )
        for row in rows
        for col in cols
    ]


def build_fleet(use_batched_links: bool, use_obstacle_index: bool):
    """N static beaconing nodes on an urban street grid with buildings."""
    sim = Simulator(seed=SEED)
    mobility = MobilityManager(sim, tick=TICK_S, cell_size=2 * STREET_PITCH_M)
    side = max(1, math.ceil(math.sqrt(N)))
    visibility = VisibilityMap(
        district_buildings(side), use_obstacle_index=use_obstacle_index
    )
    environment = RadioEnvironment(
        sim,
        LinkBudget(),
        visibility=visibility,
        mobility=mobility,
        use_batched_links=use_batched_links,
    )
    agents = []
    for index in range(N):
        position = Vec2(
            (index % side) * NODE_STEP_M, (index // side) * STREET_PITCH_M
        )
        node = StaticNode(sim, position, name=f"n-{index:04d}")
        mobility.add_node(node)
        interface = environment.attach(node.name, lambda node=node: node.position)
        agents.append(
            BeaconAgent(
                sim,
                interface,
                state_provider=lambda node=node: (node.position, node.velocity),
                beacon_period=BEACON_PERIOD_S,
            )
        )
    return sim, environment, visibility, agents


def run_combo(
    use_batched_links: bool, use_obstacle_index: bool
) -> Tuple[List[tuple], Dict[str, float], float]:
    sim, environment, visibility, agents = build_fleet(
        use_batched_links, use_obstacle_index
    )
    log: List[tuple] = []
    for agent in agents:
        receiver = agent.interface.node_name
        agent.interface.on_receive(
            lambda frame, quality, receiver=receiver: log.append(
                (sim.now, frame.sender, receiver, quality.snr_db, quality.rate_bps)
            )
        )
    start = time.perf_counter()
    sim.run(until=DURATION_S)
    wall = time.perf_counter() - start
    counters = {name: sim.monitor.counter_value(name) for name in COUNTERS}
    return log, counters, wall


def test_e13_batched_pipeline_is_equivalent_and_faster(print_table):
    # The obstacle field must actually occlude links, or the LOS work (and
    # the equivalence check on the NLOS penalty) would be vacuous.
    _, environment, visibility, _ = build_fleet(True, True)
    positions = [
        environment.interface_of(name).position for name in environment.node_names
    ]
    occluded_pairs = sum(
        1
        for a, b in zip(positions[: N // 2], reversed(positions))
        if a.distance_to(b) < environment.max_range and visibility.is_occluded(a, b)
    )
    assert occluded_pairs > 0

    combos = [(True, True), (True, False), (False, True), (False, False)]
    results = {}
    for batched, indexed in combos:
        results[(batched, indexed)] = run_combo(batched, indexed)

    table = ResultTable(
        f"E13  Batched link pipeline + obstacle index "
        f"(N={N}, {len(visibility.obstacles)} buildings, {DURATION_S:g} sim-s)",
        ["batched links", "obstacle index", "wall [s]", "wall / sim-s", "delivered"],
    )
    for (batched, indexed), (log, counters, wall) in results.items():
        table.add_row(
            batched, indexed, wall, wall / DURATION_S,
            counters["radio.frames_delivered"],
        )
    print_table(table)

    # --- byte-identical delivered-frame sequences across all four combos ---
    reference_log, reference_counters, _ = results[(False, False)]
    assert reference_counters["radio.frames_delivered"] > 0
    for combo in combos[:-1]:
        log, counters, _ = results[combo]
        assert counters == reference_counters, combo
        assert len(log) == len(reference_log), combo
        assert log == reference_log, combo

    # --- the acceptance criterion: >= 3x faster with both paths enabled ---
    if not SMOKE:
        fast = results[(True, True)][2] / DURATION_S
        slow = results[(False, False)][2] / DURATION_S
        assert slow >= 3.0 * fast, (
            f"batched+indexed pipeline only {slow / max(fast, 1e-9):.2f}x faster "
            f"({slow:.3f}s vs {fast:.3f}s per sim-s)"
        )

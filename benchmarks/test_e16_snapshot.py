"""E16 — Snapshot/restore overhead and warm-started sweeps.

Checkpointing is only useful if it is cheap relative to what it saves.  This
benchmark measures both sides of that trade on the urban-grid scenario:

* **Overhead** — wall-clock cost of one ``snapshot()`` + ``restore()`` round
  trip at N = 1000, expressed as a percentage of a 100-simulated-second run.
  The run cost is projected from a short measured run (wall-per-sim-second
  is duration-independent, the same convention E15 uses to bound its
  runtime); the acceptance gate is **< 5 %**.
* **Warm start** — a long-horizon cell resumed from a shared prefix snapshot
  versus simulated cold from t = 0.  The prefix (80 of 100 sim-s) is paid
  once per sweep group and amortised across cells, so the warm cell only
  pays restore + suffix; the acceptance gate is **≥ 2×**.  Byte-identity of
  the warm report against the cold full-horizon run is asserted as a free
  correctness check (the exhaustive matrix lives in
  ``tests/properties/test_property_snapshot.py``).

Results go to ``BENCH_E16.json`` (machine-readable, parsed by the CI smoke
step).  Set ``E16_SMOKE=1`` (CI) to shrink the fleets and skip the timing
gates, which are meaningless on noisy shared runners; the JSON is still
written so the CI artifact/parse path is exercised.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

from repro.experiments.runner import numeric_metrics
from repro.metrics.report import ResultTable
from repro.scenarios import build_scenario
from repro.scenarios.base import Scenario

SMOKE = os.environ.get("E16_SMOKE") == "1"
SEED = 160

#: Overhead measurement: fleet size, measured run length, projected horizon.
OVERHEAD_N = 50 if SMOKE else 1000
OVERHEAD_MEASURED_S = 2.0 if SMOKE else 1.0
OVERHEAD_HORIZON_S = 100.0
OVERHEAD_GATE_PCT = 5.0

#: Warm-start measurement: fleet size, shared prefix, full horizon.
WARM_N = 10 if SMOKE else 60
WARM_PREFIX_S = 6.0 if SMOKE else 80.0
WARM_HORIZON_S = 10.0 if SMOKE else 100.0
WARM_GATE_SPEEDUP = 2.0

OUTPUT_PATH = Path("BENCH_E16.json")


def _build(n: int):
    return build_scenario("urban-grid", n=n, seed=SEED)


def measure_overhead() -> Dict[str, float]:
    """Snapshot + restore cost as a fraction of a long run at OVERHEAD_N."""
    scenario = _build(OVERHEAD_N)
    start = time.perf_counter()
    scenario.run(OVERHEAD_MEASURED_S)
    run_wall = time.perf_counter() - start

    start = time.perf_counter()
    blob = scenario.snapshot()
    snapshot_wall = time.perf_counter() - start

    start = time.perf_counter()
    Scenario.restore(blob)
    restore_wall = time.perf_counter() - start

    wall_per_sim_s = run_wall / OVERHEAD_MEASURED_S
    projected_run_wall = wall_per_sim_s * OVERHEAD_HORIZON_S
    overhead_pct = 100.0 * (snapshot_wall + restore_wall) / projected_run_wall
    return {
        "n": OVERHEAD_N,
        "measured_sim_s": OVERHEAD_MEASURED_S,
        "horizon_sim_s": OVERHEAD_HORIZON_S,
        "run_wall_s": run_wall,
        "wall_per_sim_s": wall_per_sim_s,
        "snapshot_wall_s": snapshot_wall,
        "restore_wall_s": restore_wall,
        "artifact_bytes": float(len(blob)),
        "projected_run_wall_s": projected_run_wall,
        "overhead_pct": overhead_pct,
    }


def measure_warm_start() -> Dict[str, float]:
    """Cold full-horizon run vs restore-and-resume from a shared prefix."""
    # Cold: the whole horizon from t = 0.
    cold = _build(WARM_N)
    start = time.perf_counter()
    cold_report = cold.run(WARM_HORIZON_S, fault_horizon=WARM_HORIZON_S)
    cold_wall = time.perf_counter() - start

    # Shared prefix: simulated once per sweep group, amortised across every
    # long-horizon cell, so its cost is reported but not charged to the cell.
    prefix_scenario = _build(WARM_N)
    start = time.perf_counter()
    import tempfile

    handle, path = tempfile.mkstemp(suffix=".reprosnap")
    os.close(handle)
    try:
        prefix_scenario.run(
            WARM_PREFIX_S,
            fault_horizon=WARM_HORIZON_S,
            snapshot_at=WARM_PREFIX_S,
            snapshot_to=path,
        )
        with open(path, "rb") as stream:
            prefix_blob = stream.read()
    finally:
        os.unlink(path)
    prefix_wall = time.perf_counter() - start

    # Warm cell: restore the prefix, resume over the suffix only.
    start = time.perf_counter()
    warm = Scenario.restore(prefix_blob)
    warm_report = warm.resume(until=WARM_HORIZON_S)
    warm_wall = time.perf_counter() - start

    assert numeric_metrics(warm_report.as_dict()) == numeric_metrics(
        cold_report.as_dict()
    ), "warm-started cell diverged from the cold full-horizon run"

    return {
        "n": WARM_N,
        "prefix_sim_s": WARM_PREFIX_S,
        "horizon_sim_s": WARM_HORIZON_S,
        "cold_wall_s": cold_wall,
        "prefix_wall_s": prefix_wall,
        "warm_wall_s": warm_wall,
        "speedup": cold_wall / max(warm_wall, 1e-9),
    }


def test_e16_snapshot_overhead_and_warm_start(print_table):
    overhead = measure_overhead()
    warm = measure_warm_start()

    table = ResultTable(
        f"E16  Snapshot/restore (seed={SEED}" + (", SMOKE" if SMOKE else "") + ")",
        ["measurement", "value"],
    )
    table.add_row("overhead: fleet size", overhead["n"])
    table.add_row("overhead: run wall/sim-s [s]", overhead["wall_per_sim_s"])
    table.add_row("overhead: snapshot [s]", overhead["snapshot_wall_s"])
    table.add_row("overhead: restore [s]", overhead["restore_wall_s"])
    table.add_row("overhead: artifact [MB]", overhead["artifact_bytes"] / 1e6)
    table.add_row(
        f"overhead vs {OVERHEAD_HORIZON_S:g} sim-s run [%]",
        overhead["overhead_pct"],
    )
    table.add_row("warm: fleet size", warm["n"])
    table.add_row("warm: cold run [s]", warm["cold_wall_s"])
    table.add_row("warm: resume suffix [s]", warm["warm_wall_s"])
    table.add_row("warm: speedup", f"{warm['speedup']:.2f}x")
    print_table(table)

    payload = {
        "benchmark": "E16",
        "smoke": SMOKE,
        "seed": SEED,
        "gates": {
            "max_overhead_pct": OVERHEAD_GATE_PCT,
            "min_warm_speedup": WARM_GATE_SPEEDUP,
        },
        "overhead": overhead,
        "warm_start": warm,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    if not SMOKE:
        assert overhead["overhead_pct"] < OVERHEAD_GATE_PCT, (
            f"snapshot+restore costs {overhead['overhead_pct']:.2f}% of a "
            f"{OVERHEAD_HORIZON_S:g} sim-s run at N={OVERHEAD_N} "
            f"(gate < {OVERHEAD_GATE_PCT:g}%)"
        )
        assert warm["speedup"] >= WARM_GATE_SPEEDUP, (
            f"warm start only {warm['speedup']:.2f}x vs cold "
            f"(gate >= {WARM_GATE_SPEEDUP:g}x)"
        )

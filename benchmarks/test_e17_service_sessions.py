"""E17 — Concurrent service sessions: throughput and byte-identity.

The service layer (``repro.service``) multiplexes many simulations on one
process by slicing each run window into bounded ``step`` calls and
round-robining the slices through a cooperative scheduler.  That is only
acceptable if (a) the slicing machinery costs little — aggregate event
throughput of K concurrent sessions must stay close to K back-to-back
``Scenario.run()`` calls — and (b) it costs *nothing* in simulation terms:
a session that is sliced, interleaved with seven neighbours, paused,
evicted to a snapshot artifact, restored and resumed must report exactly
what an undisturbed run of the same scenario reports.

Three measurements on K = 8 urban-grid sessions (distinct seeds):

* **Sequential baseline** — the K scenarios run to completion one after the
  other through plain ``Scenario.run()``; aggregate events/s is the
  reference throughput.
* **Concurrent sessions** — the same K scenarios as registry sessions,
  driven by the round-robin scheduler until every one finishes.  Gates:
  aggregate events/s ≥ **70 %** of sequential, and every session's report
  byte-identical to its solo twin.
* **Evict/restore mid-flight** — one extra session is stepped partway,
  paused, evicted (scenario object graph dropped), restored and driven to
  completion; its report *and* delivered-frame sequence must equal an
  uninterrupted twin's byte for byte.

Results go to ``BENCH_E17.json`` (parsed by the CI smoke step).  Set
``E17_SMOKE=1`` (CI) to shrink the fleets and skip the throughput gate,
which is meaningless on noisy shared runners; the byte-identity gates
always apply — determinism does not get a smoke discount.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

from repro.metrics.report import ResultTable
from repro.scenarios import build_scenario
from repro.service import SessionRegistry, SessionState
from repro.snapshot.verify import DeliveredFrameLog

SMOKE = os.environ.get("E17_SMOKE") == "1"
SEED = 170

SESSIONS = 8
FLEET_N = 6 if SMOKE else 24
DURATION_S = 6.0 if SMOKE else 20.0
STEP_SLICE = 400 if SMOKE else 2000
THROUGHPUT_GATE = 0.70

#: Evict/restore probe: bounded slices taken before the eviction.  Small
#: and explicit so the eviction point lands mid-window at every scale.
EVICT_AFTER_SLICES = 3
EVICT_SLICE_EVENTS = 40 if SMOKE else 200

OUTPUT_PATH = Path("BENCH_E17.json")


def _build(seed: int):
    return build_scenario("urban-grid", n=FLEET_N, seed=seed)


def _session_seeds() -> List[int]:
    return [SEED + index for index in range(SESSIONS)]


def measure_sequential() -> Dict[str, object]:
    """K back-to-back ``Scenario.run()`` calls — the throughput reference."""
    reports: List[Dict[str, float]] = []
    events = 0
    start = time.perf_counter()
    for seed in _session_seeds():
        scenario = _build(seed)
        reports.append(scenario.run(DURATION_S).as_dict())
        events += scenario.sim.events_fired
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / max(wall, 1e-9),
        "reports": reports,
    }


def measure_concurrent() -> Dict[str, object]:
    """The same K scenarios as sessions under the round-robin scheduler."""
    registry = SessionRegistry(step_slice=STEP_SLICE)
    sessions = [
        registry.create(scenario=_build(seed), duration=DURATION_S)
        for seed in _session_seeds()
    ]
    start = time.perf_counter()
    for session in sessions:
        session.start()
    registry.drive_to_completion()
    wall = time.perf_counter() - start
    assert all(session.state is SessionState.FINISHED for session in sessions)
    events = sum(session.events_fired for session in sessions)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / max(wall, 1e-9),
        "ticks": sum(session.ticks for session in sessions),
        "reports": [session.report.as_dict() for session in sessions],
    }


def measure_evict_restore() -> Dict[str, object]:
    """Slice, pause, evict, restore, resume — against an undisturbed twin."""
    seed = SEED + SESSIONS  # fresh seed, not one of the K above
    twin = _build(seed)
    twin_log = DeliveredFrameLog().attach(twin)
    twin_report = twin.run(DURATION_S).as_dict()

    registry = SessionRegistry(step_slice=STEP_SLICE)
    probe = _build(seed)
    probe_log = DeliveredFrameLog().attach(probe)
    session = registry.create(scenario=probe, duration=DURATION_S)
    session.start()
    for _ in range(EVICT_AFTER_SLICES):
        if session.state is not SessionState.RUNNING:
            break
        session.step(EVICT_SLICE_EVENTS)
    interrupted = session.state is SessionState.RUNNING
    if interrupted:
        session.pause()
        registry.evict(session.id)
        assert session.scenario is None, "eviction must drop the object graph"
        registry.restore(session.id)
        session.resume()
    registry.drive_to_completion()
    assert session.state is SessionState.FINISHED
    # The log was attached to the pre-eviction object graph; find the copy
    # that travelled through the snapshot artifact.
    restored_log = DeliveredFrameLog.find(session.scenario)

    report_identical = session.report.as_dict() == twin_report
    frames_identical = restored_log.records == twin_log.records
    return {
        "seed": seed,
        "interrupted": interrupted,
        "slices_before_evict": EVICT_AFTER_SLICES,
        "frames_twin": len(twin_log.records),
        "frames_restored": len(restored_log.records),
        "report_identical": report_identical,
        "frames_identical": frames_identical,
        "pre_evict_frames": len(probe_log.records),
    }


def test_e17_concurrent_sessions(print_table):
    sequential = measure_sequential()
    concurrent = measure_concurrent()
    evict = measure_evict_restore()

    ratio = concurrent["events_per_s"] / max(sequential["events_per_s"], 1e-9)
    identical = [
        mine == ref
        for mine, ref in zip(concurrent["reports"], sequential["reports"])
    ]

    table = ResultTable(
        f"E17  Service sessions (K={SESSIONS}, N={FLEET_N}, "
        f"{DURATION_S:g} sim-s, seed={SEED}" + (", SMOKE" if SMOKE else "") + ")",
        ["measurement", "value"],
    )
    table.add_row("sequential events/s", sequential["events_per_s"])
    table.add_row("concurrent events/s", concurrent["events_per_s"])
    table.add_row("throughput ratio", f"{ratio:.3f}")
    table.add_row("scheduler slices", concurrent["ticks"])
    table.add_row("reports identical", f"{sum(identical)}/{SESSIONS}")
    table.add_row("evict/restore report identical", evict["report_identical"])
    table.add_row("evict/restore frames identical", evict["frames_identical"])
    table.add_row("evict/restore frames", evict["frames_restored"])
    print_table(table)

    payload = {
        "benchmark": "E17",
        "smoke": SMOKE,
        "seed": SEED,
        "sessions": SESSIONS,
        "fleet_n": FLEET_N,
        "duration_sim_s": DURATION_S,
        "step_slice": STEP_SLICE,
        "gates": {"min_throughput_ratio": THROUGHPUT_GATE},
        "sequential": {
            key: value for key, value in sequential.items() if key != "reports"
        },
        "concurrent": {
            key: value for key, value in concurrent.items() if key != "reports"
        },
        "throughput_ratio": ratio,
        "reports_identical": sum(identical),
        "evict_restore": evict,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Byte-identity gates hold in smoke mode too — determinism is free.
    assert all(identical), (
        "concurrent session reports diverged from sequential twins at "
        f"indices {[i for i, ok in enumerate(identical) if not ok]}"
    )
    assert evict["interrupted"], (
        "evict probe finished before the eviction point; raise DURATION_S "
        "or lower STEP_SLICE so the round trip is actually exercised"
    )
    assert evict["report_identical"], (
        "evicted/restored session report diverged from the uninterrupted twin"
    )
    assert evict["frames_identical"], (
        "evicted/restored delivered-frame sequence diverged from the twin"
    )
    if not SMOKE:
        assert ratio >= THROUGHPUT_GATE, (
            f"concurrent sessions reach only {100 * ratio:.1f}% of sequential "
            f"throughput (gate >= {100 * THROUGHPUT_GATE:g}%)"
        )

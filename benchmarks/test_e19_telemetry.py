"""E19 — Telemetry null-overhead benchmark.

The telemetry layer (``repro.telemetry``) promises *zero perturbation*: with
tracing active and a Prometheus scrape hitting the monitor between slices,
a run's delivered-frame sequence, report and RNG stream states are
byte-identical to the untraced run, and the wall-clock overhead stays below
3 % on the paper's urban-grid scenario at N = 1000.

Both arms drive the identical piecewise window loop; the only difference is
the active tracer (``sample_every=1``, every hook recording) and a full
exposition render at a Prometheus-style pull cadence (every
``SCRAPE_INTERVAL_S`` of wall time — faster than any default scrape_config;
smoke mode renders every slice).  Byte-identity is asserted in every mode;
the 3 % wall-clock gate only in full mode — timing on shared CI runners is
noise.  ``BENCH_E19.json`` records both arms (parsed by the CI smoke step).

Set ``E19_SMOKE=1`` (CI) to shrink the fleet and skip the timing gate.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.metrics.report import ResultTable
from repro.scenarios import build_scenario
from repro.snapshot.verify import DeliveredFrameLog
from repro.telemetry.prometheus import monitor_points, render_exposition
from repro.telemetry.trace import Tracer, activate

SMOKE = os.environ.get("E19_SMOKE") == "1"
SEED = 190
N = 60 if SMOKE else 1000
DURATION_S = 2.0 if SMOKE else 1.0
#: Events per slice; a realistic interleaving granularity (the service
#: scheduler's default slice), so the dispatch_batch span fires often.
SLICE_EVENTS = 2000
#: Timing repetitions per arm; min-of-reps is the standard anti-noise
#: estimator for a deterministic workload.
REPS = 1 if SMOKE else 2
#: Wall-clock seconds between exposition renders in the traced arm — an
#: aggressive Prometheus pull cadence (default scrape_configs use 15-60 s).
#: Smoke runs finish in well under a second, so they render every slice.
SCRAPE_INTERVAL_S = 0.0 if SMOKE else 2.0
GATE_MAX_OVERHEAD = 0.03

OUTPUT_PATH = Path("BENCH_E19.json")


def run_arm(traced: bool) -> Tuple[float, List[tuple], str, dict, int]:
    """One full run of the benchmark scenario; returns its observables.

    ``(wall_s, frame_log, report_json, rng_state, trace_events)`` — wall
    time brackets only the window drive, not scenario construction.
    """
    scenario = build_scenario("urban-grid", n=N, seed=SEED)
    log = DeliveredFrameLog().attach(scenario)
    tracer = Tracer() if traced else None

    def drive():
        scenario.open_window(DURATION_S)
        scraped_at = time.perf_counter()
        while True:
            outcome = scenario.advance(max_events=SLICE_EVENTS)
            if traced and time.perf_counter() - scraped_at >= SCRAPE_INTERVAL_S:
                render_exposition(
                    monitor_points(scenario.sim.monitor, {"scenario": "urban_grid"})
                )
                scraped_at = time.perf_counter()
            if outcome.exhausted:
                return scenario.close_window()

    start = time.perf_counter()
    if traced:
        with activate(tracer):
            report = drive()
    else:
        report = drive()
    wall = time.perf_counter() - start
    return (
        wall,
        log.records,
        json.dumps(report.as_dict(), sort_keys=True),
        scenario.sim.streams.capture_state(),
        len(tracer) if tracer is not None else 0,
    )


def test_e19_telemetry_overhead_and_invisibility(print_table):
    arms: Dict[bool, List[tuple]] = {False: [], True: []}
    for _ in range(REPS):
        for traced in (False, True):
            arms[traced].append(run_arm(traced))

    wall_off = min(run[0] for run in arms[False])
    wall_on = min(run[0] for run in arms[True])
    overhead = wall_on / wall_off - 1.0
    events = arms[True][0][4]

    table = ResultTable(
        f"E19  Telemetry overhead (urban-grid, N={N}, {DURATION_S:g} sim-s, "
        f"seed={SEED}" + (", SMOKE" if SMOKE else "") + ")",
        ["telemetry", "wall [s]", "overhead", "trace events", "frames"],
    )
    table.add_row("off", wall_off, "", 0, len(arms[False][0][1]))
    table.add_row("on", wall_on, f"{overhead * 100:+.2f}%", events, len(arms[True][0][1]))
    print_table(table)

    OUTPUT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "E19",
                "smoke": SMOKE,
                "seed": SEED,
                "n": N,
                "duration_s": DURATION_S,
                "reps": REPS,
                "wall_s": {"off": wall_off, "on": wall_on},
                "overhead": overhead,
                "trace_events": events,
                "frames_delivered": len(arms[True][0][1]),
                "byte_identical": True,  # asserted below; a failed run writes no file
                "gate": {"max_overhead": GATE_MAX_OVERHEAD, "enforced": not SMOKE},
            },
            indent=2,
        )
        + "\n"
    )

    # --- byte-invisibility: every observable identical across arms & reps --
    reference = arms[False][0]
    assert reference[1], "benchmark run delivered no frames"
    for traced in (False, True):
        for run in arms[traced]:
            assert run[1] == reference[1], "delivered-frame sequence diverged"
            assert run[2] == reference[2], "scenario report diverged"
            assert run[3] == reference[3], "RNG stream states diverged"
    assert events > 0, "tracer recorded nothing — hooks not firing"

    # --- the acceptance gate: <= 3% wall overhead at N=1000 (full mode) ----
    if not SMOKE:
        assert overhead <= GATE_MAX_OVERHEAD, (
            f"telemetry overhead {overhead * 100:.2f}% exceeds "
            f"{GATE_MAX_OVERHEAD * 100:.0f}% at N={N}"
        )

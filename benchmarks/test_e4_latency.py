"""E4 — Asynchronous in-range orchestration beats the cellular round trip.

Claim (paper, §I): 5G/cellular bandwidth "must be better used than in
transferring millions of data back and forth between the centralized servers
and edge devices"; keeping the loop local and asynchronous shortens it.

The benchmark compares the end-to-end perception-task latency of AirDnD
(decide locally, offload one hop over the mesh) against the cloud pipeline
(upload raw frame, compute centrally, download result) for a sweep of
cellular core-network latencies.
"""

from repro.baselines.cloud_offload import CloudOffloadClient, CloudPerceptionService
from repro.metrics.report import ResultTable
from repro.radio.cellular import CellularNetwork
from repro.scenarios.intersection import build_intersection_scenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 20.0


def airdnd_latency(seed=17):
    scenario = build_intersection_scenario(num_vehicles=6, seed=seed)
    report = scenario.run(duration=DURATION)
    return report.mean_task_latency_s, report.p95_task_latency_s


def cloud_latency(core_latency, seed=17):
    scenario = build_intersection_scenario(num_vehicles=6, seed=seed)
    cellular = CellularNetwork(scenario.sim, core_latency=core_latency)
    service = CloudPerceptionService(scenario.sim, cellular)
    clients = [
        CloudOffloadClient(scenario.sim, node.name, node.pond, cellular, service)
        for node in scenario.nodes
    ]
    scenario.run(duration=DURATION)
    latencies = [l for c in clients for l in c.result_latencies]
    # The cloud loop latency also includes getting the raw frame up first.
    upload_time = cellular.uplink_time(1_500_000)
    mean_downstream = sum(latencies) / len(latencies) if latencies else float("nan")
    return upload_time + mean_downstream


def run_all():
    airdnd_mean, airdnd_p95 = airdnd_latency()
    cloud = {core: cloud_latency(core) for core in (0.02, 0.05, 0.1)}
    return airdnd_mean, airdnd_p95, cloud


def test_e4_orchestration_latency(benchmark, print_table):
    airdnd_mean, airdnd_p95, cloud = run_once_with_benchmark(benchmark, run_all)

    table = ResultTable(
        "E4  Perception loop latency: AirDnD mesh vs cloud round trip",
        ["pipeline", "mean latency [s]"],
    )
    table.add_row("AirDnD (in-range offload), mean", airdnd_mean)
    table.add_row("AirDnD (in-range offload), p95", airdnd_p95)
    for core, latency in cloud.items():
        table.add_row(f"cloud, core latency {core * 1000:.0f} ms", latency)
    print_table(table)

    # AirDnD's loop is faster than every cloud configuration tested.
    assert all(airdnd_mean < latency for latency in cloud.values())
    # Cloud latency grows with core-network latency (sanity of the sweep).
    values = [cloud[c] for c in sorted(cloud)]
    assert values == sorted(values)
    # And the AirDnD p95 stays sub-second in this scenario.
    assert airdnd_p95 < 1.5

"""E10 — Data-quality-aware matching (Model 3) improves task outcomes.

Claim (paper, Model 3 / Goal 3): tasks must describe "what type and quality
data is needed" so they are only placed where that data exists; ignoring data
quality places perception tasks on nodes that cannot actually see the region
of interest.

The benchmark degrades a fraction of the fleet's sensors (very short range,
high miss rate) and compares the ego's occluded-agent detection rate with
Model 3 matching enabled (the data term filters and ranks candidates) versus
disabled (data requirements stripped from the task).
"""

from repro.metrics.report import ResultTable
from repro.scenarios.intersection import build_intersection_scenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 25.0


def run_variant(data_matching_enabled, seed=101):
    scenario = build_intersection_scenario(num_vehicles=8, seed=seed)
    # Degrade most of the candidate fleet: their ponds stop receiving frames, so
    # their advertised data quality collapses — while their compute becomes
    # *more* attractive than anyone else's (big idle CPUs).  A compute-greedy
    # scorer without Model 3 is drawn straight to these blind executors.
    from repro.compute.resources import ResourceSpec

    for node in scenario.nodes[1:-2]:
        node.pond.retention_s = 0.01    # frames expire almost immediately
        node.compute.spec = ResourceSpec(cpu_ops_per_second=5e10, cores=8, memory_mb=32768)
    if not data_matching_enabled:
        # Strip Model 3 from every submitted task by removing the data term
        # and the data requirement at submission time.
        original_submit = scenario.ego.orchestrator.submit

        def submit_without_data(task, on_result=None):
            task.data = None
            return original_submit(task, on_result)

        scenario.ego.orchestrator.submit = submit_without_data
        for node in scenario.nodes:
            import dataclasses

            scorer = node.orchestrator.scorer
            scorer.weights = dataclasses.replace(scorer.weights, data=0.0)
    report = scenario.run(duration=DURATION)

    # Which executors ended up producing the ego's remote results?  With
    # Model 3 enforced a blind executor should never run the task (it is
    # filtered at the requester from its beacon digest, and rejects at
    # admission if it slips through); with Model 3 ignored it happily
    # executes on an empty pond and returns a useless result.
    blind_names = {node.name for node in scenario.nodes[1:-2]}
    remote_results = [
        lifecycle.result
        for lifecycle in scenario.ego.completed_tasks()
        if lifecycle.succeeded and lifecycle.result.executor != scenario.ego.name
    ]
    from_blind = [r for r in remote_results if r.executor in blind_names]
    blind_fraction = len(from_blind) / len(remote_results) if remote_results else 0.0
    rejects = scenario.sim.monitor.counter_value("airdnd.offers_rejected")
    return report, blind_fraction, len(remote_results), rejects


def run_all():
    return run_variant(True), run_variant(False)


def test_e10_data_quality_matching(benchmark, print_table):
    (
        (with_report, with_blind, with_remote, with_rejects),
        (without_report, without_blind, without_remote, without_rejects),
    ) = run_once_with_benchmark(benchmark, run_all)

    table = ResultTable(
        "E10  Model 3 matching with most of the fleet's sensors degraded (25 s)",
        ["configuration", "results from blind executors", "remote results",
         "data rejections", "occluded detection rate", "success rate"],
    )
    table.add_row("data description enforced", with_blind, with_remote, with_rejects,
                  with_report.extra["occluded_detection_rate"], with_report.success_rate)
    table.add_row("data description ignored", without_blind, without_remote, without_rejects,
                  without_report.extra["occluded_detection_rate"], without_report.success_rate)
    print_table(table)

    # With Model 3 in force, perception tasks land on executors whose ponds
    # actually cover the region — blind executors are filtered or reject —
    # whereas without it they execute on empty ponds and return useless
    # results.
    assert with_remote > 0 and without_remote > 0
    assert with_blind <= without_blind - 0.2
    assert without_blind > 0.3          # the failure mode is real when ignored
    assert with_report.success_rate >= 0.5

"""E5 — Better utilisation of excess compute resources.

Claim (paper, §I): AirDnD enables "better utilization of resources in
computing devices that are geographically distributed" — work flows from
overloaded devices to idle ones.

The benchmark runs a heterogeneous urban-grid fleet under the same Poisson
workload with AirDnD offloading versus forced local execution and compares
task success, latency, and how evenly the busy work is spread (utilisation of
the compute-rich tier vs the weak tier).
"""

from repro.baselines.local_only import LocalOnlyPlacement
from repro.metrics.report import ResultTable
from repro.scenarios.urban_grid import UrbanGridConfig, UrbanGridScenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 40.0


def run_variant(local_only, seed=41):
    scenario = UrbanGridScenario(
        UrbanGridConfig(num_vehicles=12, task_rate_per_s=3.0, seed=seed)
    )
    if local_only:
        for node in scenario.nodes:
            node.orchestrator.placement = LocalOnlyPlacement()
    report = scenario.run(duration=DURATION)
    rich = [n.compute.utilization() for i, n in enumerate(scenario.nodes) if i % 3 == 0]
    weak = [n.compute.utilization() for i, n in enumerate(scenario.nodes) if i % 3 == 2]
    return {
        "report": report,
        "rich_utilization": sum(rich) / len(rich),
        "weak_utilization": sum(weak) / len(weak),
    }


def run_all():
    return run_variant(local_only=False), run_variant(local_only=True)


def test_e5_resource_utilization(benchmark, print_table):
    airdnd, local = run_once_with_benchmark(benchmark, run_all)

    table = ResultTable(
        "E5  Utilisation under a shared workload (12 heterogeneous vehicles, 40 s)",
        ["strategy", "success rate", "mean latency [s]", "p95 latency [s]",
         "rich-tier utilisation", "weak-tier utilisation", "offloaded tasks"],
    )
    for name, data in (("AirDnD", airdnd), ("local-only", local)):
        report = data["report"]
        table.add_row(name, report.success_rate, report.mean_task_latency_s,
                      report.p95_task_latency_s, data["rich_utilization"],
                      data["weak_utilization"], report.offloaded_tasks)
    print_table(table)

    airdnd_report, local_report = airdnd["report"], local["report"]
    # AirDnD actually offloads; local-only by construction does not.
    assert airdnd_report.offloaded_tasks > 0
    assert local_report.offloaded_tasks == 0
    # Offloading shifts work onto the compute-rich tier.
    assert airdnd["rich_utilization"] > local["rich_utilization"]
    # And tail latency improves (weak nodes no longer grind through big tasks alone).
    assert airdnd_report.p95_task_latency_s <= local_report.p95_task_latency_s * 1.05
    assert airdnd_report.success_rate >= local_report.success_rate - 0.05

"""E2 — Data stays where it is generated.

Claim (paper, §I): "the data will remain where they have been generated while
the computing task ... will be exchanged", minimising data transfer compared
with shipping sensor data to a central server.

The benchmark measures bytes moved per completed perception round for AirDnD
(task descriptions + object-list results over the mesh) versus the
centralised cloud baseline (raw frames over cellular), sweeping the fleet
size.
"""

from repro.baselines.cloud_offload import CloudOffloadClient, CloudPerceptionService
from repro.metrics.report import ResultTable
from repro.radio.cellular import CellularNetwork
from repro.scenarios.intersection import build_intersection_scenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 20.0


def bytes_for(num_vehicles, seed=11):
    airdnd_scenario = build_intersection_scenario(num_vehicles=num_vehicles, seed=seed)
    airdnd_report = airdnd_scenario.run(duration=DURATION)
    airdnd_protocol_bytes = sum(
        airdnd_scenario.sim.monitor.counter_value(f"radio.bytes.{kind}")
        for kind in ("airdnd.offer", "airdnd.result", "airdnd.reject", "ack")
    )

    cloud_scenario = build_intersection_scenario(num_vehicles=num_vehicles, seed=seed)
    cellular = CellularNetwork(cloud_scenario.sim)
    service = CloudPerceptionService(cloud_scenario.sim, cellular)
    for node in cloud_scenario.nodes:
        CloudOffloadClient(cloud_scenario.sim, node.name, node.pond, cellular, service)
    cloud_scenario.run(duration=DURATION)

    rounds = max(1.0, airdnd_report.extra["perception_rounds"])
    return {
        "vehicles": num_vehicles,
        "airdnd_total": airdnd_report.mesh_bytes,
        "airdnd_protocol": airdnd_protocol_bytes,
        "airdnd_per_round": airdnd_report.mesh_bytes / rounds,
        "cloud_total": cellular.total_bytes(),
        "cloud_per_round": cellular.total_bytes() / rounds,
    }


def run_sweep():
    return [bytes_for(n) for n in (4, 8, 12)]


def test_e2_data_transfer_minimisation(benchmark, print_table):
    rows = run_once_with_benchmark(benchmark, run_sweep)

    table = ResultTable(
        "E2  Bytes moved during 20 s of cooperative perception",
        ["vehicles", "AirDnD mesh total", "AirDnD per round", "cloud total", "cloud per round",
         "reduction factor"],
    )
    for row in rows:
        table.add_row(
            row["vehicles"], row["airdnd_total"], row["airdnd_per_round"],
            row["cloud_total"], row["cloud_per_round"],
            row["cloud_total"] / max(row["airdnd_total"], 1.0),
        )
    print_table(table)

    for row in rows:
        # The cloud approach moves at least an order of magnitude more bytes.
        assert row["cloud_total"] > 10 * row["airdnd_total"]
    # The gap widens (in absolute bytes) as the fleet grows.
    assert rows[-1]["cloud_total"] - rows[-1]["airdnd_total"] > rows[0]["cloud_total"] - rows[0]["airdnd_total"]

"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment from DESIGN.md's experiment index
(F1, E1–E10).  Because the paper itself publishes no quantitative tables, the
assertions check the *shape* of each claim (who wins, in which direction)
rather than absolute numbers; the printed tables are what EXPERIMENTS.md
records.
"""

from __future__ import annotations

import pytest


def run_once_with_benchmark(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are deterministic and relatively heavy, so one round is
    both sufficient and considerably faster than pytest-benchmark's defaults.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def print_table(capsys):
    """Print a ResultTable so it survives pytest's capture (-s not needed)."""

    def _print(table) -> None:
        with capsys.disabled():
            print()
            print(table.render())
            print()

    return _print

"""E1 — "Looking around the corner": AirDnD extends effective perception.

Claim (paper, §I): offloading the perception task to in-range vehicles that
can see the occluded region gives the approaching vehicle awareness of road
users its own sensors cannot see.

The benchmark runs the intersection scenario three ways — local-only
perception, AirDnD offloading, and the cloud baseline — and compares the
occluded-agent detection rate and the time to first detection.
"""

from repro.baselines.cloud_offload import CloudOffloadClient, CloudPerceptionService
from repro.baselines.local_only import LocalOnlyPlacement
from repro.metrics.report import ResultTable
from repro.radio.cellular import CellularNetwork
from repro.scenarios.intersection import build_intersection_scenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 25.0
VEHICLES = 6
SEED = 7


def run_airdnd():
    scenario = build_intersection_scenario(num_vehicles=VEHICLES, seed=SEED)
    report = scenario.run(duration=DURATION)
    return scenario, report


def run_local_only():
    scenario = build_intersection_scenario(num_vehicles=VEHICLES, seed=SEED)
    for node in scenario.nodes:
        node.orchestrator.placement = LocalOnlyPlacement()
    report = scenario.run(duration=DURATION)
    return scenario, report


def run_cloud():
    scenario = build_intersection_scenario(num_vehicles=VEHICLES, seed=SEED)
    cellular = CellularNetwork(scenario.sim)
    service = CloudPerceptionService(scenario.sim, cellular)
    clients = [
        CloudOffloadClient(scenario.sim, node.name, node.pond, cellular, service)
        for node in scenario.nodes
    ]
    # The ego also keeps its AirDnD pipeline; the cloud path runs in parallel
    # purely so its latency/bytes can be measured on the same mobility trace.
    report = scenario.run(duration=DURATION)
    ego_client = clients[0]
    return scenario, report, cellular, ego_client


def run_all():
    _, airdnd = run_airdnd()
    _, local = run_local_only()
    _, cloud_report, cellular, ego_client = run_cloud()
    cloud_latency = (
        sum(ego_client.result_latencies) / len(ego_client.result_latencies)
        if ego_client.result_latencies
        else float("nan")
    )
    return airdnd, local, cloud_report, cellular, cloud_latency


def test_e1_look_around_corner(benchmark, print_table):
    airdnd, local, cloud_report, cellular, cloud_latency = run_once_with_benchmark(
        benchmark, run_all
    )

    table = ResultTable(
        "E1  Looking around the corner (6 vehicles, occluded pedestrian, 25 s)",
        ["strategy", "occluded detection rate", "mean task latency [s]", "bytes moved"],
    )
    table.add_row("local-only", local.extra["occluded_detection_rate"],
                  local.mean_task_latency_s, local.mesh_bytes)
    table.add_row("AirDnD", airdnd.extra["occluded_detection_rate"],
                  airdnd.mean_task_latency_s, airdnd.mesh_bytes)
    table.add_row("cloud (cellular)", airdnd.extra["occluded_detection_rate"],
                  cloud_latency, cellular.total_bytes())
    print_table(table)

    # Core claim: AirDnD sees what local-only cannot.
    assert airdnd.extra["occluded_detection_rate"] > local.extra["occluded_detection_rate"] + 0.2
    assert airdnd.extra["occluded_agents_detected"] >= 1
    # And it does so with a sub-second perception loop.
    assert airdnd.mean_task_latency_s < 1.0
    # The cloud alternative moves orders of magnitude more bytes.
    assert cellular.total_bytes() > 20 * airdnd.mesh_bytes

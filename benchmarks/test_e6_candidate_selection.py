"""E6 — Candidate-node selection quality (RQ1) and ablation.

Claim (paper, RQ1): selecting the executing node must consider the computing
capabilities of receivers, data quality, network parameters and trust — not
just proximity.

The benchmark runs the same intersection workload under the full multi-
criteria scorer and under ablated placements (nearest-neighbour, random) and
compares success rate and latency.  It also ablates the contact-time term on
the highway scenario, where ignoring contact time picks oncoming vehicles
that leave range before returning results.
"""

import dataclasses

import numpy as np

from repro.baselines.greedy_nearest import NearestNeighborPlacement
from repro.core.placement import RandomPlacement
from repro.metrics.report import ResultTable
from repro.scenarios.highway import HighwayConfig, HighwayScenario
from repro.scenarios.intersection import build_intersection_scenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 20.0


def run_intersection_with(placement_factory, seed=61):
    scenario = build_intersection_scenario(num_vehicles=8, seed=seed)
    if placement_factory is not None:
        for node in scenario.nodes:
            node.orchestrator.placement = placement_factory()
    return scenario.run(duration=DURATION)


def run_highway_contact_ablation(contact_weight, seed=62):
    scenario = HighwayScenario(HighwayConfig(vehicles_per_direction=6, task_rate_per_s=2.0, seed=seed))
    for node in scenario.nodes:
        scorer = node.orchestrator.scorer
        scorer.weights = dataclasses.replace(scorer.weights, contact_time=contact_weight)
        if contact_weight == 0.0:
            scorer.contact_margin = 0.0   # disable the hard filter too
    return scenario.run(duration=25.0)


def run_all():
    full = run_intersection_with(None)
    nearest = run_intersection_with(NearestNeighborPlacement)
    random_placement = run_intersection_with(lambda: RandomPlacement(np.random.default_rng(0)))
    contact_on = run_highway_contact_ablation(0.2)
    contact_off = run_highway_contact_ablation(0.0)
    return full, nearest, random_placement, contact_on, contact_off


def test_e6_candidate_selection_quality(benchmark, print_table):
    full, nearest, random_placement, contact_on, contact_off = run_once_with_benchmark(
        benchmark, run_all
    )

    table = ResultTable(
        "E6  Placement policy comparison (intersection, 8 vehicles, 20 s)",
        ["policy", "success rate", "detection rate", "mean latency [s]"],
    )
    table.add_row("AirDnD multi-criteria", full.success_rate,
                  full.extra["occluded_detection_rate"], full.mean_task_latency_s)
    table.add_row("nearest neighbour", nearest.success_rate,
                  nearest.extra["occluded_detection_rate"], nearest.mean_task_latency_s)
    table.add_row("random eligible", random_placement.success_rate,
                  random_placement.extra["occluded_detection_rate"],
                  random_placement.mean_task_latency_s)
    print_table(table)

    ablation = ResultTable(
        "E6b  Contact-time term ablation (highway, opposing traffic, 25 s)",
        ["configuration", "success rate", "failed tasks"],
    )
    ablation.add_row("contact-time considered", contact_on.success_rate, contact_on.tasks_failed)
    ablation.add_row("contact-time ignored", contact_off.success_rate, contact_off.tasks_failed)
    print_table(ablation)

    # The multi-criteria scorer is at least as good as both naive policies on
    # task success and latency (detection rate is reported for information —
    # no placement policy is viewpoint-aware, so it fluctuates with which
    # neighbour happens to be chosen).
    assert full.success_rate >= nearest.success_rate - 0.05
    assert full.success_rate >= random_placement.success_rate - 0.05
    assert full.mean_task_latency_s <= random_placement.mean_task_latency_s * 1.5
    # Ignoring contact time cannot help, and typically hurts, on the highway.
    assert contact_on.success_rate >= contact_off.success_rate - 0.02

"""E18 — Fabric chaos certification: SIGKILL workers, demand byte-identity.

The fabric's whole claim is that sweep execution survives worker death
without anyone noticing in the output.  This benchmark makes that claim
falsifiable:

1. a sweep grid is submitted to a durable job store and K worker
   *processes* start draining it (real processes — the leases, heartbeats
   and WAL transactions cross process boundaries exactly as in production);
2. once the designated victims (~30 % of K) each hold a lease, they are
   SIGKILLed mid-cell — no drain, no cleanup, exactly what OOM or a
   preempted spot instance does;
3. the survivors reclaim the orphaned leases after expiry and finish the
   grid.

Gates (smoke and full):

* the grid **completes** — every cell ``done``, nothing quarantined;
* the exported JSON **and** CSV are **byte-identical** to a sequential
  ``--jobs 1`` sweep of the same grid;
* every cell artifact hash-verifies and **no torn temp files** remain.

Results go to ``BENCH_E18.json`` (parsed by the CI smoke step).  Set
``E18_SMOKE=1`` (CI) for a smaller grid and fewer workers; the chaos —
killing a lease-holding worker — happens in both modes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path
from typing import Dict, List

from repro.experiments.export import export_results
from repro.experiments.runner import SweepGrid, sweep_scenario_grid
from repro.fabric import (
    JobStore,
    artifact_dir_for,
    export_store,
    read_cell_artifact,
    submit_grid,
)
from repro.fabric.worker import worker_main
from repro.metrics.report import ResultTable

SMOKE = os.environ.get("E18_SMOKE") == "1"

SCENARIO = "highway"
GRID = (
    {"n": [4], "malicious_fraction": [0.0, 0.25]}
    if SMOKE
    else {"n": [4, 6], "malicious_fraction": [0.0, 0.25]}
)
DURATION = 3.0 if SMOKE else 5.0
REPETITIONS = 2
BASE_SEED = 1800

WORKERS = 3 if SMOKE else 6
#: ~30 % of the fleet dies mid-cell.
VICTIMS = 1 if SMOKE else 2

#: Short lease so orphan recovery happens within the benchmark's budget.
LEASE_TTL = 2.0
HEARTBEAT = 0.5
#: Generous: a victim's burnt attempts must never quarantine a cell.
MAX_ATTEMPTS = 10
BACKOFF_BASE = 0.05
BACKOFF_CAP = 0.2

KILL_WAIT_S = 30.0
DRAIN_WAIT_S = 300.0

OUTPUT_PATH = Path("BENCH_E18.json")


def _spawn_workers(ctx, store_path: str) -> List[multiprocessing.Process]:
    processes = []
    for rank in range(WORKERS):
        process = ctx.Process(
            target=worker_main,
            args=(store_path,),
            kwargs={
                "worker_id": f"chaos-{rank}",
                "heartbeat_interval": HEARTBEAT,
                "poll_interval": 0.05,
            },
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes


def _kill_lease_holders(
    store: JobStore, processes: List[multiprocessing.Process]
) -> Dict[str, float]:
    """SIGKILL each victim as soon as it holds a lease; returns kill stats."""
    victims = {f"chaos-{rank}": processes[rank] for rank in range(VICTIMS)}
    killed: Dict[str, float] = {}
    deadline = time.monotonic() + KILL_WAIT_S
    while victims and time.monotonic() < deadline:
        leased_by = {
            cell["worker"]
            for cell in store.cells()
            if cell["state"] == "leased"
        }
        for worker_id in list(victims):
            process = victims[worker_id]
            if worker_id in leased_by and process.pid is not None:
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=10.0)
                killed[worker_id] = time.monotonic()
                del victims[worker_id]
        if store.unfinished() == 0:
            break  # tiny grid drained before every victim claimed a cell
        time.sleep(0.02)
    return killed


def run_chaos_sweep(tmp_dir: Path) -> Dict[str, object]:
    store_path = str(tmp_dir / "chaos.db")
    grid = SweepGrid(GRID)
    submit_grid(
        store_path,
        SCENARIO,
        grid,
        duration=DURATION,
        repetitions=REPETITIONS,
        base_seed=BASE_SEED,
        lease_ttl=LEASE_TTL,
        max_attempts=MAX_ATTEMPTS,
        backoff_base=BACKOFF_BASE,
        backoff_cap=BACKOFF_CAP,
    ).close()

    # fork would duplicate this process's sqlite state; spawn is what a
    # `repro worker` CLI process actually is.
    ctx = multiprocessing.get_context("spawn")
    start = time.perf_counter()
    processes = _spawn_workers(ctx, store_path)
    with JobStore(store_path) as store:
        killed = _kill_lease_holders(store, processes)
        deadline = time.monotonic() + DRAIN_WAIT_S
        for process in processes[VICTIMS:]:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - hang diagnostics
                process.terminate()
                raise AssertionError("survivor worker failed to drain the grid")
        wall = time.perf_counter() - start
        status = store.status()

        # Gate 1: the grid completed despite the kills.
        assert store.is_complete(), (
            f"grid incomplete after chaos: {status['states']}"
        )

        # Gate 2: artifacts are whole — every hash verifies, no torn temps.
        artifact_dir = artifact_dir_for(store_path)
        temps = [
            name for name in os.listdir(artifact_dir) if name.endswith(".tmp")
        ]
        assert not temps, f"torn artifact temp files survived: {temps}"
        for cell in store.cells():
            document = read_cell_artifact(cell["artifact"])
            assert document["seed"] == cell["seed"]

        # Gate 3: export is byte-identical to a sequential sweep.
        fabric_json = tmp_dir / "fabric.json"
        fabric_csv = tmp_dir / "fabric.csv"
        export_store(store, [str(fabric_json), str(fabric_csv)])

    results = sweep_scenario_grid(
        SCENARIO,
        grid,
        duration=DURATION,
        repetitions=REPETITIONS,
        base_seed=BASE_SEED,
        jobs=1,
    )
    sequential_json = tmp_dir / "sequential.json"
    sequential_csv = tmp_dir / "sequential.csv"
    for path in (sequential_json, sequential_csv):
        export_results(
            str(path),
            results,
            dimensions=list(GRID),
            scenario=SCENARIO,
            grid=dict(GRID),
            duration=DURATION,
            repetitions=REPETITIONS,
            base_seed=BASE_SEED,
            jobs=1,
        )
    json_identical = fabric_json.read_bytes() == sequential_json.read_bytes()
    csv_identical = fabric_csv.read_bytes() == sequential_csv.read_bytes()
    assert json_identical, "fabric JSON export diverged from --jobs 1 sweep"
    assert csv_identical, "fabric CSV export diverged from --jobs 1 sweep"

    cells = sum(status["states"].values())
    return {
        "cells": cells,
        "workers": WORKERS,
        "killed": len(killed),
        "killed_workers": sorted(killed),
        "lease_acquisitions": status["attempts"],
        "retries": status["attempts"] - cells,
        "states": status["states"],
        "wall_s": wall,
        "json_identical": json_identical,
        "csv_identical": csv_identical,
    }


def test_e18_fabric_survives_worker_kills(tmp_path, print_table):
    chaos = run_chaos_sweep(tmp_path)

    table = ResultTable(
        "E18  Fabric chaos (SIGKILL "
        f"{VICTIMS}/{WORKERS} workers{', SMOKE' if SMOKE else ''})",
        ["measurement", "value"],
    )
    table.add_row("grid cells", chaos["cells"])
    table.add_row("worker processes", chaos["workers"])
    table.add_row("workers SIGKILLed mid-cell", chaos["killed"])
    table.add_row("lease acquisitions", chaos["lease_acquisitions"])
    table.add_row("recovery retries", chaos["retries"])
    table.add_row("wall clock [s]", chaos["wall_s"])
    table.add_row("JSON byte-identical", str(chaos["json_identical"]))
    table.add_row("CSV byte-identical", str(chaos["csv_identical"]))
    print_table(table)

    payload = {
        "benchmark": "E18",
        "smoke": SMOKE,
        "scenario": SCENARIO,
        "grid": GRID,
        "duration": DURATION,
        "repetitions": REPETITIONS,
        "base_seed": BASE_SEED,
        "lease_ttl": LEASE_TTL,
        "gates": {
            "grid_complete": True,
            "json_identical": True,
            "csv_identical": True,
        },
        "chaos": chaos,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

"""E15 — Statistical equivalence tier (``fast_math``) benchmark.

E13 made the *exact* tier as fast as it can be while still promising
byte-identical delivered-frame sequences: batched link rows, obstacle-indexed
LOS.  What remains on its profile is irreducible under that promise — one
scalar RNG draw and one heap push per (broadcast, receiver), one frozen
``LinkQuality`` per link.  The ``fast_math=True`` statistical tier trades the
byte-level promise for distribution-level agreement (seeded-CI contract in
``tests/properties/test_property_statistical_equivalence.py``) and buys back
exactly those costs: fused numpy link kernels, one vectorised loss draw per
broadcast, same-delay deliveries coalesced into batch events, and
lazily-materialised link qualities.

This benchmark records the wall-clock-per-simulated-second curves of both
tiers on the same dense beacon fleet at N = 2000 / 5000 / 10000, writes them
to ``BENCH_E15.json`` (machine-readable, parsed by the CI smoke step), and
asserts the acceptance criterion: at N = 2000 the statistical tier is ≥ 3×
faster per simulated second than the exact tier on the same scenario and
seed.  Loss/delivery counter totals must match exactly between tiers at every
N — the tiers draw different RNG streams shapes but identical loss
probabilities over identical link sets, so their *totals* (not sequences)
coincide on a static fleet.

Set ``E15_SMOKE=1`` (CI) to shrink the fleet to one small N and skip the
timing assertion, which is meaningless on noisy shared runners; the JSON is
still written so the CI artifact/parse path is exercised.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.geometry.vector import Vec2
from repro.metrics.report import ResultTable
from repro.mobility.manager import MobilityManager
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.simcore.simulator import Simulator

SMOKE = os.environ.get("E15_SMOKE") == "1"
SEED = 150
#: Dense-traffic lattice pitch — every node sees a large broadcast
#: neighbourhood, the regime the paper's urban evaluations stress.
NODE_STEP_M = 40.0
#: ~6.7 beacons per node-second, staggered so transmissions spread over time.
BEACON_PERIOD_S = 0.15
#: Mobility tick = position-epoch length.  Every epoch flushes the link
#: caches of both tiers, so the benchmark charges each tier its full
#: per-epoch recompute cost — the moving-fleet regime, not the static one.
TICK_S = 0.1
#: (N, simulated duration).  Durations shrink as N grows to bound the
#: benchmark's runtime; the recorded metric is wall-clock per simulated
#: second, which is duration-independent once a few epochs have elapsed.
POINTS: List[Tuple[int, float]] = (
    [(500, 0.3)] if SMOKE else [(2000, 0.4), (5000, 0.25), (10000, 0.15)]
)
#: The tentpole acceptance criterion, checked at this fleet size.
GATE_N = 2000
GATE_SPEEDUP = 3.0

OUTPUT_PATH = Path("BENCH_E15.json")

COUNTERS = (
    "radio.frames_delivered",
    "radio.frames_lost",
    "radio.frames_out_of_range",
    "radio.bytes_delivered",
)


def build_fleet(n: int, fast_math: bool) -> Simulator:
    """N static nodes on a dense lattice, each broadcasting beacon frames.

    Frames carry no receive callbacks: the point is to isolate the radio
    medium and the event core, which is where the two tiers differ.
    """
    sim = Simulator(seed=SEED)
    mobility = MobilityManager(sim, tick=TICK_S, cell_size=300.0)
    environment = RadioEnvironment(
        sim, LinkBudget(fast_math=fast_math), mobility=mobility
    )
    side = max(1, math.ceil(math.sqrt(n)))
    for index in range(n):
        position = Vec2(
            (index % side) * NODE_STEP_M, (index // side) * NODE_STEP_M
        )
        node = StaticNode(sim, position, name=f"n-{index:05d}")
        mobility.add_node(node)
        interface = environment.attach(node.name, lambda node=node: node.position)
        sim.schedule_periodic(
            BEACON_PERIOD_S,
            lambda interface=interface: interface.send(None, 300, kind="beacon"),
            start_delay=BEACON_PERIOD_S * ((index % 10) / 10.0),
            name="beacon-tx",
        )
    return sim


def run_tier(n: int, duration_s: float, fast_math: bool) -> Dict[str, float]:
    sim = build_fleet(n, fast_math)
    start = time.perf_counter()
    sim.run(until=duration_s)
    wall = time.perf_counter() - start
    point = {name: sim.monitor.counter_value(name) for name in COUNTERS}
    point["wall_s"] = wall
    point["wall_per_sim_s"] = wall / duration_s
    return point


def test_e15_statistical_tier_speedup(print_table):
    results: Dict[Tuple[int, str], Dict[str, float]] = {}
    for n, duration_s in POINTS:
        for tier, fast_math in (("exact", False), ("statistical", True)):
            results[(n, tier)] = run_tier(n, duration_s, fast_math)

    table = ResultTable(
        f"E15  Equivalence tiers (seed={SEED}, step={NODE_STEP_M:g} m, "
        f"beacon {BEACON_PERIOD_S:g} s, tick {TICK_S:g} s"
        + (", SMOKE" if SMOKE else "")
        + ")",
        ["N", "tier", "wall [s]", "wall / sim-s", "delivered", "speedup"],
    )
    speedups: Dict[str, float] = {}
    for n, duration_s in POINTS:
        exact = results[(n, "exact")]
        fast = results[(n, "statistical")]
        speedup = exact["wall_per_sim_s"] / max(fast["wall_per_sim_s"], 1e-9)
        speedups[str(n)] = speedup
        table.add_row(
            n, "exact", exact["wall_s"], exact["wall_per_sim_s"],
            exact["radio.frames_delivered"], "",
        )
        table.add_row(
            n, "statistical", fast["wall_s"], fast["wall_per_sim_s"],
            fast["radio.frames_delivered"], f"{speedup:.2f}x",
        )
    print_table(table)

    payload = {
        "benchmark": "E15",
        "smoke": SMOKE,
        "seed": SEED,
        "node_step_m": NODE_STEP_M,
        "beacon_period_s": BEACON_PERIOD_S,
        "tick_s": TICK_S,
        "gate": {"n": GATE_N, "min_speedup": GATE_SPEEDUP},
        "points": [
            {
                "n": n,
                "duration_s": duration_s,
                "tier": tier,
                "wall_s": results[(n, tier)]["wall_s"],
                "wall_per_sim_s": results[(n, tier)]["wall_per_sim_s"],
                "frames_delivered": results[(n, tier)]["radio.frames_delivered"],
                "frames_lost": results[(n, tier)]["radio.frames_lost"],
            }
            for n, duration_s in POINTS
            for tier in ("exact", "statistical")
        ],
        "speedups": speedups,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # --- the tiers must agree on every aggregate counter at every N -------
    for n, _ in POINTS:
        exact = results[(n, "exact")]
        fast = results[(n, "statistical")]
        assert exact["radio.frames_delivered"] > 0
        for counter in COUNTERS:
            assert exact[counter] == fast[counter], (n, counter)

    # --- the acceptance criterion: >= 3x per sim-second at N = 2000 -------
    if not SMOKE:
        gate = speedups[str(GATE_N)]
        assert gate >= GATE_SPEEDUP, (
            f"statistical tier only {gate:.2f}x faster at N={GATE_N} "
            f"(need >= {GATE_SPEEDUP}x)"
        )

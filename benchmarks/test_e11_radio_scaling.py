"""E11 — Radio-medium scaling microbenchmark.

The beaconing hot path used to be O(N²): every CAM-style beacon evaluated the
link budget against every attached interface plus an O(N) contention scan.
With the spatially-indexed medium a broadcast only touches candidate
receivers inside the effective radio range, so — at constant node density —
fleet-wide work per simulated second grows ~linearly with N.

Four checks:

* **Sub-quadratic scaling** — a constant-density static fleet is swept over
  N ∈ {50, 200, 500, 1000}; wall-time per simulated second at N=1000 must be
  < 4× that at N=500 (a quadratic medium sits at ~4×, a linear one at ~2×).
* **Exact equivalence** — with a fixed seed, the spatial path and the legacy
  brute-force full scan (``use_spatial_index=False``) must produce the
  byte-identical delivered-frame sequence on an N=50 fleet.
* **Single sync pass** — with the mobility manager bound, the radio
  environment queries the manager's shared spatial substrate directly:
  exactly one grid ``update`` per node per mobility tick fleet-wide, zero
  full mirror resyncs, zero writes into the environment's private grid.
* **Scorer cache hit rate** — repeated candidate ranking against one
  network view is answered from the scorer's ``(freshness, task)`` cache,
  and an epoch bump invalidates it.

Set ``E11_SMOKE=1`` (CI) to shrink the sweep and skip the timing assertion,
which is meaningless on noisy shared runners.
"""

from __future__ import annotations

import math
import os
import time
from typing import List, Tuple

from repro.core.task_model import build_task
from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.metrics.report import ResultTable
from repro.mobility.manager import MobilityManager
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.scenarios.intersection import build_intersection_scenario
from repro.simcore.simulator import Simulator

SMOKE = os.environ.get("E11_SMOKE") == "1"
SWEEP = (20, 50) if SMOKE else (50, 200, 500, 1000)
#: Grid pitch between nodes; the default link budget reaches ~270 m, so this
#: keeps every node at ~10 in-range neighbours regardless of fleet size.
SPACING_M = 150.0
DURATION_S = 1.0 if SMOKE else 2.0
SEED = 110


def build_fleet(n: int, seed: int, use_spatial_index: bool = True):
    """N static beaconing nodes on a constant-density square grid."""
    sim = Simulator(seed=seed)
    mobility = MobilityManager(sim, tick=0.25, cell_size=2 * SPACING_M)
    environment = RadioEnvironment(
        sim, LinkBudget(), mobility=mobility, use_spatial_index=use_spatial_index
    )
    side = max(1, math.ceil(math.sqrt(n)))
    agents = []
    for index in range(n):
        position = Vec2((index % side) * SPACING_M, (index // side) * SPACING_M)
        node = StaticNode(sim, position, name=f"n-{index:04d}")
        mobility.add_node(node)
        interface = environment.attach(node.name, lambda node=node: node.position)
        agents.append(
            BeaconAgent(
                sim,
                interface,
                state_provider=lambda node=node: (node.position, node.velocity),
            )
        )
    return sim, environment, agents


def run_size(n: int) -> dict:
    sim, environment, agents = build_fleet(n, seed=SEED)
    start = time.perf_counter()
    sim.run(until=DURATION_S)
    wall = time.perf_counter() - start
    delivered = sim.monitor.counter_value("radio.frames_delivered")
    return {
        "nodes": n,
        "wall_s": wall,
        "wall_per_sim_s": wall / DURATION_S,
        "delivered": delivered,
        "delivered_per_node": delivered / n,
    }


def test_e11_broadcast_scales_sub_quadratically(print_table):
    run_size(SWEEP[0])  # warm-up: imports, allocator, caches
    rows = [run_size(n) for n in SWEEP]

    table = ResultTable(
        "E11  Radio medium scaling (static constant-density fleet, beacons only)",
        ["nodes", "wall [s]", "wall / sim-s", "delivered", "delivered / node"],
    )
    for row in rows:
        table.add_row(row["nodes"], row["wall_s"], row["wall_per_sim_s"],
                      row["delivered"], row["delivered_per_node"])
    print_table(table)

    for row in rows:
        assert row["delivered"] > 0
    # Constant density: per-node delivery stays flat as the fleet grows
    # (edge nodes have fewer neighbours, so allow a wide band).
    per_node = [row["delivered_per_node"] for row in rows]
    assert max(per_node) < 4.0 * min(per_node)
    if not SMOKE:
        # The acceptance criterion: doubling the fleet from 500 to 1000 must
        # cost far less than the ~4x of the old O(N^2) medium.
        t500 = next(r["wall_per_sim_s"] for r in rows if r["nodes"] == 500)
        t1000 = next(r["wall_per_sim_s"] for r in rows if r["nodes"] == 1000)
        assert t1000 < 4.0 * max(t500, 1e-9), (
            f"broadcast hot path scales quadratically: {t500:.3f}s -> {t1000:.3f}s"
        )


def _delivered_log(n: int, use_spatial_index: bool) -> Tuple[List[tuple], dict]:
    sim, environment, agents = build_fleet(
        n, seed=SEED, use_spatial_index=use_spatial_index
    )
    log: List[tuple] = []
    for agent in agents:
        receiver = agent.interface.node_name
        agent.interface.on_receive(
            lambda frame, quality, receiver=receiver: log.append(
                (sim.now, frame.sender, receiver, quality.snr_db)
            )
        )
    sim.run(until=5.0)
    counters = {
        name: sim.monitor.counter_value(name)
        for name in (
            "radio.frames_delivered",
            "radio.frames_lost",
            "radio.frames_out_of_range",
            "radio.bytes_delivered",
        )
    }
    return log, counters


def test_e11_spatial_medium_matches_bruteforce_exactly():
    n = 30 if SMOKE else 50
    spatial_log, spatial_counters = _delivered_log(n, use_spatial_index=True)
    brute_log, brute_counters = _delivered_log(n, use_spatial_index=False)
    assert spatial_counters == brute_counters
    assert len(spatial_log) == len(brute_log)
    assert spatial_log == brute_log


def test_e11_one_grid_update_pass_per_mobility_tick():
    """The radio layer shares the mobility substrate: no second sync pass.

    Before the substrate refactor every mobility tick cost two full grid
    passes — the manager updated its own grid and the next radio event
    mirrored all N positions again.  Now the only grid writes in the whole
    run are the manager's: one insert per node at registration plus one
    update per node per tick, while the environment performs zero mirror
    resyncs and zero writes into its private (overlay) grid.
    """
    n = 30 if SMOKE else 200
    duration = 2.0
    sim, environment, agents = build_fleet(n, seed=SEED)
    mobility = environment._mobility
    substrate = mobility.substrate
    assert environment.spatial_stats()["substrate_shared"] == 1.0
    after_setup = substrate.grid.update_calls
    assert after_setup == n  # one insert per registered node

    sim.run(until=duration)

    ticks = substrate.commit_count
    assert ticks == round(duration / mobility.tick)
    assert substrate.grid.update_calls == after_setup + ticks * n
    stats = environment.spatial_stats()
    assert stats["mirror_sync_passes"] == 0.0
    assert stats["mirror_updates"] == 0.0
    assert stats["overlay_nodes"] == 0.0
    # The shared path actually carried traffic (the medium stayed live).
    assert sim.monitor.counter_value("radio.frames_delivered") > 0


def test_e11_candidate_scorer_cache_hit_rate():
    """Repeated ranking against one view is served from the scorer cache."""
    scenario = build_intersection_scenario(num_vehicles=4, seed=7)
    scenario.run(duration=3.0)
    ego = scenario.ego
    scorer = ego.orchestrator.scorer
    task = build_task(scenario.registry, "perceive_objects")
    network = ego.network_description()
    assert network.freshness is not None
    assert len(network) > 0

    hits0, misses0 = scorer.cache_hits, scorer.cache_misses
    repeats = 10
    first = scorer.rank(network, task)
    for _ in range(repeats - 1):
        assert scorer.rank(network, task) == first
    assert scorer.cache_misses == misses0 + 1
    assert scorer.cache_hits == hits0 + repeats - 1
    window_hit_rate = (scorer.cache_hits - hits0) / repeats
    assert window_hit_rate >= 0.9

    # An epoch bump (positions moved, beacons flowed) invalidates the cache.
    scenario.run(duration=0.5)
    stale_misses = scorer.cache_misses
    scorer.rank(ego.network_description(), task)
    assert scorer.cache_misses == stale_misses + 1

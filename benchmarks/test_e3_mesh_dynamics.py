"""E3 — Spontaneous mesh formation and dissolution (Model 1).

Claim (paper, §I/§II): edge devices "spontaneously form a dynamic mesh
network for a certain time period", without any coordinator, and the mesh
reshapes continuously as nodes move.

The benchmark sweeps vehicle density on the urban grid and reports how fast
the largest mesh component forms, how large it gets, how long individual
links live, and how many membership changes each node observed — all purely
from the asynchronous beaconing protocol.
"""

from repro.metrics.report import ResultTable
from repro.scenarios.urban_grid import UrbanGridConfig, UrbanGridScenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 30.0


def run_density(num_vehicles, seed=31):
    scenario = UrbanGridScenario(
        UrbanGridConfig(num_vehicles=num_vehicles, task_rate_per_s=0.5, seed=seed)
    )
    report = scenario.run(duration=DURATION)
    formation = scenario.topology.formation_time(min_size=max(2, num_vehicles // 2))
    joins = scenario.sim.monitor.counter_value("mesh.joins")
    leaves = scenario.sim.monitor.counter_value("mesh.leaves")
    return {
        "vehicles": num_vehicles,
        "formation_time_s": formation if formation is not None else float("nan"),
        "largest_component": report.extra["mesh_largest_component"],
        "mean_degree": report.extra["mesh_mean_degree"],
        "mean_link_lifetime_s": report.extra["mesh_mean_link_lifetime_s"],
        "joins": joins,
        "leaves": leaves,
    }


def run_sweep():
    return [run_density(n) for n in (6, 12, 24)]


def test_e3_mesh_formation_and_dissolution(benchmark, print_table):
    rows = run_once_with_benchmark(benchmark, run_sweep)

    table = ResultTable(
        "E3  Mesh dynamics on the urban grid (30 s, density sweep)",
        ["vehicles", "time to half-fleet mesh [s]", "largest component", "mean degree",
         "mean link lifetime [s]", "joins", "leaves"],
    )
    for row in rows:
        table.add_row(row["vehicles"], row["formation_time_s"], row["largest_component"],
                      row["mean_degree"], row["mean_link_lifetime_s"], row["joins"], row["leaves"])
    print_table(table)

    # The mesh forms quickly at every density (a few beacon periods).
    for row in rows:
        assert row["formation_time_s"] < 10.0
        assert row["largest_component"] >= row["vehicles"] // 2
        assert row["joins"] > 0
    # Denser fleets form better-connected meshes.
    assert rows[-1]["mean_degree"] > rows[0]["mean_degree"]
    # Mobility dissolves links too: some leaves were observed in the densest run.
    assert sum(row["leaves"] for row in rows) > 0

"""E14 — Deterministic fault & adversary injection: churn and trust (RQ3).

Claim (paper, RQ3/Challenges): the framework must uphold integrity and
membership under disturbance — malicious executors, node churn, degraded
radios.  The mechanisms exist (reputation, attestation, redundant voting in
``core/trust``; per-node asynchronous views in ``mesh/membership``); this
benchmark drives them through the disturbances they were designed for, via
the :mod:`repro.faults` subsystem, and checks three things:

* **Null determinism** — an armed injector whose schedule is null (all knobs
  zero) leaves the delivered-frame sequence *byte-identical* to a run with
  no injector at all, at fixed seed.  This is the contract that lets every
  scenario install the injector unconditionally.
* **Reputation separates the fleet** — with a seeded fraction of
  result-corrupting liars and k=3 redundant execution, honest observers'
  recorded scores of honest peers end up strictly above their scores of
  malicious peers (``reputation_gap > 0``).
* **Voting closes the integrity hole** — at ``malicious_fraction = 0.1``,
  k=3 redundant voting drives the wrong-result acceptance rate to exactly
  zero, while k=1 (no voting) demonstrably accepts fabrications.

A churn section additionally exercises crash/recovery end to end: injected
crashes depress availability, crashed peers are counted as ``leave`` s in
live nodes' membership stats, and recovered nodes rejoin (measured
recovery time) while the fleet keeps completing tasks.

Set ``E14_SMOKE=1`` (CI) to shrink the fleets and durations.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDNode
from repro.faults import FaultInjector, FaultKnobs, FaultSchedule, null_schedule
from repro.geometry.vector import Vec2
from repro.metrics.report import ResultTable
from repro.mobility.waypoints import StaticNode
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.scenarios.urban_grid import build_urban_grid_scenario
from repro.scenarios.workloads import GenericComputeWorkload, register_generic_functions
from repro.simcore.simulator import Simulator

from benchmarks.conftest import run_once_with_benchmark

SMOKE = os.environ.get("E14_SMOKE") == "1"
SEED = 140
#: Null-determinism fleet (static nodes, Poisson workload).
NULL_N = 6 if SMOKE else 12
NULL_DURATION_S = 4.0 if SMOKE else 8.0
#: Adversary / churn scenario fleet.  Not shrunk in smoke mode: a sparser
#: urban mesh degrades k=3 tasks to their lone reachable candidate often
#: enough to blur the voting-vs-no-voting contrast the assertions check;
#: smoke mode saves its time on the durations instead.
FLEET_N = 15
TRUST_DURATION_S = 15.0 if SMOKE else 30.0
CHURN_DURATION_S = 15.0 if SMOKE else 25.0

COUNTERS = (
    "radio.frames_delivered",
    "radio.frames_lost",
    "radio.frames_out_of_range",
    "radio.bytes_delivered",
)


# ------------------------------------------------------- null determinism


def run_static_fleet(with_null_injector: bool) -> Tuple[List[tuple], Dict[str, float]]:
    """A static AirDnD fleet under workload, optionally with an idle injector."""
    sim = Simulator(seed=SEED)
    environment = RadioEnvironment(sim, LinkBudget())
    registry = FunctionRegistry()
    register_generic_functions(registry)
    registry.register(
        FunctionDefinition("answer", lambda p, d: 42, lambda p: 5e7, result_size_bytes=300)
    )
    nodes = []
    log: List[tuple] = []
    for index in range(NULL_N):
        mobile = StaticNode(
            sim, Vec2(float(index % 4) * 60.0, float(index // 4) * 60.0),
            name=f"n-{index:02d}",
        )
        node = AirDnDNode(sim, environment, mobile, registry)
        receiver = node.name
        node.mesh.interface.on_receive(
            lambda frame, quality, receiver=receiver: log.append(
                (sim.now, frame.sender, receiver, quality.snr_db, quality.rate_bps)
            )
        )
        nodes.append(node)
    workload = GenericComputeWorkload(sim, nodes, registry, arrival_rate_per_s=1.5)
    if with_null_injector:
        injector = FaultInjector(
            sim, nodes, environment=environment, workload=workload
        )
        armed = injector.arm(null_schedule(SEED), start=0.0, duration=NULL_DURATION_S)
        assert armed == 0
    sim.run(until=NULL_DURATION_S)
    counters = {name: sim.monitor.counter_value(name) for name in COUNTERS}
    return log, counters


# --------------------------------------------------------- trust & churn


def run_trust_point(malicious_fraction: float, redundancy: int) -> Dict[str, float]:
    """One urban-grid run with liars and k-redundant execution."""
    scenario = build_urban_grid_scenario(
        num_vehicles=FLEET_N,
        seed=SEED,
        malicious_fraction=malicious_fraction,
        adversary_profile="liar",
        task_redundancy=redundancy,
        task_rate_per_s=1.5,
    )
    report = scenario.run(TRUST_DURATION_S)
    extra = report.extra
    return {
        "completed": float(report.tasks_completed),
        "failed": float(report.tasks_failed),
        "wrong_rate": extra["wrong_result_acceptance_rate"],
        "reputation_gap": extra["reputation_gap"],
        "malicious": extra["malicious_node_count"],
    }


def run_churn() -> Dict[str, float]:
    """One urban-grid run under crash/recovery churn."""
    scenario = build_urban_grid_scenario(
        num_vehicles=FLEET_N,
        seed=SEED,
        crash_rate=0.02,
        mean_downtime=3.0,
        task_rate_per_s=1.5,
    )
    report = scenario.run(CHURN_DURATION_S)
    live_leaves = sum(
        node.mesh.membership.stats.leaves
        for node in scenario.nodes
        if not node.crashed
    )
    extra = report.extra
    return {
        "completed": float(report.tasks_completed),
        "availability": extra["availability"],
        "crashes": extra["crashes_injected"],
        "recoveries": extra["recoveries_injected"],
        "mean_recovery_time_s": extra["mean_recovery_time_s"],
        "live_leaves": float(live_leaves),
    }


def run_all():
    reference_log, reference_counters = run_static_fleet(with_null_injector=False)
    null_log, null_counters = run_static_fleet(with_null_injector=True)
    return {
        "null": (reference_log, reference_counters, null_log, null_counters),
        "k3_sep": run_trust_point(malicious_fraction=0.25, redundancy=3),
        "k3_low": run_trust_point(malicious_fraction=0.1, redundancy=3),
        "k1_exposed": run_trust_point(malicious_fraction=0.25, redundancy=1),
        "churn": run_churn(),
    }


def test_e14_faults_and_trust(benchmark, print_table):
    results = run_once_with_benchmark(benchmark, run_all)

    reference_log, reference_counters, null_log, null_counters = results["null"]

    table = ResultTable(
        f"E14  Fault & adversary injection (N={FLEET_N}, seed={SEED})",
        ["configuration", "completed", "wrong-result rate", "reputation gap",
         "availability"],
    )
    for label, key in (
        ("k=3, 25% liars", "k3_sep"),
        ("k=3, 10% liars", "k3_low"),
        ("k=1, 25% liars", "k1_exposed"),
    ):
        data = results[key]
        table.add_row(label, data["completed"], data["wrong_rate"],
                      data["reputation_gap"], 1.0)
    churn = results["churn"]
    table.add_row(
        f"churn ({churn['crashes']:g} crashes)", churn["completed"],
        0.0, float("nan"), churn["availability"],
    )
    print_table(table)

    # --- null schedule is byte-invisible -----------------------------------
    assert reference_counters["radio.frames_delivered"] > 0
    assert null_counters == reference_counters
    assert null_log == reference_log

    # --- reputation separates honest from malicious ------------------------
    k3 = results["k3_sep"]
    assert k3["malicious"] >= 2
    assert k3["reputation_gap"] > 0

    # --- k=3 voting drives wrong-result acceptance to zero -----------------
    assert results["k3_low"]["malicious"] >= 1
    assert results["k3_low"]["wrong_rate"] == 0.0
    # ... while without voting fabrications do get accepted.
    exposed = results["k1_exposed"]
    assert exposed["wrong_rate"] > 0.0
    # At 25% liars the mesh is occasionally so sparse that only one
    # candidate (the liar) is reachable and k degrades to 1 by design
    # (the fleet-smaller-than-k contract) — voting must still be a sharp
    # improvement over no voting.
    assert k3["wrong_rate"] < exposed["wrong_rate"] / 2
    # The protected configurations still complete work.
    assert k3["completed"] > 0

    # --- churn: crashes depress availability, peers leave views, rejoin ----
    assert churn["crashes"] >= 1
    assert churn["availability"] < 1.0
    assert churn["live_leaves"] >= 1
    if churn["recoveries"] >= 1:
        assert churn["mean_recovery_time_s"] == churn["mean_recovery_time_s"]  # not nan
    assert churn["completed"] > 0

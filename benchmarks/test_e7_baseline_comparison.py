"""E7 — Allocation-mechanism comparison against related work [7]–[9].

Claim (paper, §II.B): prior work covers allocation/deallocation algorithms
(double auctions, smart contracts, coded VEC auctions) but not spontaneous
mesh formation; AirDnD's in-range, beacon-driven selection should be
competitive on allocation quality while avoiding their coordination costs.

The benchmark runs the identical urban-grid workload through the AirDnD
scorer and through placement adapters for DeCloud's double auction, the
smart-contract allocator and the coded-VEC auction, and compares success
rate, latency and bytes moved.
"""

from repro.baselines.coded_vec_auction import CodedAuctionPlacement
from repro.baselines.decloud_auction import AuctionPlacement
from repro.baselines.smart_contract import ContractPlacement
from repro.metrics.report import ResultTable
from repro.scenarios.urban_grid import UrbanGridConfig, UrbanGridScenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 30.0


def run_with(placement_factory, seed=71):
    scenario = UrbanGridScenario(
        UrbanGridConfig(num_vehicles=12, task_rate_per_s=2.0, seed=seed)
    )
    if placement_factory is not None:
        for node in scenario.nodes:
            node.orchestrator.placement = placement_factory()
    report = scenario.run(duration=DURATION)
    return report


def run_all():
    return {
        "AirDnD (multi-criteria)": run_with(None),
        "DeCloud double auction [7]": run_with(AuctionPlacement),
        "smart contract FCFS [8]": run_with(ContractPlacement),
        "coded VEC auction [9]": run_with(lambda: CodedAuctionPlacement(k=1)),
    }


def test_e7_against_related_allocation_mechanisms(benchmark, print_table):
    reports = run_once_with_benchmark(benchmark, run_all)

    table = ResultTable(
        "E7  Same workload through each allocation mechanism (urban grid, 30 s)",
        ["mechanism", "success rate", "mean latency [s]", "p95 latency [s]",
         "offloaded", "mesh bytes"],
    )
    for name, report in reports.items():
        table.add_row(name, report.success_rate, report.mean_task_latency_s,
                      report.p95_task_latency_s, report.offloaded_tasks, report.mesh_bytes)
    print_table(table)

    airdnd = reports["AirDnD (multi-criteria)"]
    # Every mechanism completes the bulk of the workload on this substrate.
    for name, report in reports.items():
        assert report.success_rate > 0.6, name
    # AirDnD is at least competitive with every comparator on success rate
    # and in the same latency regime (auction mechanisms can eke out slightly
    # better placements on an uncongested fleet; the point of the comparison
    # is that the decentralised, round-free AirDnD decision does not lose).
    for name, report in reports.items():
        if name == "AirDnD (multi-criteria)":
            continue
        assert airdnd.success_rate >= report.success_rate - 0.05, name
        assert airdnd.mean_task_latency_s <= report.mean_task_latency_s * 1.5 + 0.05, name

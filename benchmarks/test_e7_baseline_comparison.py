"""E7 — Allocation-mechanism comparison against related work [7]–[9].

Claim (paper, §II.B): prior work covers allocation/deallocation algorithms
(double auctions, smart contracts, coded VEC auctions) but not spontaneous
mesh formation; AirDnD's in-range, beacon-driven selection should be
competitive on allocation quality while avoiding their coordination costs.

Since the ``placement`` knob moved into :class:`BaseScenarioConfig`, the
mechanism is just another sweep dimension — so this benchmark drives the
comparison the way an operator would: the grid is submitted to a fabric job
store, drained by a worker, and exported through the byte-stable sweep
exporter.  The exported table is committed at
``benchmarks/artifacts/E7_baselines.json`` so the baseline numbers are
reviewable in the repo, and this run regenerates and re-verifies it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import SweepGrid
from repro.fabric import FabricWorker, JobStore, export_store, submit_grid
from repro.metrics.report import ResultTable

from benchmarks.conftest import run_once_with_benchmark

MECHANISMS = {
    "airdnd": "AirDnD (multi-criteria)",
    "decloud_auction": "DeCloud double auction [7]",
    "smart_contract": "smart contract FCFS [8]",
    "coded_vec_auction": "coded VEC auction [9]",
}

SCENARIO = "urban-grid"
GRID = {"placement": list(MECHANISMS)}
OVERRIDES = {"n": 12, "task_rate_per_s": 2.0}
DURATION = 30.0
BASE_SEED = 1700

#: The committed comparison table, regenerated (and re-asserted) here.
ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "E7_baselines.json"


def run_comparison(tmp_dir: Path):
    store_path = str(tmp_dir / "e7.db")
    submit_grid(
        store_path,
        SCENARIO,
        SweepGrid(GRID),
        duration=DURATION,
        repetitions=1,
        base_seed=BASE_SEED,
        overrides=OVERRIDES,
    ).close()
    FabricWorker(store_path, worker_id="e7").run()
    ARTIFACT_PATH.parent.mkdir(parents=True, exist_ok=True)
    with JobStore(store_path) as store:
        results = export_store(store, [str(ARTIFACT_PATH)])
    return {
        result.point.as_dict()["placement"]: result.runs[0]
        for result in results
    }


def test_e7_against_related_allocation_mechanisms(benchmark, print_table, tmp_path):
    reports = run_once_with_benchmark(benchmark, run_comparison, tmp_path)
    assert set(reports) == set(MECHANISMS)

    table = ResultTable(
        "E7  Same workload through each allocation mechanism (urban grid, 30 s)",
        ["mechanism", "success rate", "mean latency [s]", "p95 latency [s]",
         "offloaded", "mesh bytes"],
    )
    for knob, label in MECHANISMS.items():
        report = reports[knob]
        table.add_row(label, report["success_rate"], report["mean_task_latency_s"],
                      report["p95_task_latency_s"], report["offloaded_tasks"],
                      report["mesh_bytes"])
    print_table(table)

    airdnd = reports["airdnd"]
    # Every mechanism completes the bulk of the workload on this substrate.
    for knob, report in reports.items():
        assert report["success_rate"] > 0.6, knob
    # AirDnD is at least competitive with every comparator on success rate
    # and in the same latency regime (auction mechanisms can eke out slightly
    # better placements on an uncongested fleet; the point of the comparison
    # is that the decentralised, round-free AirDnD decision does not lose).
    for knob, report in reports.items():
        if knob == "airdnd":
            continue
        assert airdnd["success_rate"] >= report["success_rate"] - 0.05, knob
        assert (
            airdnd["mean_task_latency_s"]
            <= report["mean_task_latency_s"] * 1.5 + 0.05
        ), knob

    # The committed artifact must match what this run just produced: if a
    # change shifts the baseline numbers, the diff shows up in review.
    committed = json.loads(ARTIFACT_PATH.read_text())
    assert committed["schema"] == "repro.sweep/1"
    assert committed["sweep"]["scenario"] == SCENARIO
    assert [p["params"]["placement"] for p in committed["points"]] == list(MECHANISMS)

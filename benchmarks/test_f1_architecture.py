"""F1 — Figure 1: the three architectural layers cooperate end to end.

The paper's only figure shows the infrastructure layer (compute resources),
the network & control layer (dynamic mesh + orchestrator) and the application
layer (the perception task) working together.  This benchmark runs the
smallest complete instantiation and verifies each layer actually carried its
part of one offloaded task.
"""

from repro.metrics.report import ResultTable
from repro.scenarios.intersection import build_intersection_scenario

from benchmarks.conftest import run_once_with_benchmark


def run_f1():
    scenario = build_intersection_scenario(num_vehicles=6, seed=7)
    report = scenario.run(duration=15.0)
    monitor = scenario.sim.monitor
    return {
        "report": report,
        "beacons_sent": monitor.counter_value("mesh.beacons_sent"),
        "offers_sent": monitor.counter_value("airdnd.offers_sent"),
        "results_received": monitor.counter_value("airdnd.results_received"),
        "compute_completed": monitor.counter_value("compute.completed"),
        "mesh_joins": monitor.counter_value("mesh.joins"),
    }


def test_f1_architecture_layers_cooperate(benchmark, print_table):
    data = run_once_with_benchmark(benchmark, run_f1)
    report = data["report"]

    table = ResultTable(
        "F1  Architecture walk-through (single intersection, 6 vehicles, 15 s)",
        ["layer", "evidence", "value"],
    )
    table.add_row("network & control", "beacons sent", data["beacons_sent"])
    table.add_row("network & control", "mesh join events", data["mesh_joins"])
    table.add_row("network & control", "task offers sent", data["offers_sent"])
    table.add_row("infrastructure", "task executions completed", data["compute_completed"])
    table.add_row("application", "perception results received", data["results_received"])
    table.add_row("application", "occluded-agent detection rate",
                  report.extra["occluded_detection_rate"])
    print_table(table)

    # Every layer did real work.
    assert data["beacons_sent"] > 50
    assert data["mesh_joins"] >= 5
    assert data["offers_sent"] >= 5
    assert data["compute_completed"] >= 5
    assert data["results_received"] >= 5
    assert report.tasks_completed > 0

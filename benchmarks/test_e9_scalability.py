"""E9 — Scalability of the mesh and the orchestrator.

Claim (paper, Challenges): "modeling a scalable network" is a core challenge;
the decentralised design should keep per-task behaviour stable as the fleet
grows, with total protocol traffic growing roughly with fleet size (every
node beacons) rather than with fleet size squared.
"""

from repro.metrics.report import ResultTable, format_series
from repro.scenarios.urban_grid import UrbanGridConfig, UrbanGridScenario

from benchmarks.conftest import run_once_with_benchmark

DURATION = 20.0


def run_size(num_vehicles, seed=91):
    scenario = UrbanGridScenario(
        UrbanGridConfig(
            num_vehicles=num_vehicles,
            grid_rows=5,
            grid_cols=5,
            task_rate_per_s=num_vehicles * 0.15,
            seed=seed,
        )
    )
    report = scenario.run(duration=DURATION)
    beacons = scenario.sim.monitor.counter_value("mesh.beacons_sent")
    return {
        "vehicles": num_vehicles,
        "success_rate": report.success_rate,
        "mean_latency": report.mean_task_latency_s,
        "tasks_completed": report.tasks_completed,
        "mesh_bytes": report.mesh_bytes,
        "beacons_per_node_per_s": beacons / num_vehicles / DURATION,
        "largest_component": report.extra["mesh_largest_component"],
    }


def run_sweep():
    return [run_size(n) for n in (10, 20, 40)]


def test_e9_scalability(benchmark, print_table):
    rows = run_once_with_benchmark(benchmark, run_sweep)

    table = ResultTable(
        "E9  Scalability sweep (urban grid, workload proportional to fleet)",
        ["vehicles", "success rate", "mean latency [s]", "tasks completed",
         "mesh bytes", "beacons / node / s", "largest component"],
    )
    for row in rows:
        table.add_row(row["vehicles"], row["success_rate"], row["mean_latency"],
                      row["tasks_completed"], row["mesh_bytes"],
                      row["beacons_per_node_per_s"], row["largest_component"])
    print_table(table)
    print_table_series = format_series(
        "E9 (figure)  latency vs fleet size",
        [row["vehicles"] for row in rows],
        [row["mean_latency"] for row in rows],
        "vehicles",
        "mean latency [s]",
    )
    print(print_table_series)

    # Success rate stays high at every size.
    for row in rows:
        assert row["success_rate"] > 0.7
    # Beaconing per node is constant by design (asynchronous, no global rounds).
    rates = [row["beacons_per_node_per_s"] for row in rows]
    assert max(rates) / min(rates) < 1.3
    # Per-task latency does not blow up (stays within 3x of the smallest fleet).
    assert rows[-1]["mean_latency"] < rows[0]["mean_latency"] * 3 + 0.5
    # Total protocol bytes grow sub-quadratically: going 10 -> 40 vehicles
    # (4x) increases bytes by far less than 16x.
    assert rows[-1]["mesh_bytes"] < rows[0]["mesh_bytes"] * 16

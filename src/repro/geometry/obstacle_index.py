"""Grid-bucketed index over obstacle edges for fast line-of-sight tests.

The brute-force :func:`~repro.geometry.los.line_of_sight` scans **every**
obstacle polygon for every ray — O(obstacles) per link, which profiling
showed to be the dominant cost of dense urban runs once the radio medium
itself was spatially indexed.  :class:`ObstacleIndex` buckets every obstacle
*edge* (and every obstacle footprint, for the containment case) into a
uniform grid; a query then only tests the segments bucketed in the cells the
ray traverses.

Equivalence contract
--------------------
``index.blocked(a, b)`` must return exactly what
``not line_of_sight(a, b, obstacles)`` returns, for *any* ray — including
rays running exactly along cell boundaries, rays far outside every obstacle
and zero-length rays (``a == b``).  Two measures make this robust rather
than probabilistic:

* Edges are bucketed into every cell their bounding box overlaps, expanded
  by :data:`EDGE_PAD`.  The segment-intersection primitive treats "touching
  within ~1e-12" as intersecting, so a phantom hit can lie slightly outside
  the exact geometry; the pad keeps such witness points inside a bucketed
  cell.
* The ray is rasterised conservatively, column by column: for each grid
  column its clipped y-extent (again expanded by :data:`EDGE_PAD`) selects
  the cells to visit.  Every point within the pad of the ray therefore lies
  in a visited cell, whatever the slope — the supercover property that an
  error-accumulating DDA walk would only give with careful epsilon juggling.

The property suite (``tests/properties/test_property_obstacle_index.py``)
fuzzes this contract against the brute-force scan.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.geometry.shapes import Polygon, Segment
from repro.geometry.vector import Vec2

#: Padding (metres) applied when bucketing edges and rasterising query rays.
#: Must exceed the ~1e-12 "touching" tolerance of the segment-intersection
#: primitive by a comfortable margin; being conservative only costs a few
#: extra candidate cells, never correctness.
EDGE_PAD = 1e-9

#: Fallback cell size when the index is built without obstacles.
DEFAULT_CELL_SIZE = 50.0


class ObstacleIndex:
    """Answers "does the segment a-b hit any obstacle?" in near-O(ray cells).

    Parameters
    ----------
    obstacles:
        Occluding polygon footprints.  More can be added later with
        :meth:`add_obstacle`.
    cell_size:
        Grid pitch in metres.  Defaults to the mean obstacle bounding-box
        extent — roughly one building per cell — which keeps both the number
        of cells a ray visits and the number of edges per cell small.
    """

    def __init__(
        self,
        obstacles: Iterable[Polygon] = (),
        cell_size: float | None = None,
    ) -> None:
        self._obstacles: List[Polygon] = list(obstacles)
        if cell_size is None:
            cell_size = self._default_cell_size(self._obstacles)
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._edges: List[Segment] = []
        self._edge_cells: Dict[Tuple[int, int], List[int]] = {}
        self._poly_cells: Dict[Tuple[int, int], List[int]] = {}
        self._edge_stamp: List[int] = []
        self._poly_stamp: List[int] = []
        self._query_id = 0
        for index, polygon in enumerate(self._obstacles):
            self._insert(index, polygon)

    @staticmethod
    def _default_cell_size(obstacles: Sequence[Polygon]) -> float:
        if not obstacles:
            return DEFAULT_CELL_SIZE
        total = 0.0
        for polygon in obstacles:
            xs = [v.x for v in polygon.vertices]
            ys = [v.y for v in polygon.vertices]
            total += max(max(xs) - min(xs), max(ys) - min(ys))
        return max(total / len(obstacles), 1.0)

    # -------------------------------------------------------------- building

    @property
    def obstacles(self) -> List[Polygon]:
        """The indexed obstacle footprints."""
        return list(self._obstacles)

    @property
    def edge_count(self) -> int:
        """Total number of indexed boundary segments."""
        return len(self._edges)

    def add_obstacle(self, polygon: Polygon) -> None:
        """Index one more occluding footprint."""
        self._obstacles.append(polygon)
        self._insert(len(self._obstacles) - 1, polygon)

    def _cells_of_box(
        self, x_min: float, y_min: float, x_max: float, y_max: float
    ) -> Iterable[Tuple[int, int]]:
        cell = self.cell_size
        min_cx = math.floor((x_min - EDGE_PAD) / cell)
        max_cx = math.floor((x_max + EDGE_PAD) / cell)
        min_cy = math.floor((y_min - EDGE_PAD) / cell)
        max_cy = math.floor((y_max + EDGE_PAD) / cell)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                yield (cx, cy)

    def _insert(self, poly_index: int, polygon: Polygon) -> None:
        self._poly_stamp.append(0)
        xs = [v.x for v in polygon.vertices]
        ys = [v.y for v in polygon.vertices]
        for cell in self._cells_of_box(min(xs), min(ys), max(xs), max(ys)):
            self._poly_cells.setdefault(cell, []).append(poly_index)
        for edge in polygon.edges():
            edge_index = len(self._edges)
            self._edges.append(edge)
            self._edge_stamp.append(0)
            for cell in self._cells_of_box(
                min(edge.a.x, edge.b.x),
                min(edge.a.y, edge.b.y),
                max(edge.a.x, edge.b.x),
                max(edge.a.y, edge.b.y),
            ):
                self._edge_cells.setdefault(cell, []).append(edge_index)

    # --------------------------------------------------------------- queries

    def _ray_cells(self, a: Vec2, b: Vec2) -> Iterable[Tuple[int, int]]:
        """Every cell within :data:`EDGE_PAD` of the segment a-b.

        Column walk: for each grid column the segment's bounding box spans,
        clip the segment to the column's (padded) x-range and emit the cells
        of the clipped (padded) y-range.  Conservative by construction and
        immune to the corner cases of an incremental grid traversal.
        """
        cell = self.cell_size
        ax, ay, bx, by = a.x, a.y, b.x, b.y
        dx = bx - ax
        dy = by - ay
        min_cx = math.floor((min(ax, bx) - EDGE_PAD) / cell)
        max_cx = math.floor((max(ax, bx) + EDGE_PAD) / cell)
        for cx in range(min_cx, max_cx + 1):
            if dx == 0.0:
                y_lo, y_hi = min(ay, by), max(ay, by)
            else:
                x_lo = cx * cell - EDGE_PAD
                x_hi = (cx + 1) * cell + EDGE_PAD
                t0 = (x_lo - ax) / dx
                t1 = (x_hi - ax) / dx
                if t0 > t1:
                    t0, t1 = t1, t0
                t0 = max(0.0, t0)
                t1 = min(1.0, t1)
                if t0 > t1:
                    continue
                y0 = ay + t0 * dy
                y1 = ay + t1 * dy
                y_lo, y_hi = (y0, y1) if y0 <= y1 else (y1, y0)
            min_cy = math.floor((y_lo - EDGE_PAD) / cell)
            max_cy = math.floor((y_hi + EDGE_PAD) / cell)
            for cy in range(min_cy, max_cy + 1):
                yield (cx, cy)

    def blocked(self, a: Vec2, b: Vec2) -> bool:
        """Whether any obstacle blocks the segment a-b.

        Exactly equivalent to ``not line_of_sight(a, b, self.obstacles)``:
        first any boundary crossing (only edges bucketed along the ray are
        tested, each at most once per query via a stamp array), then the
        fully-interior case — a segment crossing no edge is blocked iff both
        endpoints lie inside one footprint, and such a footprint necessarily
        covers ``a``'s cell.
        """
        edge_cells = self._edge_cells
        if not edge_cells and not self._poly_cells:
            return False
        self._query_id += 1
        query_id = self._query_id
        edge_stamp = self._edge_stamp
        edges = self._edges
        segment = Segment(a, b)
        intersects = segment.intersects
        for cell in self._ray_cells(a, b):
            for edge_index in edge_cells.get(cell, ()):
                if edge_stamp[edge_index] == query_id:
                    continue
                edge_stamp[edge_index] = query_id
                if intersects(edges[edge_index]):
                    return True
        poly_stamp = self._poly_stamp
        obstacles = self._obstacles
        cell = self.cell_size
        cx = math.floor(a.x / cell)
        cy = math.floor(a.y / cell)
        for poly_index in self._poly_cells.get((cx, cy), ()):
            if poly_stamp[poly_index] == query_id:
                continue
            poly_stamp[poly_index] = query_id
            polygon = obstacles[poly_index]
            if polygon.contains(a) and polygon.contains(b):
                return True
        return False

    def blocked_batch(self, origin: Vec2, targets: Sequence[Vec2]) -> List[bool]:
        """Per-target :meth:`blocked` flags for rays fanning out of ``origin``."""
        blocked = self.blocked
        return [blocked(origin, target) for target in targets]

"""2-D geometry primitives, line-of-sight tests and spatial indexing.

The mobility, radio and perception substrates all reason about positions in a
flat 2-D world.  This package provides the shared primitives:

* :class:`~repro.geometry.vector.Vec2` — immutable 2-D vectors.
* :class:`~repro.geometry.shapes.Segment`, :class:`~repro.geometry.shapes.Rectangle`,
  :class:`~repro.geometry.shapes.Polygon` — building footprints and
  road edges, with segment-intersection and containment tests.
* :func:`~repro.geometry.los.line_of_sight` — whether two points can see each
  other given a set of obstacles (used both by the radio shadowing model and
  by the perception visibility model).
* :class:`~repro.geometry.obstacle_index.ObstacleIndex` — grid-bucketed
  obstacle edges so line-of-sight tests only touch the segments along the
  ray instead of every polygon.
* :class:`~repro.geometry.spatial_index.SpatialGrid` — a uniform-grid hash
  supporting O(1)-ish range queries over moving nodes.
* :class:`~repro.geometry.substrate.SpatialSubstrate` — one shared grid with
  an epoch-based freshness contract, written by the mobility manager and
  read by the radio environment.
"""

from repro.geometry.vector import Vec2
from repro.geometry.shapes import Polygon, Rectangle, Segment
from repro.geometry.los import VisibilityMap, line_of_sight
from repro.geometry.obstacle_index import ObstacleIndex
from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.substrate import SpatialSubstrate

__all__ = [
    "Vec2",
    "Segment",
    "Rectangle",
    "Polygon",
    "line_of_sight",
    "ObstacleIndex",
    "VisibilityMap",
    "SpatialGrid",
    "SpatialSubstrate",
]

"""Uniform-grid spatial hash for neighbour queries over moving nodes.

The mesh discovery protocol needs "who is within radio range of me?" queries
every beacon interval for every node.  A uniform grid with cell size equal to
the query radius turns that into an O(neighbours) lookup instead of an
O(N) scan per node.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Generic, Hashable, Iterable, List, Tuple, TypeVar

from repro.geometry.vector import Vec2

K = TypeVar("K", bound=Hashable)


class SpatialGrid(Generic[K]):
    """Maps hashable item keys to positions and answers range queries.

    Parameters
    ----------
    cell_size:
        Width/height of each grid cell in metres.  Choose roughly the typical
        query radius for best performance.
    """

    def __init__(self, cell_size: float = 100.0) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._positions: Dict[K, Vec2] = {}
        self._cells: Dict[Tuple[int, int], set] = defaultdict(set)

    def _cell_of(self, position: Vec2) -> Tuple[int, int]:
        return (
            int(math.floor(position.x / self.cell_size)),
            int(math.floor(position.y / self.cell_size)),
        )

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, key: K) -> bool:
        return key in self._positions

    def update(self, key: K, position: Vec2) -> None:
        """Insert ``key`` or move it to a new position."""
        old = self._positions.get(key)
        if old is not None:
            old_cell = self._cell_of(old)
            new_cell = self._cell_of(position)
            if old_cell != new_cell:
                self._cells[old_cell].discard(key)
                self._cells[new_cell].add(key)
        else:
            self._cells[self._cell_of(position)].add(key)
        self._positions[key] = position

    def remove(self, key: K) -> None:
        """Remove ``key``; silently ignores unknown keys."""
        position = self._positions.pop(key, None)
        if position is not None:
            self._cells[self._cell_of(position)].discard(key)

    def position_of(self, key: K) -> Vec2:
        """Current position of ``key`` (raises ``KeyError`` if absent)."""
        return self._positions[key]

    def items(self) -> Iterable[Tuple[K, Vec2]]:
        """Iterate over ``(key, position)`` pairs."""
        return self._positions.items()

    def query_range(self, center: Vec2, radius: float) -> List[K]:
        """All keys whose position lies within ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: List[K] = []
        r_sq = radius * radius
        min_cx, min_cy = self._cell_of(Vec2(center.x - radius, center.y - radius))
        max_cx, max_cy = self._cell_of(Vec2(center.x + radius, center.y + radius))
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                for key in self._cells.get((cx, cy), ()):
                    pos = self._positions[key]
                    dx = pos.x - center.x
                    dy = pos.y - center.y
                    if dx * dx + dy * dy <= r_sq:
                        out.append(key)
        return out

    def neighbors_of(self, key: K, radius: float) -> List[K]:
        """Keys within ``radius`` of ``key``'s position, excluding ``key``."""
        center = self.position_of(key)
        return [other for other in self.query_range(center, radius) if other != key]

    def nearest(self, center: Vec2, count: int = 1) -> List[K]:
        """The ``count`` keys nearest to ``center`` (full scan, small N)."""
        ranked = sorted(
            self._positions.items(), key=lambda kv: kv[1].distance_to(center)
        )
        return [key for key, _ in ranked[:count]]

"""Uniform-grid spatial hash for neighbour queries over moving nodes.

The mesh discovery protocol and the shared radio medium need "who is within
radio range of me?" queries every beacon interval for every node.  A uniform
grid with cell size equal to the query radius turns that into an
O(neighbours) lookup instead of an O(N) scan per node.

Cells are pruned as soon as they empty, so long runs with moving nodes do
not accumulate dead cell entries, and query results are ordered by insertion
so they are deterministic regardless of Python's per-process hash
randomisation.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, Generic, Hashable, Iterable, List, Set, Tuple, TypeVar

from repro.geometry.vector import Vec2

K = TypeVar("K", bound=Hashable)


class SpatialGrid(Generic[K]):
    """Maps hashable item keys to positions and answers range queries.

    Parameters
    ----------
    cell_size:
        Width/height of each grid cell in metres.  Choose roughly the typical
        query radius for best performance.
    """

    def __init__(self, cell_size: float = 100.0) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._positions: Dict[K, Vec2] = {}
        self._cells: Dict[Tuple[int, int], Set[K]] = {}
        self._seq: Dict[K, int] = {}
        self._seq_counter = itertools.count()
        #: Total :meth:`update` calls ever made — cheap instrumentation used
        #: by benchmark E11 to assert the fleet is synced exactly once per
        #: mobility tick (no second mirror pass).
        self.update_calls = 0

    def _cell_of(self, position: Vec2) -> Tuple[int, int]:
        return (
            int(math.floor(position.x / self.cell_size)),
            int(math.floor(position.y / self.cell_size)),
        )

    def __getstate__(self) -> dict:
        """Pickle without the cell index.

        Cell membership sets iterate in hash order, which varies across
        processes (``PYTHONHASHSEED``) — serialising them would make two
        snapshots of identical grids byte-different.  ``_positions`` (plus
        ``_seq``) fully determines the index, so it is rebuilt on load.
        """
        state = self.__dict__.copy()
        del state["_cells"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        cells: Dict[Tuple[int, int], Set[K]] = {}
        for key, position in self._positions.items():
            cells.setdefault(self._cell_of(position), set()).add(key)
        self._cells = cells

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, key: K) -> bool:
        return key in self._positions

    def _discard_from_cell(self, cell: Tuple[int, int], key: K) -> None:
        members = self._cells.get(cell)
        if members is None:
            return
        members.discard(key)
        if not members:
            del self._cells[cell]

    def update(self, key: K, position: Vec2) -> None:
        """Insert ``key`` or move it to a new position."""
        self.update_calls += 1
        old = self._positions.get(key)
        if old is not None:
            old_cell = self._cell_of(old)
            new_cell = self._cell_of(position)
            if old_cell != new_cell:
                self._discard_from_cell(old_cell, key)
                self._cells.setdefault(new_cell, set()).add(key)
        else:
            self._seq[key] = next(self._seq_counter)
            self._cells.setdefault(self._cell_of(position), set()).add(key)
        self._positions[key] = position

    def remove(self, key: K) -> None:
        """Remove ``key``; silently ignores unknown keys."""
        position = self._positions.pop(key, None)
        if position is not None:
            self._discard_from_cell(self._cell_of(position), key)
            del self._seq[key]

    def position_of(self, key: K) -> Vec2:
        """Current position of ``key`` (raises ``KeyError`` if absent)."""
        return self._positions[key]

    def items(self) -> Iterable[Tuple[K, Vec2]]:
        """Iterate over ``(key, position)`` pairs."""
        return self._positions.items()

    @property
    def occupied_cell_count(self) -> int:
        """Number of grid cells currently holding at least one key."""
        return len(self._cells)

    def query_range(self, center: Vec2, radius: float) -> List[K]:
        """All keys whose position lies within ``radius`` of ``center``.

        The result is ordered by insertion (first inserted first), so it is
        deterministic across processes.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: List[K] = []
        r_sq = radius * radius
        min_cx, min_cy = self._cell_of(Vec2(center.x - radius, center.y - radius))
        max_cx, max_cy = self._cell_of(Vec2(center.x + radius, center.y + radius))
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                for key in self._cells.get((cx, cy), ()):
                    pos = self._positions[key]
                    dx = pos.x - center.x
                    dy = pos.y - center.y
                    if dx * dx + dy * dy <= r_sq:
                        out.append(key)
        out.sort(key=self._seq.__getitem__)
        return out

    def neighbors_of(self, key: K, radius: float) -> List[K]:
        """Keys within ``radius`` of ``key``'s position, excluding ``key``."""
        center = self.position_of(key)
        return [other for other in self.query_range(center, radius) if other != key]

    def nearest(self, center: Vec2, count: int = 1) -> List[K]:
        """The ``count`` keys nearest to ``center``.

        Expanding-ring grid search: occupied cells are visited in order of
        their Chebyshev ring distance from the centre cell, stopping as soon
        as no unvisited cell can contain a closer point than the current
        ``count``-th best.  This replaces the previous full O(N log N) scan
        with work proportional to the cells actually near ``center``.  Ties
        are broken by insertion order, matching the stable-sort behaviour of
        the old implementation.
        """
        if count <= 0 or not self._positions:
            return []
        ccx, ccy = self._cell_of(center)
        rings = [
            (max(abs(cx - ccx), abs(cy - ccy)), (cx, cy)) for (cx, cy) in self._cells
        ]
        heapq.heapify(rings)
        best: List[Tuple[float, int, K]] = []
        while rings:
            ring, cell = heapq.heappop(rings)
            if len(best) >= count:
                best.sort()
                # Candidates beyond the count-th best can never re-enter the
                # result; dropping them keeps the per-cell sorts O(count).
                del best[count:]
                # Any point in an unvisited cell on ring r (or beyond) is at
                # least (r - 1) · cell_size away from ``center``.
                if best[count - 1][0] <= (ring - 1) * self.cell_size:
                    break
            for key in self._cells[cell]:
                pos = self._positions[key]
                best.append((pos.distance_to(center), self._seq[key], key))
        best.sort()
        return [key for _, _, key in best[:count]]

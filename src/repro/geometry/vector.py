"""Immutable 2-D vector used for positions, velocities and directions."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Vec2:
    """An immutable 2-D vector with the usual arithmetic.

    Examples
    --------
    >>> a = Vec2(3.0, 4.0)
    >>> a.length()
    5.0
    >>> (a + Vec2(1.0, 0.0)).x
    4.0
    """

    x: float
    y: float

    # ----------------------------------------------------------- arithmetic

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    # ------------------------------------------------------------- measures

    def length(self) -> float:
        """Euclidean norm."""
        return math.hypot(self.x, self.y)

    def length_squared(self) -> float:
        """Squared norm (avoids a sqrt for comparisons)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def dot(self, other: "Vec2") -> float:
        """Dot product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z-component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def angle(self) -> float:
        """Heading angle in radians, measured from the +x axis."""
        return math.atan2(self.y, self.x)

    # ----------------------------------------------------------- transforms

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction (zero vector stays zero)."""
        norm = self.length()
        if norm == 0.0:
            return Vec2(0.0, 0.0)
        return Vec2(self.x / norm, self.y / norm)

    def rotated(self, radians: float) -> "Vec2":
        """Rotate counter-clockwise by ``radians``."""
        c, s = math.cos(radians), math.sin(radians)
        return Vec2(self.x * c - self.y * s, self.x * s + self.y * c)

    def lerp(self, other: "Vec2", t: float) -> "Vec2":
        """Linear interpolation: ``t=0`` gives self, ``t=1`` gives other."""
        return Vec2(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def as_tuple(self) -> Tuple[float, float]:
        """Plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Vec2":
        """Build a vector from polar coordinates."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))

    @staticmethod
    def zero() -> "Vec2":
        """The origin / null vector."""
        return Vec2(0.0, 0.0)

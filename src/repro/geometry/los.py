"""Line-of-sight computation against polygonal obstacles.

Both the radio shadowing model (an occluded V2V link suffers extra path loss)
and the perception visibility model (an occluded pedestrian cannot be seen by
the approaching vehicle — the motivating problem of "looking around the
corner") use the same primitive: does the straight segment between two points
cross any obstacle footprint?

The primitive comes in two interchangeable implementations: the brute-force
scan over every polygon (:func:`line_of_sight`, O(obstacles) per ray) and the
grid-bucketed :class:`~repro.geometry.obstacle_index.ObstacleIndex`, which
only tests the edges bucketed along the ray.  :class:`VisibilityMap` defaults
to the index; ``use_obstacle_index=False`` keeps the brute-force scan as the
reference path — both answer every query identically (asserted by the
property suite and benchmark E13).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.geometry.obstacle_index import ObstacleIndex
from repro.geometry.shapes import Polygon, Segment
from repro.geometry.vector import Vec2


def line_of_sight(a: Vec2, b: Vec2, obstacles: Iterable[Polygon]) -> bool:
    """Return ``True`` when nothing in ``obstacles`` blocks the segment a-b."""
    segment = Segment(a, b)
    for obstacle in obstacles:
        if obstacle.intersects_segment(segment):
            return False
    return True


class VisibilityMap:
    """Caches obstacle geometry and answers line-of-sight queries.

    The map also offers :meth:`visible_fraction`, used by the perception
    substrate to quantify how much of a region of interest an observer can
    actually see — the quantity the "looking around the corner" task tries to
    improve by borrowing other vehicles' viewpoints.

    Parameters
    ----------
    obstacles:
        Initial occluding footprints.
    use_obstacle_index:
        When ``True`` (default) queries run against a lazily (re)built
        :class:`~repro.geometry.obstacle_index.ObstacleIndex` instead of
        scanning every polygon.  ``False`` keeps the brute-force scan as the
        byte-identical reference implementation for equivalence checks.
    index_cell_size:
        Optional grid pitch override forwarded to the index.
    """

    def __init__(
        self,
        obstacles: Sequence[Polygon] | None = None,
        use_obstacle_index: bool = True,
        index_cell_size: Optional[float] = None,
    ) -> None:
        self._obstacles: List[Polygon] = list(obstacles or [])
        self.use_obstacle_index = use_obstacle_index
        self._index_cell_size = index_cell_size
        self._index: Optional[ObstacleIndex] = None
        #: Monotonic counter bumped by every occluder-set mutation.  Layers
        #: that cache geometry derived from the obstacles — notably
        #: :class:`~repro.radio.interfaces.RadioEnvironment`, whose link
        #: rows embed NLOS penalties — fold this into their own epoch keys.
        self.obstacle_epoch = 0
        #: Full :class:`~repro.geometry.obstacle_index.ObstacleIndex`
        #: (re)builds performed.  Stays at one rebuild per *epoch with a
        #: query*, however many mutations happened in between — the rebuild
        #: is lazy, so a burst of ``set_obstacles`` calls between queries
        #: costs a single reconstruction.
        self.index_rebuilds = 0

    @property
    def obstacles(self) -> List[Polygon]:
        """The obstacle footprints considered by this map."""
        return list(self._obstacles)

    def add_obstacle(self, obstacle: Polygon) -> None:
        """Register one more occluding footprint.

        Purely additive, so a live index is extended incrementally rather
        than invalidated (no rebuild is counted).
        """
        self._obstacles.append(obstacle)
        self.obstacle_epoch += 1
        if self._index is not None:
            self._index.add_obstacle(obstacle)

    def set_obstacles(self, obstacles: Sequence[Polygon]) -> None:
        """Replace the occluder set wholesale.

        This is the mutation moving occluders (buses, trucks) make once per
        epoch: swap in the footprints at their new poses.  The edge index is
        dropped and lazily rebuilt on the next query — amortised to at most
        one rebuild per epoch and counted in :attr:`index_rebuilds` — so
        queries keep running against the index instead of falling back to
        the brute-force scan.
        """
        self._obstacles = list(obstacles)
        self.obstacle_epoch += 1
        self._index = None

    def remove_obstacle(self, obstacle: Polygon) -> bool:
        """Drop one footprint; returns whether it was present.

        Removal invalidates the index (it only supports incremental *adds*);
        the next query rebuilds it lazily.
        """
        try:
            self._obstacles.remove(obstacle)
        except ValueError:
            return False
        self.obstacle_epoch += 1
        self._index = None
        return True

    def _obstacle_index(self) -> ObstacleIndex:
        """The edge index, (re)built on first use after any invalidation."""
        if self._index is None:
            self._index = ObstacleIndex(
                self._obstacles, cell_size=self._index_cell_size
            )
            self.index_rebuilds += 1
        return self._index

    def has_line_of_sight(self, a: Vec2, b: Vec2) -> bool:
        """Whether ``a`` and ``b`` can see each other."""
        if self.use_obstacle_index:
            return not self._obstacle_index().blocked(a, b)
        return line_of_sight(a, b, self._obstacles)

    def is_occluded(self, a: Vec2, b: Vec2) -> bool:
        """Inverse of :meth:`has_line_of_sight`."""
        return not self.has_line_of_sight(a, b)

    def line_of_sight_batch(self, origin: Vec2, targets: Sequence[Vec2]) -> List[bool]:
        """Per-target visibility flags for rays fanning out of ``origin``.

        One call amortises the index lookup over a whole receiver list —
        this is the "one LOS batch call" the batched link pipeline
        (:meth:`~repro.radio.link.LinkBudget.quality_batch`) makes per
        sender.  Identical to calling :meth:`has_line_of_sight` per target.
        """
        if self.use_obstacle_index:
            blocked = self._obstacle_index().blocked_batch(origin, targets)
            return [not hit for hit in blocked]
        obstacles = self._obstacles
        return [line_of_sight(origin, target, obstacles) for target in targets]

    def visible_fraction(
        self,
        observer: Vec2,
        targets: Sequence[Vec2],
        max_range: float = float("inf"),
    ) -> float:
        """Fraction of ``targets`` the observer can see within ``max_range``.

        Returns 1.0 for an empty target list (nothing to miss).
        """
        if not targets:
            return 1.0
        in_range = [t for t in targets if observer.distance_to(t) <= max_range]
        visible = sum(self.line_of_sight_batch(observer, in_range))
        return visible / len(targets)

    def visible_targets(
        self,
        observer: Vec2,
        targets: Sequence[Vec2],
        max_range: float = float("inf"),
    ) -> List[Vec2]:
        """The subset of ``targets`` visible from ``observer``."""
        in_range = [t for t in targets if observer.distance_to(t) <= max_range]
        flags = self.line_of_sight_batch(observer, in_range)
        return [target for target, seen in zip(in_range, flags) if seen]

"""Line-of-sight computation against polygonal obstacles.

Both the radio shadowing model (an occluded V2V link suffers extra path loss)
and the perception visibility model (an occluded pedestrian cannot be seen by
the approaching vehicle — the motivating problem of "looking around the
corner") use the same primitive: does the straight segment between two points
cross any obstacle footprint?
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.geometry.shapes import Polygon, Segment
from repro.geometry.vector import Vec2


def line_of_sight(a: Vec2, b: Vec2, obstacles: Iterable[Polygon]) -> bool:
    """Return ``True`` when nothing in ``obstacles`` blocks the segment a-b."""
    segment = Segment(a, b)
    for obstacle in obstacles:
        if obstacle.intersects_segment(segment):
            return False
    return True


class VisibilityMap:
    """Caches obstacle geometry and answers line-of-sight queries.

    The map also offers :meth:`visible_fraction`, used by the perception
    substrate to quantify how much of a region of interest an observer can
    actually see — the quantity the "looking around the corner" task tries to
    improve by borrowing other vehicles' viewpoints.
    """

    def __init__(self, obstacles: Sequence[Polygon] | None = None) -> None:
        self._obstacles: List[Polygon] = list(obstacles or [])

    @property
    def obstacles(self) -> List[Polygon]:
        """The obstacle footprints considered by this map."""
        return list(self._obstacles)

    def add_obstacle(self, obstacle: Polygon) -> None:
        """Register one more occluding footprint."""
        self._obstacles.append(obstacle)

    def has_line_of_sight(self, a: Vec2, b: Vec2) -> bool:
        """Whether ``a`` and ``b`` can see each other."""
        return line_of_sight(a, b, self._obstacles)

    def is_occluded(self, a: Vec2, b: Vec2) -> bool:
        """Inverse of :meth:`has_line_of_sight`."""
        return not self.has_line_of_sight(a, b)

    def visible_fraction(
        self,
        observer: Vec2,
        targets: Sequence[Vec2],
        max_range: float = float("inf"),
    ) -> float:
        """Fraction of ``targets`` the observer can see within ``max_range``.

        Returns 1.0 for an empty target list (nothing to miss).
        """
        if not targets:
            return 1.0
        visible = 0
        for target in targets:
            if observer.distance_to(target) > max_range:
                continue
            if self.has_line_of_sight(observer, target):
                visible += 1
        return visible / len(targets)

    def visible_targets(
        self,
        observer: Vec2,
        targets: Sequence[Vec2],
        max_range: float = float("inf"),
    ) -> List[Vec2]:
        """The subset of ``targets`` visible from ``observer``."""
        out = []
        for target in targets:
            if observer.distance_to(target) > max_range:
                continue
            if self.has_line_of_sight(observer, target):
                out.append(target)
        return out

"""The shared spatial substrate: one grid, one epoch, many consumers.

Before this module existed the simulation kept *two* spatial structures
tracking the same fleet: the :class:`~repro.mobility.manager.MobilityManager`
owned a :class:`~repro.geometry.spatial_index.SpatialGrid` for mobility-layer
neighbour queries, and the :class:`~repro.radio.interfaces.RadioEnvironment`
mirrored every interface position into a *second* grid for broadcast
candidate lookup — two full ``update`` passes over the fleet per mobility
tick, moving the same positions into two identical indexes.

:class:`SpatialSubstrate` collapses them into one structure with one
invalidation source:

* the **owner** (the mobility manager) writes positions into the substrate —
  one :meth:`update` per node per tick, closed by one :meth:`commit`;
* **read-only consumers** (the radio environment, and anything else that
  needs "who is near this point?") query the same grid and key their caches
  on :attr:`position_epoch`.

Freshness contract
------------------

``position_epoch`` is the single source of truth for "positions may have
changed".  It advances exactly when:

* :meth:`commit` is called (the owner finished one batch of position
  writes — normally once per mobility tick);
* a key is inserted for the first time or removed (membership changes must
  invalidate range-query consumers immediately, without waiting for the next
  tick).

Between two equal readings of ``position_epoch`` every position in the
substrate is guaranteed unchanged, so consumers may cache any pure function
of positions (link qualities, in-range sets, network descriptions) keyed on
the epoch alone.  ``membership_epoch`` advances on insert/remove only;
consumers that additionally cache *which keys exist* (e.g. the radio
environment's overlay of non-mobile interfaces) key that on
``membership_epoch`` so per-tick position commits do not force a membership
rescan.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Tuple, TypeVar

from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.vector import Vec2

K = TypeVar("K", bound=Hashable)


class SpatialSubstrate:
    """One spatial index shared by the mobility and radio layers.

    Parameters
    ----------
    cell_size:
        Cell size of the underlying :class:`SpatialGrid` in metres; pick
        roughly the dominant query radius (the radio range, for vehicular
        scenarios).
    """

    def __init__(self, cell_size: float = 100.0) -> None:
        self.grid: SpatialGrid = SpatialGrid(cell_size=cell_size)
        #: Bumped whenever positions may have changed; see the module
        #: docstring for the exact contract.
        self.position_epoch = 0
        #: Bumped on insert/remove only (a strict subset of position-epoch
        #: bumps) so consumers can cache membership-derived state cheaply.
        self.membership_epoch = 0
        #: Number of :meth:`commit` calls — i.e. completed position-sync
        #: passes.  Benchmark E11 asserts this is one per mobility tick.
        self.commit_count = 0

    # ------------------------------------------------------------- writing

    def update(self, key: K, position: Vec2) -> None:
        """Insert ``key`` or move it; inserts bump both epochs immediately."""
        if key not in self.grid:
            self.membership_epoch += 1
            self.position_epoch += 1
        self.grid.update(key, position)

    def remove(self, key: K) -> None:
        """Remove ``key``; bumps both epochs (no-op for unknown keys)."""
        if key in self.grid:
            self.grid.remove(key)
            self.membership_epoch += 1
            self.position_epoch += 1

    def commit(self) -> None:
        """Close one batch of position writes (one mobility tick)."""
        self.position_epoch += 1
        self.commit_count += 1

    # ------------------------------------------------------------- reading

    def __len__(self) -> int:
        return len(self.grid)

    def __contains__(self, key: K) -> bool:
        return key in self.grid

    def position_of(self, key: K) -> Vec2:
        """Current position of ``key`` (raises ``KeyError`` if absent)."""
        return self.grid.position_of(key)

    def items(self) -> Iterable[Tuple[K, Vec2]]:
        """Iterate over ``(key, position)`` pairs."""
        return self.grid.items()

    def query_range(self, center: Vec2, radius: float) -> List[K]:
        """Keys within ``radius`` of ``center`` (insertion-ordered)."""
        return self.grid.query_range(center, radius)

    def neighbors_of(self, key: K, radius: float) -> List[K]:
        """Keys within ``radius`` of ``key``'s position, excluding ``key``."""
        return self.grid.neighbors_of(key, radius)

    def nearest(self, center: Vec2, count: int = 1) -> List[K]:
        """The ``count`` keys nearest to ``center``."""
        return self.grid.nearest(center, count)

    # ------------------------------------------------------------- snapshot

    def capture_state(self) -> dict:
        """Positions (in insertion order) and epochs as plain data.

        The grid's cell index is derived state and is *not* captured — it is
        rebuilt by :meth:`restore_state` (and by the grid's own unpickling
        hook), per the snapshot protocol's capture-vs-rebuild split.
        """
        ordered = sorted(self.grid.items(), key=lambda kv: self.grid._seq[kv[0]])
        return {
            "cell_size": self.grid.cell_size,
            "positions": [(key, pos.x, pos.y) for key, pos in ordered],
            "position_epoch": self.position_epoch,
            "membership_epoch": self.membership_epoch,
            "commit_count": self.commit_count,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the grid from captured positions and re-apply the epochs.

        Keys are re-inserted in their original insertion order, so the
        grid's deterministic query ordering (insertion-sequence sort) is
        preserved exactly.
        """
        grid: SpatialGrid = SpatialGrid(cell_size=state["cell_size"])
        for key, x, y in state["positions"]:
            grid.update(key, Vec2(x, y))
        self.grid = grid
        self.position_epoch = int(state["position_epoch"])
        self.membership_epoch = int(state["membership_epoch"])
        self.commit_count = int(state["commit_count"])

"""Segments, rectangles and polygons used as obstacles and road edges."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.geometry.vector import Vec2


@dataclass(frozen=True)
class Segment:
    """A line segment between two points."""

    a: Vec2
    b: Vec2

    def length(self) -> float:
        """Segment length."""
        return self.a.distance_to(self.b)

    def midpoint(self) -> Vec2:
        """Point halfway along the segment."""
        return self.a.lerp(self.b, 0.5)

    def point_at(self, t: float) -> Vec2:
        """Point at fraction ``t`` along the segment (``t`` in [0, 1])."""
        return self.a.lerp(self.b, t)

    def intersects(self, other: "Segment") -> bool:
        """Whether the two segments intersect (including touching)."""
        return _segments_intersect(self.a, self.b, other.a, other.b)

    def distance_to_point(self, p: Vec2) -> float:
        """Shortest distance from ``p`` to any point on the segment."""
        ab = self.b - self.a
        denom = ab.length_squared()
        if denom == 0.0:
            return self.a.distance_to(p)
        t = max(0.0, min(1.0, (p - self.a).dot(ab) / denom))
        return self.a.lerp(self.b, t).distance_to(p)


def _orientation(p: Vec2, q: Vec2, r: Vec2) -> int:
    """Orientation of ordered triplet: 0 collinear, 1 clockwise, 2 ccw."""
    val = (q.y - p.y) * (r.x - q.x) - (q.x - p.x) * (r.y - q.y)
    if abs(val) < 1e-12:
        return 0
    return 1 if val > 0 else 2


def _on_segment(p: Vec2, q: Vec2, r: Vec2) -> bool:
    """Whether collinear point ``q`` lies on segment ``pr``."""
    return (
        min(p.x, r.x) - 1e-12 <= q.x <= max(p.x, r.x) + 1e-12
        and min(p.y, r.y) - 1e-12 <= q.y <= max(p.y, r.y) + 1e-12
    )


def _segments_intersect(p1: Vec2, q1: Vec2, p2: Vec2, q2: Vec2) -> bool:
    """Classic orientation-based segment intersection test."""
    o1 = _orientation(p1, q1, p2)
    o2 = _orientation(p1, q1, q2)
    o3 = _orientation(p2, q2, p1)
    o4 = _orientation(p2, q2, q1)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, p2, q1):
        return True
    if o2 == 0 and _on_segment(p1, q2, q1):
        return True
    if o3 == 0 and _on_segment(p2, p1, q2):
        return True
    if o4 == 0 and _on_segment(p2, q1, q2):
        return True
    return False


class Polygon:
    """A simple polygon described by its vertices in order."""

    def __init__(self, vertices: Sequence[Vec2]) -> None:
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        self.vertices = tuple(vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(self.vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polygon({len(self.vertices)} vertices)"

    def edges(self) -> List[Segment]:
        """The polygon's boundary segments."""
        verts = list(self.vertices)
        return [
            Segment(verts[i], verts[(i + 1) % len(verts)])
            for i in range(len(verts))
        ]

    def contains(self, point: Vec2) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        inside = False
        verts = self.vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            vi, vj = verts[i], verts[j]
            if Segment(vi, vj).distance_to_point(point) < 1e-9:
                return True
            if (vi.y > point.y) != (vj.y > point.y):
                x_cross = vj.x + (point.y - vj.y) * (vi.x - vj.x) / (vi.y - vj.y)
                if point.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def intersects_segment(self, segment: Segment) -> bool:
        """Whether ``segment`` crosses the polygon boundary or lies inside it."""
        for edge in self.edges():
            if edge.intersects(segment):
                return True
        return self.contains(segment.a) and self.contains(segment.b)

    def centroid(self) -> Vec2:
        """Arithmetic mean of the vertices (adequate for convex footprints)."""
        sx = sum(v.x for v in self.vertices)
        sy = sum(v.y for v in self.vertices)
        n = len(self.vertices)
        return Vec2(sx / n, sy / n)

    def area(self) -> float:
        """Absolute area via the shoelace formula."""
        total = 0.0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            j = (i + 1) % n
            total += verts[i].x * verts[j].y - verts[j].x * verts[i].y
        return abs(total) / 2.0


class Rectangle(Polygon):
    """An axis-aligned rectangle, the typical building footprint."""

    def __init__(self, x_min: float, y_min: float, x_max: float, y_max: float) -> None:
        if x_max <= x_min or y_max <= y_min:
            raise ValueError("rectangle must have positive width and height")
        self.x_min = x_min
        self.y_min = y_min
        self.x_max = x_max
        self.y_max = y_max
        super().__init__(
            [
                Vec2(x_min, y_min),
                Vec2(x_max, y_min),
                Vec2(x_max, y_max),
                Vec2(x_min, y_max),
            ]
        )

    def contains(self, point: Vec2) -> bool:
        """Fast axis-aligned containment test."""
        return (
            self.x_min - 1e-9 <= point.x <= self.x_max + 1e-9
            and self.y_min - 1e-9 <= point.y <= self.y_max + 1e-9
        )

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.y_max - self.y_min

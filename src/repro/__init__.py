"""AirDnD — Asynchronous In-Range Dynamic and Distributed Network Orchestration.

This package is a full reproduction of the system envisioned in
*"AirDnD - Asynchronous In-Range Dynamic and Distributed Network Orchestration
Framework"* (ICDCS 2023 / arXiv:2407.10500).  It provides:

* ``repro.simcore`` — a discrete-event simulation kernel.
* ``repro.geometry`` — 2-D geometry, line-of-sight and spatial indexing.
* ``repro.mobility`` — road networks and kinematic vehicle mobility.
* ``repro.radio`` — wireless propagation, V2V sidelink and cellular links.
* ``repro.mesh`` — spontaneous dynamic mesh networking (Model 1 substrate).
* ``repro.compute`` — edge compute nodes and FaaS-style execution.
* ``repro.data`` — sensor models, data ponds and data-quality metrics.
* ``repro.perception`` — occupancy grids and the "looking around the corner"
  perception pipeline.
* ``repro.core`` — the AirDnD contribution: the three description models,
  candidate selection, the asynchronous in-range orchestrator, offloading
  protocol and trust layer.
* ``repro.baselines`` — comparison allocation/offloading schemes.
* ``repro.scenarios`` — ready-made evaluation scenarios and workloads.
* ``repro.experiments`` / ``repro.metrics`` — the benchmark harness.

Quickstart
----------

>>> from repro import build_intersection_scenario
>>> scenario = build_intersection_scenario(num_vehicles=6, seed=7)
>>> report = scenario.run(duration=30.0)
>>> report.tasks_completed >= 0
True
"""

from repro.version import __version__
from repro.core.api import (
    AirDnDConfig,
    AirDnDNode,
    AirDnDOrchestrator,
)
from repro.core.models import (
    DataDescription,
    NetworkDescription,
    TaskDescription,
)
from repro.scenarios.intersection import build_intersection_scenario
from repro.scenarios.urban_grid import build_urban_grid_scenario

__all__ = [
    "__version__",
    "AirDnDConfig",
    "AirDnDNode",
    "AirDnDOrchestrator",
    "NetworkDescription",
    "TaskDescription",
    "DataDescription",
    "build_intersection_scenario",
    "build_urban_grid_scenario",
]

"""Greedy geographic multi-hop routing over the mesh.

Destinations are addressed by node name; when the destination is not a
direct neighbour, a message is forwarded to the neighbour geographically
closest to the destination's last-known position (greedy geographic
forwarding).  If no neighbour makes progress the message is dropped — the
sender learns about it only through the transport layer's acknowledgement
timeout, keeping the routing layer stateless and asynchronous.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.geometry.vector import Vec2
from repro.mesh.messages import DataMessage
from repro.mesh.neighbor import NeighborTable
from repro.radio.interfaces import Frame, RadioInterface
from repro.radio.link import LinkQuality
from repro.simcore.simulator import Simulator


class GreedyGeoRouter:
    """Routes :class:`DataMessage` objects for one node.

    Parameters
    ----------
    sim:
        Simulator (clock and metrics).
    interface:
        The owning node's radio interface.
    neighbors:
        The owning node's neighbour table (source of next-hop candidates and
        of destination position estimates).
    position_provider:
        Callable returning the owning node's current position.
    """

    def __init__(
        self,
        sim: Simulator,
        interface: RadioInterface,
        neighbors: NeighborTable,
        position_provider: Callable[[], Vec2],
    ) -> None:
        self.sim = sim
        self.interface = interface
        self.neighbors = neighbors
        self.position_provider = position_provider
        self._delivery_callbacks: List[Callable[[DataMessage], None]] = []
        self._seen_message_ids: set = set()
        self.messages_forwarded = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        interface.on_receive(self._on_frame)

    def __getstate__(self) -> dict:
        """Pickle the dedup set as a sorted tuple.

        A live ``set`` pickles in slot-iteration order, which depends on
        insertion history — and re-inserting in that order can *oscillate*
        between two layouts, so snapshot-of-restored would not be a fixed
        point of the bytes.  A sorted tuple is a pure function of
        membership; ``__setstate__`` rebuilds the set.
        """
        state = self.__dict__.copy()
        state["_seen_message_ids"] = tuple(sorted(self._seen_message_ids))
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._seen_message_ids = set(state["_seen_message_ids"])

    @property
    def node_name(self) -> str:
        """Name of the node this router belongs to."""
        return self.interface.node_name

    def on_deliver(self, callback: Callable[[DataMessage], None]) -> None:
        """Register a callback for messages addressed to this node."""
        self._delivery_callbacks.append(callback)

    # --------------------------------------------------------------- sending

    def send(self, message: DataMessage) -> bool:
        """Send (or forward) a message toward its destination.

        Returns ``True`` when the message was handed to the radio, ``False``
        when no useful next hop exists (the message is dropped).
        """
        if message.destination == self.node_name:
            self._deliver_local(message)
            return True
        if message.hop_limit <= 0:
            self.messages_dropped += 1
            self.sim.monitor.counter("mesh.routing_drops_ttl").add()
            return False
        next_hop = self.select_next_hop(message.destination)
        if next_hop is None:
            self.messages_dropped += 1
            self.sim.monitor.counter("mesh.routing_drops_no_route").add()
            return False
        self.interface.send(
            message,
            size_bytes=message.size_bytes,
            destination=next_hop,
            kind=message.kind,
        )
        self.messages_forwarded += 1
        return True

    def select_next_hop(self, destination: str) -> Optional[str]:
        """Pick the next hop for ``destination``.

        Direct neighbours are always preferred.  Otherwise the neighbour whose
        predicted position is closest to the destination's last-known position
        is chosen, provided it improves on our own distance (greedy forwarding
        with no detours).
        """
        if destination in self.neighbors:
            return destination
        dest_entry = self.neighbors.entry(destination)
        destination_position = (
            dest_entry.beacon.predicted_position(self.sim.now)
            if dest_entry is not None
            else None
        )
        if destination_position is None:
            # Without any position estimate, fall back to the best-connected
            # neighbour so one-hop-distant meshes still work.
            best_entry = None
            for entry in self.neighbors.entries():
                if best_entry is None or entry.beacons_received > best_entry.beacons_received:
                    best_entry = entry
            return best_entry.beacon.sender if best_entry is not None else None
        own_distance = self.position_provider().distance_to(destination_position)
        best_name: Optional[str] = None
        best_distance = own_distance
        for entry in self.neighbors.entries():
            candidate_position = entry.beacon.predicted_position(self.sim.now)
            distance = candidate_position.distance_to(destination_position)
            if distance < best_distance:
                best_distance = distance
                best_name = entry.beacon.sender
        return best_name

    # -------------------------------------------------------------- receive

    def _on_frame(self, frame: Frame, _quality: LinkQuality) -> None:
        if not isinstance(frame.payload, DataMessage):
            return
        message: DataMessage = frame.payload
        if frame.destination != self.node_name:
            return
        if message.destination == self.node_name:
            self._deliver_local(message)
        else:
            self.send(message.next_hop_copy())

    def _deliver_local(self, message: DataMessage) -> None:
        if message.message_id in self._seen_message_ids:
            return
        self._seen_message_ids.add(message.message_id)
        self.messages_delivered += 1
        self.sim.monitor.counter("mesh.messages_delivered").add()
        self.sim.monitor.sample("mesh.delivery_hops").add(float(message.hops_taken))
        for callback in self._delivery_callbacks:
            callback(message)

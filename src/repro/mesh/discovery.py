"""Asynchronous beaconing and neighbour discovery.

Every node runs a :class:`BeaconAgent` that broadcasts a
:class:`~repro.mesh.messages.Beacon` on its own unsynchronised schedule
(period plus per-node jitter) and records the beacons it hears in its
:class:`~repro.mesh.neighbor.NeighborTable`.  No node ever waits for another:
this is the "asynchronous" in AirDnD.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.mesh.messages import BEACON_SIZE_BYTES, Beacon
from repro.mesh.neighbor import NeighborTable
from repro.radio.interfaces import Frame, RadioInterface
from repro.radio.link import LinkQuality
from repro.simcore.simulator import Simulator

#: Type of the callback higher layers register to enrich outgoing beacons.
BeaconEnricher = Callable[[Beacon], Beacon]


class BeaconAgent:
    """Periodic beacon transmitter + neighbour table maintainer for one node.

    Parameters
    ----------
    sim:
        The simulator (clock + scheduling).
    interface:
        The node's radio interface.
    state_provider:
        Zero-argument callable returning the node's current
        ``(position, velocity)`` pair.
    beacon_period:
        Nominal seconds between beacons (100 ms–1 s typical for CAM-style
        messages).
    jitter:
        Uniform random extra delay added to each period so that nodes never
        synchronise.
    neighbor_lifetime:
        Neighbour-table expiry, in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        interface: RadioInterface,
        state_provider: Callable[[], tuple],
        beacon_period: float = 0.5,
        jitter: float = 0.1,
        neighbor_lifetime: float = 3.0,
    ) -> None:
        self.sim = sim
        self.interface = interface
        self.state_provider = state_provider
        self.beacon_period = beacon_period
        self.neighbors = NeighborTable(interface.node_name, lifetime=neighbor_lifetime)
        self._enrichers: List[BeaconEnricher] = []
        self._neighbor_up_callbacks: List[Callable[[str, Beacon], None]] = []
        self._neighbor_down_callbacks: List[Callable[[str], None]] = []
        self.beacons_sent = 0
        self.beacons_heard = 0
        self.epoch = 0
        self._beacons_sent_counter = sim.monitor.counter("mesh.beacons_sent")

        interface.on_receive(self._on_frame)
        self._beacon_task = sim.schedule_periodic(
            beacon_period,
            self._send_beacon,
            start_delay=float(
                sim.streams.get("beacon-phase").uniform(0.0, beacon_period)
            ),
            jitter=jitter,
            rng_stream=f"beacon-jitter:{interface.node_name}",
            name=f"beacon:{interface.node_name}",
        )
        self._expiry_task = sim.schedule_periodic(
            neighbor_lifetime / 2.0,
            self._expire_neighbors,
            name=f"neighbor-expiry:{interface.node_name}",
        )

    # ------------------------------------------------------------ callbacks

    def add_enricher(self, enricher: BeaconEnricher) -> None:
        """Let a higher layer rewrite outgoing beacons (add compute/data info)."""
        self._enrichers.append(enricher)

    def on_neighbor_up(self, callback: Callable[[str, Beacon], None]) -> None:
        """Register a callback fired when a new neighbour is discovered."""
        self._neighbor_up_callbacks.append(callback)

    def on_neighbor_down(self, callback: Callable[[str], None]) -> None:
        """Register a callback fired when a neighbour expires."""
        self._neighbor_down_callbacks.append(callback)

    def stop(self) -> None:
        """Stop beaconing and expiry (node shutting down)."""
        self._beacon_task.cancel()
        self._expiry_task.cancel()

    # ------------------------------------------------------------ beaconing

    def build_beacon(self) -> Beacon:
        """Construct the next outgoing beacon, applying all enrichers."""
        position, velocity = self.state_provider()
        beacon = Beacon(
            sender=self.interface.node_name,
            timestamp=self.sim.now,
            position=position,
            velocity=velocity,
            epoch=self.epoch,
        )
        for enricher in self._enrichers:
            beacon = enricher(beacon)
        return beacon

    def _send_beacon(self) -> None:
        beacon = self.build_beacon()
        self.interface.send(
            beacon, size_bytes=BEACON_SIZE_BYTES, destination=None, kind="beacon"
        )
        self.beacons_sent += 1
        self._beacons_sent_counter.add()

    # -------------------------------------------------------------- receive

    def _on_frame(self, frame: Frame, quality: LinkQuality) -> None:
        if frame.kind != "beacon" or not isinstance(frame.payload, Beacon):
            return
        beacon: Beacon = frame.payload
        self.beacons_heard += 1
        is_new = self.neighbors.observe(beacon, self.sim.now, quality)
        if is_new:
            self.epoch += 1
            self.sim.monitor.counter("mesh.neighbor_up_events").add()
            for callback in self._neighbor_up_callbacks:
                callback(beacon.sender, beacon)

    def _expire_neighbors(self) -> None:
        expired = self.neighbors.expire(self.sim.now)
        if expired:
            self.epoch += 1
            self.sim.monitor.counter("mesh.neighbor_down_events").add(len(expired))
            for name in expired:
                for callback in self._neighbor_down_callbacks:
                    callback(name)

"""Global topology snapshots for evaluation.

The mesh itself is fully decentralised; this module is the *observer* used by
the benchmark harness to quantify what the decentralised protocol achieved:
how many connected components exist, how large they are, how long links live,
and how quickly the mesh forms and dissolves as vehicles move (experiment
E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.mesh.discovery import BeaconAgent
from repro.simcore.simulator import Simulator


@dataclass
class TopologySnapshot:
    """The mesh graph at one instant, with derived statistics."""

    time: float
    graph: nx.Graph

    @property
    def node_count(self) -> int:
        """Number of nodes in the snapshot."""
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Number of bidirectionally confirmed links."""
        return self.graph.number_of_edges()

    def components(self) -> List[set]:
        """Connected components (each is a set of node names)."""
        return [set(c) for c in nx.connected_components(self.graph)]

    def largest_component_size(self) -> int:
        """Size of the largest connected component (0 for empty graph)."""
        comps = self.components()
        return max((len(c) for c in comps), default=0)

    def mean_degree(self) -> float:
        """Average node degree."""
        n = self.graph.number_of_nodes()
        if n == 0:
            return 0.0
        return 2.0 * self.graph.number_of_edges() / n

    def is_connected(self) -> bool:
        """Whether every node can reach every other node over the mesh."""
        if self.graph.number_of_nodes() == 0:
            return False
        return nx.is_connected(self.graph)


class TopologyObserver:
    """Periodically snapshots the union of all nodes' neighbour tables."""

    def __init__(
        self,
        sim: Simulator,
        agents: Sequence[BeaconAgent],
        period: float = 1.0,
        require_bidirectional: bool = True,
    ) -> None:
        self.sim = sim
        self.agents = list(agents)
        self.require_bidirectional = require_bidirectional
        self.snapshots: List[TopologySnapshot] = []
        self._link_first_seen: Dict[Tuple[str, str], float] = {}
        self.link_lifetimes: List[float] = []
        self._task = sim.schedule_periodic(period, self.take_snapshot, name="topology")

    def add_agent(self, agent: BeaconAgent) -> None:
        """Track an agent added after construction."""
        self.agents.append(agent)

    def replace_agent(self, agent: BeaconAgent) -> None:
        """Swap in a rebuilt agent for the same node name (crash recovery).

        A recovered node gets a brand-new beacon agent; the old one's frozen
        neighbour table must stop contributing to snapshots.
        """
        name = agent.interface.node_name
        self.agents = [
            existing
            for existing in self.agents
            if existing.interface.node_name != name
        ]
        self.agents.append(agent)

    def stop(self) -> None:
        """Stop periodic snapshotting."""
        self._task.cancel()

    # ------------------------------------------------------------ snapshots

    def take_snapshot(self) -> TopologySnapshot:
        """Build a snapshot now and append it to the history."""
        graph = nx.Graph()
        directed: Dict[Tuple[str, str], bool] = {}
        now = self.sim.now
        for agent in self.agents:
            owner = agent.interface.node_name
            graph.add_node(owner)
            # Age-filtered: a silent (e.g. crashed) peer stops contributing
            # edges once past the neighbour lifetime, even between the
            # owner's periodic expiry sweeps.
            for neighbor in agent.neighbors.active_names(now):
                directed[(owner, neighbor)] = True
        for (a, b) in directed:
            if not self.require_bidirectional or (b, a) in directed:
                graph.add_edge(a, b)
        snapshot = TopologySnapshot(self.sim.now, graph)
        self._update_link_lifetimes(snapshot)
        self.snapshots.append(snapshot)
        self.sim.monitor.timeseries("mesh.largest_component").record(
            self.sim.now, float(snapshot.largest_component_size())
        )
        self.sim.monitor.timeseries("mesh.edge_count").record(
            self.sim.now, float(snapshot.edge_count)
        )
        return snapshot

    def _update_link_lifetimes(self, snapshot: TopologySnapshot) -> None:
        current = {tuple(sorted(edge)) for edge in snapshot.graph.edges}
        known = set(self._link_first_seen)
        for link in current - known:
            self._link_first_seen[link] = snapshot.time
        for link in known - current:
            start = self._link_first_seen.pop(link)
            self.link_lifetimes.append(snapshot.time - start)

    # ------------------------------------------------------------- analysis

    def latest(self) -> Optional[TopologySnapshot]:
        """Most recent snapshot, or ``None`` before the first tick."""
        return self.snapshots[-1] if self.snapshots else None

    def mean_link_lifetime(self) -> float:
        """Average observed lifetime of links that have already ended."""
        if not self.link_lifetimes:
            return 0.0
        return sum(self.link_lifetimes) / len(self.link_lifetimes)

    def formation_time(self, min_size: int) -> Optional[float]:
        """First time the largest component reached ``min_size`` nodes."""
        for snapshot in self.snapshots:
            if snapshot.largest_component_size() >= min_size:
                return snapshot.time
        return None

"""Message formats exchanged over the mesh.

Only two message families exist at the mesh layer:

* :class:`Beacon` — the periodic, broadcast "I am here and this is my state"
  advertisement.  Higher layers (the AirDnD core) attach a summary of compute
  headroom and data availability to it, which is exactly what Model 1
  (network description) needs for candidate selection without any extra
  round-trips.
* :class:`DataMessage` — a unicast application payload (task description,
  task result, acknowledgement, attestation challenge...).  The mesh layer
  treats the payload as opaque.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.geometry.vector import Vec2

_message_ids = itertools.count()

#: Approximate serialized size of a beacon frame in bytes.  Beacons carry a
#: node id, position, velocity, compute summary and a short data-catalog
#: digest — comfortably under 300 bytes, consistent with ETSI CAM sizes.
BEACON_SIZE_BYTES = 300


@dataclass(frozen=True, slots=True)
class Beacon:
    """Periodic broadcast advertisement of one node's state.

    Allocated once per node per beacon period fleet-wide (then copied by
    ``dataclasses.replace`` when enriched), so it carries ``__slots__`` like
    the other hot per-frame objects.

    Attributes
    ----------
    sender:
        Node name.
    timestamp:
        Virtual time at which the beacon was generated.
    position / velocity:
        Kinematic state used for contact-time prediction.
    compute_headroom_ops:
        Spare compute capacity (operations/second) the sender is willing to
        lend out — the "unused property" in the Airbnb analogy.
    queue_length:
        Number of tasks currently queued at the sender.
    data_summary:
        Compact digest of the sender's data pond: data type name →
        (coverage radius in metres, freshness in seconds, quality score 0..1).
    trust_score:
        The sender's self-reported reputation handle (verified separately by
        the trust layer).
    epoch:
        The sender's local membership epoch, for diagnosing asynchrony.
    """

    sender: str
    timestamp: float
    position: Vec2
    velocity: Vec2
    compute_headroom_ops: float = 0.0
    queue_length: int = 0
    data_summary: Dict[str, Tuple[float, float, float]] = field(default_factory=dict)
    trust_score: float = 1.0
    epoch: int = 0

    def predicted_position(self, at_time: float) -> Vec2:
        """Dead-reckon the sender's position at ``at_time``."""
        horizon = max(0.0, at_time - self.timestamp)
        return self.position + self.velocity * horizon

    def age(self, now: float) -> float:
        """Seconds since the beacon was generated."""
        return max(0.0, now - self.timestamp)


@dataclass
class DataMessage:
    """A unicast application message routed over the mesh.

    Attributes
    ----------
    source / destination:
        Node names of the two endpoints.
    kind:
        Application-level label ("task", "result", "ack", ...).
    payload:
        Opaque application object.
    size_bytes:
        Serialized size used for transfer-time accounting.
    hop_limit:
        Remaining hops before the message is dropped (TTL).
    message_id:
        Unique identifier (assigned automatically).
    """

    source: str
    destination: str
    kind: str
    payload: Any
    size_bytes: int
    hop_limit: int = 8
    message_id: int = field(default_factory=lambda: next(_message_ids))
    hops_taken: int = 0

    def next_hop_copy(self) -> "DataMessage":
        """Copy of this message with the hop budget decremented."""
        clone = DataMessage(
            source=self.source,
            destination=self.destination,
            kind=self.kind,
            payload=self.payload,
            size_bytes=self.size_bytes,
            hop_limit=self.hop_limit - 1,
            message_id=self.message_id,
        )
        clone.hops_taken = self.hops_taken + 1
        return clone

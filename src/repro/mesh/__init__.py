"""Spontaneous dynamic mesh networking.

This package implements the network substrate beneath Model 1 of the paper:
edge devices that come into radio range of each other spontaneously form a
mesh, maintain it asynchronously through periodic beacons (no global
coordinator, no synchronised rounds), and dissolve it just as spontaneously
when they drive apart.

* :mod:`repro.mesh.messages` — beacon and data message formats.
* :mod:`repro.mesh.neighbor` — per-node neighbour tables with expiry.
* :mod:`repro.mesh.discovery` — the asynchronous beaconing agent.
* :mod:`repro.mesh.membership` — per-node mesh membership views and epochs.
* :mod:`repro.mesh.topology` — global topology snapshots for evaluation.
* :mod:`repro.mesh.routing` — greedy geographic multi-hop forwarding.
* :mod:`repro.mesh.transport` — reliable fragmenting transfers with
  acknowledgements and bounded retransmission.
* :mod:`repro.mesh.node` — :class:`MeshNode`, the bundle of all of the above
  that the AirDnD core attaches to.
"""

from repro.mesh.messages import Beacon, DataMessage
from repro.mesh.neighbor import NeighborEntry, NeighborTable
from repro.mesh.discovery import BeaconAgent
from repro.mesh.membership import MeshMembership
from repro.mesh.topology import TopologyObserver, TopologySnapshot
from repro.mesh.routing import GreedyGeoRouter
from repro.mesh.transport import ReliableTransport, Transfer
from repro.mesh.node import MeshNode

__all__ = [
    "Beacon",
    "DataMessage",
    "NeighborEntry",
    "NeighborTable",
    "BeaconAgent",
    "MeshMembership",
    "TopologyObserver",
    "TopologySnapshot",
    "GreedyGeoRouter",
    "ReliableTransport",
    "Transfer",
    "MeshNode",
]

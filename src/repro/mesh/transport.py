"""Reliable, fragmenting transfers over the mesh.

Task descriptions are small but task *results* (and, in the baselines, raw
sensor data) can be hundreds of kilobytes.  :class:`ReliableTransport` splits
a payload into MTU-sized fragments, sends them through the node's router,
reassembles them at the receiver, acknowledges complete transfers and
retransmits after a timeout, giving up after a bounded number of attempts.
The giving-up matters: in a vehicular mesh the peer may simply have driven
away, and the AirDnD orchestrator must treat that as a normal outcome, not an
error.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.mesh.messages import DataMessage
from repro.mesh.routing import GreedyGeoRouter
from repro.simcore.simulator import Simulator

_transfer_ids = itertools.count()

#: Maximum bytes of application payload per mesh fragment.
DEFAULT_MTU = 2000


@dataclass
class _Fragment:
    """Wire format of one fragment of a transfer."""

    transfer_id: int
    index: int
    total: int
    payload: Any
    kind: str
    size_bytes: int


@dataclass
class _Ack:
    """Acknowledgement of a fully received transfer."""

    transfer_id: int


@dataclass
class Transfer:
    """Book-keeping for one outgoing transfer."""

    transfer_id: int
    destination: str
    payload: Any
    size_bytes: int
    kind: str
    created_at: float
    on_complete: Optional[Callable[[bool, "Transfer"], None]] = None
    attempts: int = 0
    completed: bool = False
    succeeded: bool = False
    completed_at: Optional[float] = None

    def latency(self) -> Optional[float]:
        """Seconds from creation to completion (None while in flight)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at


class ReliableTransport:
    """Fragmentation + ack + bounded retransmission for one node.

    Parameters
    ----------
    sim:
        Simulator.
    router:
        The node's :class:`GreedyGeoRouter`.
    mtu:
        Fragment payload size in bytes.
    ack_timeout:
        Seconds to wait for an acknowledgement before retrying.
    max_attempts:
        Total tries (first transmission included) before declaring failure.
    """

    def __init__(
        self,
        sim: Simulator,
        router: GreedyGeoRouter,
        mtu: int = DEFAULT_MTU,
        ack_timeout: float = 1.0,
        max_attempts: int = 3,
    ) -> None:
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.sim = sim
        self.router = router
        self.mtu = mtu
        self.ack_timeout = ack_timeout
        self.max_attempts = max_attempts
        self._outgoing: Dict[int, Transfer] = {}
        self._incoming: Dict[int, Dict[int, _Fragment]] = {}
        self._receive_callbacks: List[Callable[[str, str, Any, int], None]] = []
        self.transfers_succeeded = 0
        self.transfers_failed = 0
        router.on_deliver(self._on_message)

    @property
    def node_name(self) -> str:
        """Owning node's name."""
        return self.router.node_name

    def on_receive(self, callback: Callable[[str, str, Any, int], None]) -> None:
        """Register ``callback(source, kind, payload, size_bytes)`` for completed transfers."""
        self._receive_callbacks.append(callback)

    # ---------------------------------------------------------------- send

    def send(
        self,
        destination: str,
        payload: Any,
        size_bytes: int,
        kind: str = "data",
        on_complete: Optional[Callable[[bool, Transfer], None]] = None,
    ) -> Transfer:
        """Start a reliable transfer toward ``destination``."""
        transfer = Transfer(
            transfer_id=next(_transfer_ids),
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
            created_at=self.sim.now,
            on_complete=on_complete,
        )
        self._outgoing[transfer.transfer_id] = transfer
        self._attempt(transfer)
        return transfer

    def _fragments_of(self, transfer: Transfer) -> List[_Fragment]:
        total = max(1, -(-transfer.size_bytes // self.mtu))  # ceil division
        fragments = []
        remaining = transfer.size_bytes
        for index in range(total):
            fragment_size = min(self.mtu, remaining) if remaining > 0 else 0
            remaining -= fragment_size
            fragments.append(
                _Fragment(
                    transfer_id=transfer.transfer_id,
                    index=index,
                    total=total,
                    payload=transfer.payload if index == total - 1 else None,
                    kind=transfer.kind,
                    size_bytes=max(fragment_size, 1),
                )
            )
        return fragments

    def _attempt(self, transfer: Transfer) -> None:
        if transfer.completed:
            return
        transfer.attempts += 1
        for fragment in self._fragments_of(transfer):
            message = DataMessage(
                source=self.node_name,
                destination=transfer.destination,
                kind=transfer.kind,
                payload=fragment,
                size_bytes=fragment.size_bytes + 40,  # fragment header overhead
            )
            self.router.send(message)
        self.sim.schedule(
            self.ack_timeout,
            _TransferTimeout(self, transfer),
            name=f"transfer-timeout-{transfer.transfer_id}",
        )

    # Queued ack-timeout callback as a picklable class (snapshots serialise
    # the event queue, so a lambda here would break the pickle round-trip).

    def _on_timeout(self, transfer: Transfer) -> None:
        if transfer.completed:
            return
        if transfer.attempts >= self.max_attempts:
            transfer.completed = True
            transfer.succeeded = False
            transfer.completed_at = self.sim.now
            self.transfers_failed += 1
            self.sim.monitor.counter("mesh.transfers_failed").add()
            self._outgoing.pop(transfer.transfer_id, None)
            if transfer.on_complete is not None:
                transfer.on_complete(False, transfer)
            return
        self._attempt(transfer)

    # -------------------------------------------------------------- receive

    def _on_message(self, message: DataMessage) -> None:
        payload = message.payload
        if isinstance(payload, _Ack):
            self._on_ack(payload)
            return
        if not isinstance(payload, _Fragment):
            return
        fragments = self._incoming.setdefault(payload.transfer_id, {})
        fragments[payload.index] = payload
        if len(fragments) == payload.total:
            self._complete_incoming(message.source, payload.transfer_id)

    def _complete_incoming(self, source: str, transfer_id: int) -> None:
        fragments = self._incoming.pop(transfer_id)
        any_fragment = next(iter(fragments.values()))
        final = fragments[any_fragment.total - 1]
        total_size = sum(f.size_bytes for f in fragments.values())
        ack = DataMessage(
            source=self.node_name,
            destination=source,
            kind="ack",
            payload=_Ack(transfer_id=transfer_id),
            size_bytes=60,
        )
        self.router.send(ack)
        self.sim.monitor.counter("mesh.transfers_received").add()
        for callback in self._receive_callbacks:
            callback(source, final.kind, final.payload, total_size)

    def _on_ack(self, ack: _Ack) -> None:
        transfer = self._outgoing.pop(ack.transfer_id, None)
        if transfer is None or transfer.completed:
            return
        transfer.completed = True
        transfer.succeeded = True
        transfer.completed_at = self.sim.now
        self.transfers_succeeded += 1
        self.sim.monitor.counter("mesh.transfers_succeeded").add()
        self.sim.monitor.sample("mesh.transfer_latency").add(transfer.latency() or 0.0)
        if transfer.on_complete is not None:
            transfer.on_complete(True, transfer)


class _TransferTimeout:
    """Queued ack-timeout callback for one transfer attempt (picklable)."""

    __slots__ = ("transport", "transfer")

    def __init__(self, transport: ReliableTransport, transfer: Transfer) -> None:
        self.transport = transport
        self.transfer = transfer

    def __call__(self) -> None:
        self.transport._on_timeout(self.transfer)

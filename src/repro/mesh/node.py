"""The full per-node mesh stack, bundled.

:class:`MeshNode` wires together a radio interface, the beaconing agent, the
membership view, the greedy router and the reliable transport for one mobile
node.  The AirDnD core builds its orchestration node on top of exactly one
``MeshNode``; tests and baselines can also use it directly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.mesh.membership import MeshMembership
from repro.mesh.routing import GreedyGeoRouter
from repro.mesh.transport import ReliableTransport, Transfer
from repro.mobility.providers import PositionOf
from repro.radio.interfaces import RadioEnvironment
from repro.simcore.simulator import Simulator


class MeshNode:
    """One node's complete mesh networking stack.

    Parameters
    ----------
    sim:
        The simulator.
    environment:
        The shared radio environment to attach to.
    mobile:
        The mobility object providing ``position`` and ``velocity`` (a
        :class:`~repro.mobility.vehicle.Vehicle`,
        :class:`~repro.mobility.waypoints.StaticNode`, ...).
    beacon_period / neighbor_lifetime:
        Discovery timing parameters.
    """

    def __init__(
        self,
        sim: Simulator,
        environment: RadioEnvironment,
        mobile: Any,
        beacon_period: float = 0.5,
        neighbor_lifetime: float = 3.0,
        mtu: int = 2000,
        ack_timeout: float = 1.0,
        max_attempts: int = 3,
    ) -> None:
        self.sim = sim
        self.mobile = mobile
        self.name = mobile.name
        self.interface = environment.attach(self.name, PositionOf(self.mobile))
        self.beacon_agent = BeaconAgent(
            sim,
            self.interface,
            state_provider=self._kinematic_state,
            beacon_period=beacon_period,
            neighbor_lifetime=neighbor_lifetime,
        )
        self.membership = MeshMembership(sim, self.beacon_agent)
        self.router = GreedyGeoRouter(
            sim,
            self.interface,
            self.beacon_agent.neighbors,
            position_provider=PositionOf(self.mobile),
        )
        self.transport = ReliableTransport(
            sim,
            self.router,
            mtu=mtu,
            ack_timeout=ack_timeout,
            max_attempts=max_attempts,
        )

    # -------------------------------------------------------------- helpers

    def _kinematic_state(self) -> Tuple[Vec2, Vec2]:
        velocity = getattr(self.mobile, "velocity", Vec2.zero())
        return self.mobile.position, velocity

    @property
    def position(self) -> Vec2:
        """Current position of the underlying mobile node."""
        return self.mobile.position

    @property
    def neighbors(self):
        """The node's neighbour table."""
        return self.beacon_agent.neighbors

    # ------------------------------------------------------------ messaging

    def send_reliable(
        self,
        destination: str,
        payload: Any,
        size_bytes: int,
        kind: str = "data",
        on_complete: Optional[Callable[[bool, Transfer], None]] = None,
    ) -> Transfer:
        """Reliably send ``payload`` to ``destination`` over the mesh."""
        return self.transport.send(
            destination, payload, size_bytes, kind=kind, on_complete=on_complete
        )

    def on_receive(self, callback: Callable[[str, str, Any, int], None]) -> None:
        """Register for completed incoming transfers."""
        self.transport.on_receive(callback)

    def shutdown(self) -> None:
        """Stop beaconing (the node disappears from the mesh after expiry)."""
        self.beacon_agent.stop()
        self.interface.enabled = False

    # ------------------------------------------------------------- snapshot

    def capture_state(self) -> dict:
        """The whole mesh stack's durable state as one plain-data dict.

        Covers the neighbour table (with ages), the membership view, and
        the discovery/routing/transport counters.  In-flight transfers and
        scheduled beacon/expiry firings live in the simulator's event queue
        and travel with the snapshot's object graph.
        """
        now = self.sim.now
        return {
            "name": self.name,
            "neighbors": self.beacon_agent.neighbors.capture_state(now),
            "membership": {
                "epoch": self.membership.epoch,
                "members": sorted(self.membership.members()),
            },
            "discovery": {
                "beacons_sent": self.beacon_agent.beacons_sent,
                "beacons_heard": self.beacon_agent.beacons_heard,
                "epoch": self.beacon_agent.epoch,
            },
            "routing": {
                "messages_forwarded": self.router.messages_forwarded,
                "messages_delivered": self.router.messages_delivered,
                "messages_dropped": self.router.messages_dropped,
                "seen_messages": len(self.router._seen_message_ids),
            },
            # Transfer ids come from a process-global counter whose offset
            # is not observable state, so only the in-flight counts are
            # captured — that keeps fingerprints comparable across restores.
            "transport": {
                "outgoing": len(self.transport._outgoing),
                "incoming": len(self.transport._incoming),
                "transfers_succeeded": self.transport.transfers_succeeded,
                "transfers_failed": self.transport.transfers_failed,
            },
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply captured counters/timing onto the live (unpickled) stack."""
        if state["name"] != self.name:
            raise ValueError(
                f"mesh snapshot is for {state['name']!r}, not {self.name!r}"
            )
        self.beacon_agent.neighbors.restore_state(state["neighbors"])
        self.membership.epoch = state["membership"]["epoch"]
        self.beacon_agent.beacons_sent = state["discovery"]["beacons_sent"]
        self.beacon_agent.beacons_heard = state["discovery"]["beacons_heard"]
        self.beacon_agent.epoch = state["discovery"]["epoch"]
        self.router.messages_forwarded = state["routing"]["messages_forwarded"]
        self.router.messages_delivered = state["routing"]["messages_delivered"]
        self.router.messages_dropped = state["routing"]["messages_dropped"]
        self.transport.transfers_succeeded = state["transport"]["transfers_succeeded"]
        self.transport.transfers_failed = state["transport"]["transfers_failed"]

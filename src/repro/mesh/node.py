"""The full per-node mesh stack, bundled.

:class:`MeshNode` wires together a radio interface, the beaconing agent, the
membership view, the greedy router and the reliable transport for one mobile
node.  The AirDnD core builds its orchestration node on top of exactly one
``MeshNode``; tests and baselines can also use it directly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.geometry.vector import Vec2
from repro.mesh.discovery import BeaconAgent
from repro.mesh.membership import MeshMembership
from repro.mesh.routing import GreedyGeoRouter
from repro.mesh.transport import ReliableTransport, Transfer
from repro.radio.interfaces import RadioEnvironment
from repro.simcore.simulator import Simulator


class MeshNode:
    """One node's complete mesh networking stack.

    Parameters
    ----------
    sim:
        The simulator.
    environment:
        The shared radio environment to attach to.
    mobile:
        The mobility object providing ``position`` and ``velocity`` (a
        :class:`~repro.mobility.vehicle.Vehicle`,
        :class:`~repro.mobility.waypoints.StaticNode`, ...).
    beacon_period / neighbor_lifetime:
        Discovery timing parameters.
    """

    def __init__(
        self,
        sim: Simulator,
        environment: RadioEnvironment,
        mobile: Any,
        beacon_period: float = 0.5,
        neighbor_lifetime: float = 3.0,
        mtu: int = 2000,
        ack_timeout: float = 1.0,
        max_attempts: int = 3,
    ) -> None:
        self.sim = sim
        self.mobile = mobile
        self.name = mobile.name
        self.interface = environment.attach(self.name, lambda: self.mobile.position)
        self.beacon_agent = BeaconAgent(
            sim,
            self.interface,
            state_provider=self._kinematic_state,
            beacon_period=beacon_period,
            neighbor_lifetime=neighbor_lifetime,
        )
        self.membership = MeshMembership(sim, self.beacon_agent)
        self.router = GreedyGeoRouter(
            sim,
            self.interface,
            self.beacon_agent.neighbors,
            position_provider=lambda: self.mobile.position,
        )
        self.transport = ReliableTransport(
            sim,
            self.router,
            mtu=mtu,
            ack_timeout=ack_timeout,
            max_attempts=max_attempts,
        )

    # -------------------------------------------------------------- helpers

    def _kinematic_state(self) -> Tuple[Vec2, Vec2]:
        velocity = getattr(self.mobile, "velocity", Vec2.zero())
        return self.mobile.position, velocity

    @property
    def position(self) -> Vec2:
        """Current position of the underlying mobile node."""
        return self.mobile.position

    @property
    def neighbors(self):
        """The node's neighbour table."""
        return self.beacon_agent.neighbors

    # ------------------------------------------------------------ messaging

    def send_reliable(
        self,
        destination: str,
        payload: Any,
        size_bytes: int,
        kind: str = "data",
        on_complete: Optional[Callable[[bool, Transfer], None]] = None,
    ) -> Transfer:
        """Reliably send ``payload`` to ``destination`` over the mesh."""
        return self.transport.send(
            destination, payload, size_bytes, kind=kind, on_complete=on_complete
        )

    def on_receive(self, callback: Callable[[str, str, Any, int], None]) -> None:
        """Register for completed incoming transfers."""
        self.transport.on_receive(callback)

    def shutdown(self) -> None:
        """Stop beaconing (the node disappears from the mesh after expiry)."""
        self.beacon_agent.stop()
        self.interface.enabled = False

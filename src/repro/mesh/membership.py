"""Per-node, asynchronous mesh membership views.

In AirDnD there is no global "the mesh"; each node has its own *view* of the
mesh it currently belongs to, derived from its neighbour table and the
neighbour tables' second-hand information carried in beacons.  Views advance
in per-node epochs — a node bumps its epoch whenever its view changes — so
two nodes may disagree transiently, which is exactly the asynchrony the
framework embraces.

:class:`MeshMembership` wraps one node's view and keeps statistics used by
experiment E3 (formation/dissolution dynamics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.mesh.discovery import BeaconAgent
from repro.simcore.simulator import Simulator


@dataclass
class MembershipEvent:
    """One change in a node's mesh view."""

    time: float
    kind: str  # "join" or "leave"
    peer: str
    epoch: int


@dataclass
class MembershipStats:
    """Aggregate statistics over a node's membership history."""

    joins: int = 0
    leaves: int = 0
    peak_size: int = 0
    total_membership_changes: int = 0
    contact_durations: List[float] = field(default_factory=list)

    def mean_contact_duration(self) -> float:
        """Average seconds a peer stayed in view (0 when no contact ended)."""
        if not self.contact_durations:
            return 0.0
        return sum(self.contact_durations) / len(self.contact_durations)


class MeshMembership:
    """One node's evolving view of the mesh it belongs to."""

    def __init__(self, sim: Simulator, beacon_agent: BeaconAgent) -> None:
        self.sim = sim
        self.agent = beacon_agent
        self.owner = beacon_agent.interface.node_name
        self.epoch = 0
        self.events: List[MembershipEvent] = []
        self.stats = MembershipStats()
        self._first_seen: Dict[str, float] = {}
        beacon_agent.on_neighbor_up(self._on_join)
        beacon_agent.on_neighbor_down(self._on_leave)

    # -------------------------------------------------------------- queries

    def members(self) -> Set[str]:
        """Current members of this node's mesh view (itself included).

        Age-aware: a neighbour whose last beacon is older than the neighbour
        lifetime is *not* a member, even if the periodic expiry sweep (which
        fires every half lifetime and records the ``leave`` event) has not
        caught up with it yet.  A crashed peer therefore leaves every live
        node's view within the beacon timeout itself.
        """
        return set(self.agent.neighbors.active_names(self.sim.now)) | {self.owner}

    def size(self) -> int:
        """Number of members in the current view."""
        return len(self.members())

    def is_member(self, name: str) -> bool:
        """Whether ``name`` is currently in this node's view."""
        return name in self.members()

    def view_age(self, peer: str) -> Optional[float]:
        """Seconds since the last beacon from ``peer`` (None if unknown)."""
        entry = self.agent.neighbors.entry(peer)
        if entry is None:
            return None
        return entry.age(self.sim.now)

    # --------------------------------------------------------------- events

    def _on_join(self, peer: str, _beacon) -> None:
        self.epoch += 1
        self._first_seen[peer] = self.sim.now
        self.stats.joins += 1
        self.stats.total_membership_changes += 1
        self.stats.peak_size = max(self.stats.peak_size, self.size())
        self.events.append(MembershipEvent(self.sim.now, "join", peer, self.epoch))
        self.sim.monitor.counter("mesh.joins").add()

    def _on_leave(self, peer: str) -> None:
        self.epoch += 1
        self.stats.leaves += 1
        self.stats.total_membership_changes += 1
        first = self._first_seen.pop(peer, None)
        if first is not None:
            self.stats.contact_durations.append(self.sim.now - first)
        self.events.append(MembershipEvent(self.sim.now, "leave", peer, self.epoch))
        self.sim.monitor.counter("mesh.leaves").add()

"""Per-node neighbour tables.

Each node keeps a table of the beacons it has recently heard.  An entry
expires when no beacon has arrived for ``lifetime`` seconds; expiry is the
*only* way a node learns that a neighbour left — there is no goodbye message,
matching the asynchronous, failure-prone reality of vehicular meshes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mesh.messages import Beacon
from repro.radio.link import LinkQuality


@dataclass
class NeighborEntry:
    """Everything a node knows about one neighbour."""

    beacon: Beacon
    last_seen: float
    link_quality: Optional[LinkQuality] = None
    beacons_received: int = 1
    first_seen: float = 0.0

    def age(self, now: float) -> float:
        """Seconds since the last beacon from this neighbour."""
        return max(0.0, now - self.last_seen)

    def contact_duration(self, now: float) -> float:
        """Seconds this neighbour has been continuously known."""
        return max(0.0, now - self.first_seen)


class NeighborTable:
    """Recently heard neighbours, with age-based expiry.

    Parameters
    ----------
    owner:
        Name of the node owning the table.
    lifetime:
        Seconds after which a silent neighbour is evicted (typically a small
        multiple of the beacon period).
    """

    def __init__(self, owner: str, lifetime: float = 3.0) -> None:
        if lifetime <= 0:
            raise ValueError("lifetime must be positive")
        self.owner = owner
        self.lifetime = lifetime
        self._entries: Dict[str, NeighborEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def observe(
        self, beacon: Beacon, now: float, link_quality: Optional[LinkQuality] = None
    ) -> bool:
        """Record a received beacon.

        Returns ``True`` when the sender is a *new* neighbour (not currently
        in the table), which is the membership-change trigger used by
        :class:`~repro.mesh.membership.MeshMembership`.
        """
        if beacon.sender == self.owner:
            return False
        existing = self._entries.get(beacon.sender)
        if existing is None:
            self._entries[beacon.sender] = NeighborEntry(
                beacon=beacon,
                last_seen=now,
                link_quality=link_quality,
                beacons_received=1,
                first_seen=now,
            )
            return True
        existing.beacon = beacon
        existing.last_seen = now
        existing.link_quality = link_quality
        existing.beacons_received += 1
        return False

    def expire(self, now: float) -> List[str]:
        """Remove silent neighbours; returns the names that were evicted."""
        expired = [
            name
            for name, entry in self._entries.items()
            if entry.age(now) > self.lifetime
        ]
        for name in expired:
            del self._entries[name]
        return expired

    def entry(self, name: str) -> Optional[NeighborEntry]:
        """The entry for ``name``, or ``None``."""
        return self._entries.get(name)

    def names(self) -> List[str]:
        """Names of all current neighbours."""
        return list(self._entries)

    def entries(self) -> List[NeighborEntry]:
        """All current entries."""
        return list(self._entries.values())

    def active_names(self, now: float) -> List[str]:
        """Names of neighbours whose entry has not aged past the lifetime.

        :meth:`expire` only runs on the owner's periodic sweep (every half
        lifetime), so between sweeps the table can hold entries that are
        already overdue.  View-style queries — "who is in my mesh right
        now?" — must not report those: a crashed peer has to leave every
        live node's view within the beacon timeout, not within timeout plus
        sweep phase (regression-tested by the fault-injection suite).  This
        is a non-mutating filter; eviction (and the leave callbacks) still
        happen on the sweep.
        """
        return [
            name
            for name, entry in self._entries.items()
            if entry.age(now) <= self.lifetime
        ]

    def active_entries(self, now: float) -> List[NeighborEntry]:
        """Entries not yet past the lifetime (see :meth:`active_names`)."""
        return [
            entry
            for entry in self._entries.values()
            if entry.age(now) <= self.lifetime
        ]

    def remove(self, name: str) -> None:
        """Explicitly drop a neighbour (used when a link is blacklisted)."""
        self._entries.pop(name, None)

    def clear(self) -> None:
        """Drop every neighbour."""
        self._entries.clear()

    # ------------------------------------------------------------- snapshot

    def capture_state(self, now: float = 0.0) -> dict:
        """Per-neighbour timing/count state (plus current ages) as plain data.

        The beacon objects themselves travel with the snapshot's object
        graph; this captures the fields that define expiry behaviour so a
        restored table is ``==``-comparable with the original.
        """
        return {
            "owner": self.owner,
            "lifetime": self.lifetime,
            "entries": {
                name: {
                    "last_seen": entry.last_seen,
                    "first_seen": entry.first_seen,
                    "beacons_received": entry.beacons_received,
                    "age": entry.age(now),
                }
                for name, entry in self._entries.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply captured timing/count fields onto the live entries.

        The entry set must match the capture — the entries (with their
        beacons) are restored by unpickling; a name mismatch means the
        snapshot and the table disagree and is rejected loudly.
        """
        if set(state["entries"]) != set(self._entries):
            raise ValueError(
                f"neighbour-table mismatch for {self.owner!r}: snapshot has "
                f"{sorted(state['entries'])}, table has {sorted(self._entries)}"
            )
        self.lifetime = float(state["lifetime"])
        for name, fields in state["entries"].items():
            entry = self._entries[name]
            entry.last_seen = fields["last_seen"]
            entry.first_seen = fields["first_seen"]
            entry.beacons_received = fields["beacons_received"]

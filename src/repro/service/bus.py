"""The subscriber bus sessions publish their event stream through.

One bus per session.  Events are plain JSON-ready dictionaries (``type``
``tick`` / ``state`` / ``topology`` / ``report`` — the streaming protocol is
documented in ``docs/SERVICE.md``).  Two kinds of subscribers coexist:

* **callbacks** — synchronous functions invoked inline at publish time;
  used by in-process consumers (tests, metric recorders).
* **queues** — ``asyncio.Queue`` endpoints for async consumers (the
  WebSocket streaming handler).  Publishing never blocks the simulation:
  when a slow consumer's queue is full the *oldest* event is dropped to
  make room, and the drop is counted, so a stalled WebSocket can never
  starve the session scheduler.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List

#: Default per-queue capacity before drop-oldest kicks in.
DEFAULT_QUEUE_SIZE = 256

Subscriber = Callable[[Dict[str, Any]], Any]


class SubscriberBus:
    """Fan-out of session events to callbacks and async queues."""

    def __init__(self) -> None:
        self._callbacks: List[Subscriber] = []
        self._queues: List[asyncio.Queue] = []
        #: Events published over the bus's lifetime.
        self.published = 0
        #: Events discarded because a queue subscriber lagged behind.
        self.dropped = 0
        #: Callback invocations that raised (isolated, not propagated).
        self.callback_errors = 0

    # ---------------------------------------------------------- subscribers

    def subscribe(self, callback: Subscriber) -> Subscriber:
        """Register a synchronous callback; returns it for unsubscribe."""
        self._callbacks.append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        """Remove a callback (no-op when it was never subscribed)."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def connect_queue(self, maxsize: int = DEFAULT_QUEUE_SIZE) -> asyncio.Queue:
        """Attach and return a bounded queue endpoint for an async consumer."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._queues.append(queue)
        return queue

    def disconnect_queue(self, queue: asyncio.Queue) -> None:
        """Detach a queue endpoint (no-op when it was never connected)."""
        try:
            self._queues.remove(queue)
        except ValueError:
            pass

    @property
    def subscriber_count(self) -> int:
        """Callbacks plus connected queues."""
        return len(self._callbacks) + len(self._queues)

    # -------------------------------------------------------------- publish

    def publish(self, event: Dict[str, Any]) -> None:
        """Deliver ``event`` to every subscriber without ever blocking."""
        self.published += 1
        for callback in self._callbacks:
            # A buggy subscriber must not take down the session scheduler
            # publishing from inside step(); isolate and count it.
            try:
                callback(event)
            except Exception:  # noqa: BLE001
                self.callback_errors += 1
        for queue in self._queues:
            if queue.full():
                try:
                    queue.get_nowait()
                    self.dropped += 1
                except asyncio.QueueEmpty:  # pragma: no cover - full implies nonempty
                    pass
            queue.put_nowait(event)

"""One live simulation owned by the service: a steppable session.

A :class:`SimulationSession` wraps a scenario and drives it exclusively
through the window primitives (`open_window` / `advance` / `close_window`),
never through the blocking ``run()`` — which is what makes a session
pausable, interleavable with other sessions, and evictable to disk without
perturbing a single event: the delivered-frame sequence and final report of
a stepped session are byte-identical to a run-to-completion call on the
same scenario (asserted by benchmark E17 and the interleaving property
suite).

Lifecycle state machine (see ``docs/SERVICE.md``)::

    created ──start──▶ running ◀──resume──┐
                         │ ▲              │
                         │ └──────pause──▶│ paused ──evict──▶ evicted
                         │                │   ▲                  │
                         ▼                │   └─────restore──────┘
                      finished ◀──────────┘
                      (a step that raises moves running/paused ──▶ failed,
                       a terminal state the scheduler skips)

Stepping is allowed in ``running`` *and* ``paused``: the registry's
scheduler only auto-advances ``running`` sessions, while a paused session
can still be stepped manually, slice by slice, for precise control.
Everything here is framework-free and stdlib-only; the HTTP/WebSocket
facade in :mod:`repro.service.app` is just one client of it.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from repro.scenarios.base import Scenario, ScenarioReport
from repro.service.bus import SubscriberBus
from repro.simcore.simulator import StepOutcome

#: Default event budget of one scheduler slice.  Small enough that no
#: session holds the cooperative scheduler for long, large enough that the
#: per-slice bookkeeping is noise (benchmark E17 gates the overhead).
DEFAULT_STEP_SLICE = 2000


class SessionError(RuntimeError):
    """Base class for session-layer failures."""


class SessionStateError(SessionError):
    """An operation was attempted in a state that does not allow it."""


class SessionState(str, enum.Enum):
    """Where a session is in its lifecycle."""

    CREATED = "created"
    RUNNING = "running"
    PAUSED = "paused"
    FINISHED = "finished"
    EVICTED = "evicted"
    #: Terminal: a step raised.  The broken scenario is dropped so one bad
    #: session cannot wedge the scheduler or leak its object graph.
    FAILED = "failed"


class SimulationSession:
    """A scenario plus the lifecycle state machine the service multiplexes.

    Parameters
    ----------
    session_id:
        The registry-assigned identifier (used in event payloads and URLs).
    scenario:
        A built (not yet run) scenario, or a restored mid-run one.
    duration:
        Virtual seconds the session's run window spans.
    fault_horizon:
        Optional fault-timeline horizon forwarded to ``open_window``.
    step_slice:
        Default ``max_events`` budget of one :meth:`step` slice.
    bus:
        The event bus ticks/state changes/reports are published on (a fresh
        one when omitted).
    """

    def __init__(
        self,
        session_id: str,
        scenario: Scenario,
        *,
        duration: float = 20.0,
        fault_horizon: Optional[float] = None,
        step_slice: int = DEFAULT_STEP_SLICE,
        bus: Optional[SubscriberBus] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        if step_slice <= 0:
            raise ValueError("step_slice must be positive")
        self.id = session_id
        self.scenario: Optional[Scenario] = scenario
        self.duration = float(duration)
        self.fault_horizon = None if fault_horizon is None else float(fault_horizon)
        self.step_slice = int(step_slice)
        self.bus = bus if bus is not None else SubscriberBus()
        self.state = SessionState.CREATED
        #: Step slices taken so far.
        self.ticks = 0
        #: Events fired across all slices.
        self.events_fired = 0
        #: The final report, set when the window completes.
        self.report: Optional[ScenarioReport] = None
        #: Human-readable failure cause, set on transition to ``failed``.
        self.error: Optional[str] = None
        self.scenario_name = scenario.name
        self.node_count = len(scenario.nodes)
        self._topology_seen = self._topology_count()
        self._snapshot_blob: Optional[bytes] = None
        self._snapshot_path: Optional[str] = None
        self._last_now = scenario.sim.now
        self._window_end: Optional[float] = None

    # ------------------------------------------------------------ lifecycle

    def _require(self, *states: SessionState) -> None:
        if self.state not in states:
            allowed = "/".join(s.value for s in states)
            raise SessionStateError(
                f"session {self.id!r} is {self.state.value}; "
                f"this operation needs {allowed}"
            )

    def _transition(self, to: SessionState) -> None:
        previous = self.state
        self.state = to
        self.bus.publish(
            {
                "type": "state",
                "session": self.id,
                "from": previous.value,
                "to": to.value,
            }
        )

    def start(self) -> None:
        """Open the run window: ``created`` → ``running``."""
        self._require(SessionState.CREATED)
        assert self.scenario is not None
        self._window_end = self.scenario.open_window(
            self.duration, fault_horizon=self.fault_horizon
        )
        self._transition(SessionState.RUNNING)

    def pause(self) -> None:
        """``running`` → ``paused``; the scheduler stops auto-advancing."""
        self._require(SessionState.RUNNING)
        self._transition(SessionState.PAUSED)

    def resume(self) -> None:
        """``paused`` → ``running``; the scheduler picks it back up."""
        self._require(SessionState.PAUSED)
        self._transition(SessionState.RUNNING)

    def fail(self, error: BaseException | str) -> None:
        """``running``/``paused`` → ``failed`` (terminal).

        Records the cause, publishes an ``error`` event so subscribers
        learn why their ticks stopped, and drops the broken scenario —
        its event queue is in an unknown state, so nothing else (snapshot,
        interim report, further steps) may touch it.
        """
        self._require(SessionState.RUNNING, SessionState.PAUSED)
        if isinstance(error, BaseException):
            error = f"{type(error).__name__}: {error}"
        self.error = error
        self._last_now = self._current_now()
        self.scenario = None
        self._transition(SessionState.FAILED)
        self.bus.publish(
            {"type": "error", "session": self.id, "error": error}
        )

    # ------------------------------------------------------------- stepping

    def step(self, max_events: Optional[int] = None) -> StepOutcome:
        """Advance the window by one bounded slice and publish a tick.

        Allowed while ``running`` (the scheduler's path) or ``paused``
        (manual single-stepping).  When the slice completes the window the
        session closes it, stores the report, publishes it, and
        transitions to ``finished``.
        """
        self._require(SessionState.RUNNING, SessionState.PAUSED)
        assert self.scenario is not None
        budget = self.step_slice if max_events is None else int(max_events)
        outcome = self.scenario.advance(max_events=budget)
        self.ticks += 1
        self.events_fired += outcome.events_fired
        self._last_now = outcome.now
        self.bus.publish(self._tick_event(outcome))
        self._publish_topology()
        if outcome.exhausted:
            self._finish()
        return outcome

    def fast_forward(self) -> ScenarioReport:
        """Drive the window to completion synchronously; returns the report.

        Auto-starts a ``created`` session.  Still sliced internally, so
        subscribers see the same tick stream a scheduler-driven session
        produces.
        """
        if self.state is SessionState.CREATED:
            self.start()
        self._require(SessionState.RUNNING, SessionState.PAUSED)
        while self.state in (SessionState.RUNNING, SessionState.PAUSED):
            self.step()
        assert self.report is not None
        return self.report

    def _finish(self) -> None:
        assert self.scenario is not None
        self.report = self.scenario.close_window()
        self._transition(SessionState.FINISHED)
        self.bus.publish(
            {
                "type": "report",
                "session": self.id,
                "report": self.report.as_dict(),
            }
        )

    # ------------------------------------------------------- evict / restore

    def snapshot(self, path: Optional[str] = None) -> bytes:
        """Snapshot the live scenario (mid-window snapshots resume cleanly)."""
        self._require(
            SessionState.RUNNING, SessionState.PAUSED, SessionState.FINISHED
        )
        assert self.scenario is not None
        return self.scenario.snapshot(path)

    def evict(self, path: Optional[str] = None) -> None:
        """``paused`` → ``evicted``: snapshot the scenario and drop it.

        The artifact is written to ``path`` when given, otherwise kept
        in memory.  Either way the scenario object graph — by far the
        session's memory footprint — is released.
        """
        self._require(SessionState.PAUSED)
        assert self.scenario is not None
        blob = self.scenario.snapshot(path)
        if path is not None:
            self._snapshot_path = path
            self._snapshot_blob = None
        else:
            self._snapshot_blob = blob
        self.scenario = None
        self._transition(SessionState.EVICTED)

    def restore(self) -> None:
        """``evicted`` → ``paused``: rebuild the scenario from its snapshot.

        Event processing continues exactly where eviction stopped it — the
        determinism contract of :mod:`repro.snapshot` makes the
        evict/restore round trip byte-invisible (gated by benchmark E17).
        """
        self._require(SessionState.EVICTED)
        source = (
            self._snapshot_blob
            if self._snapshot_blob is not None
            else self._snapshot_path
        )
        if source is None:  # pragma: no cover - evict() always records one
            raise SessionError(f"session {self.id!r} has no eviction artifact")
        self.scenario = Scenario.restore(source)
        self._snapshot_blob = None
        self._snapshot_path = None
        self._transition(SessionState.PAUSED)

    # --------------------------------------------------------------- status

    def status(self) -> Dict[str, Any]:
        """JSON-ready summary of the session (cheap; no lifecycle scan)."""
        now = self._current_now()
        window_end = self._window_end
        progress = None
        if window_end is not None and self.duration > 0:
            start = window_end - self.duration
            progress = min(1.0, max(0.0, (now - start) / self.duration))
        return {
            "id": self.id,
            "state": self.state.value,
            "scenario": self.scenario_name,
            "node_count": self.node_count,
            "duration": self.duration,
            "now": now,
            "window_end": window_end,
            "progress": progress,
            "ticks": self.ticks,
            "events_fired": self.events_fired,
            "subscribers": self.bus.subscriber_count,
            "error": self.error,
        }

    def interim_report(self) -> Dict[str, float]:
        """A full report dict of the session *so far* (scans lifecycles)."""
        if self.report is not None:
            return self.report.as_dict()
        self._require(
            SessionState.CREATED, SessionState.RUNNING, SessionState.PAUSED
        )
        assert self.scenario is not None
        return self.scenario.build_report().as_dict()

    # -------------------------------------------------------------- helpers

    def _current_now(self) -> float:
        if self.scenario is not None:
            return self.scenario.sim.now
        return self._last_now

    def _tick_event(self, outcome: StepOutcome) -> Dict[str, Any]:
        assert self.scenario is not None
        return {
            "type": "tick",
            "session": self.id,
            "now": outcome.now,
            "events_fired": outcome.events_fired,
            "total_events": self.events_fired,
            "pending_events": self.scenario.sim.pending_events,
            "tick": self.ticks,
        }

    def _topology_count(self) -> int:
        observer = getattr(self.scenario, "topology", None)
        if observer is None:
            return 0
        return len(observer.snapshots)

    def _publish_topology(self) -> None:
        """Emit one event per topology snapshot taken since the last slice."""
        observer = getattr(self.scenario, "topology", None)
        if observer is None:
            return
        snapshots = observer.snapshots
        for snapshot in snapshots[self._topology_seen:]:
            self.bus.publish(
                {
                    "type": "topology",
                    "session": self.id,
                    "time": snapshot.time,
                    "nodes": snapshot.node_count,
                    "edges": snapshot.edge_count,
                    "largest_component": snapshot.largest_component_size(),
                }
            )
        self._topology_seen = len(snapshots)

"""A stdlib-only, in-process ASGI test client.

Drives :class:`repro.service.app.ServiceApp` (or any ASGI 3 app) without a
server, a socket, or any third-party dependency: the client owns a private
event loop, runs the app's lifespan protocol on entry/exit, and executes
each request as a coroutine on that loop.  Because the loop persists across
requests, background tasks the app started at lifespan startup (the session
registry's auto-drive scheduler) keep making progress whenever the client
runs the loop — :meth:`ASGITestClient.run_loop` hands it time explicitly.

Used by the service test-suite and the CI service smoke step; also handy
interactively::

    with ASGITestClient(create_app(auto_drive=False)) as client:
        created = client.post("/sessions", {"scenario": "highway", "start": True})
        client.post(f"/sessions/{created.json()['id']}/fast-forward")
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple


class Response:
    """One HTTP response: ``status``, ``headers``, ``body`` and ``json()``."""

    def __init__(
        self, status: int, headers: List[Tuple[bytes, bytes]], body: bytes
    ) -> None:
        self.status = status
        self.headers = {
            key.decode("latin-1").lower(): value.decode("latin-1")
            for key, value in headers
        }
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON."""
        return json.loads(self.body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Response(status={self.status}, body={self.body[:80]!r})"


class WebSocketTestSession:
    """A live in-process WebSocket: ``receive_json`` / ``send_json`` / close.

    Created via :meth:`ASGITestClient.websocket`; use as a context manager
    so the connection is always torn down.
    """

    def __init__(self, client: "ASGITestClient", path: str) -> None:
        self._client = client
        self._to_app: asyncio.Queue = asyncio.Queue()
        self._from_app: asyncio.Queue = asyncio.Queue()
        scope = {
            "type": "websocket",
            "asgi": {"version": "3.0"},
            "path": path,
            "query_string": b"",
            "headers": [],
            "scheme": "ws",
        }
        self._task = client._spawn(
            client.app(scope, self._to_app.get, self._from_app.put)
        )
        self._to_app.put_nowait({"type": "websocket.connect"})
        message = self._next_message()
        if message["type"] == "websocket.close":
            self.accepted = False
            self.close_code = message.get("code")
        else:
            assert message["type"] == "websocket.accept", message
            self.accepted = True
            self.close_code: Optional[int] = None

    def __enter__(self) -> "WebSocketTestSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _next_message(self, timeout: float = 5.0) -> Dict[str, Any]:
        return self._client._run(
            asyncio.wait_for(self._from_app.get(), timeout)
        )

    def receive_json(self, timeout: float = 5.0) -> Any:
        """Next text frame from the app, parsed as JSON.

        A server-initiated close raises ``EOFError`` (and records
        ``close_code``).
        """
        message = self._next_message(timeout)
        if message["type"] == "websocket.close":
            self.close_code = message.get("code")
            raise EOFError(f"websocket closed by app (code {self.close_code})")
        assert message["type"] == "websocket.send", message
        return json.loads(message["text"])

    def send_json(self, payload: Any) -> None:
        """Send one text frame to the app."""
        self._to_app.put_nowait(
            {"type": "websocket.receive", "text": json.dumps(payload)}
        )

    def close(self) -> None:
        """Disconnect and wait for the app handler to finish."""
        if self._task.done():
            return
        self._to_app.put_nowait({"type": "websocket.disconnect", "code": 1000})
        try:
            self._client._run(asyncio.wait_for(self._task, 5.0))
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            self._task.cancel()


class ASGITestClient:
    """Synchronous facade over an ASGI app on a private event loop."""

    def __init__(self, app) -> None:
        self.app = app
        self._loop = asyncio.new_event_loop()
        self._lifespan_to_app: asyncio.Queue = asyncio.Queue()
        self._lifespan_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "ASGITestClient":
        self._startup()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _run(self, coroutine):
        return self._loop.run_until_complete(coroutine)

    def _spawn(self, coroutine) -> asyncio.Task:
        async def _create():
            return self._loop.create_task(coroutine)

        return self._run(_create())

    def _startup(self) -> None:
        if self._lifespan_task is not None:
            return
        startup_complete = asyncio.Queue()
        scope = {"type": "lifespan", "asgi": {"version": "3.0"}}
        self._lifespan_task = self._spawn(
            self.app(scope, self._lifespan_to_app.get, startup_complete.put)
        )
        self._lifespan_to_app.put_nowait({"type": "lifespan.startup"})
        message = self._run(asyncio.wait_for(startup_complete.get(), 5.0))
        assert message["type"] == "lifespan.startup.complete", message
        self._lifespan_done = startup_complete

    def shutdown(self) -> None:
        """Run lifespan shutdown and close the private loop."""
        if self._lifespan_task is not None:
            self._lifespan_to_app.put_nowait({"type": "lifespan.shutdown"})
            try:
                self._run(asyncio.wait_for(self._lifespan_task, 5.0))
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                self._lifespan_task.cancel()
            self._lifespan_task = None
        if not self._loop.is_closed():
            self._loop.close()

    def run_loop(self, seconds: float) -> None:
        """Hand the event loop time (lets background app tasks progress)."""
        self._run(asyncio.sleep(seconds))

    # ------------------------------------------------------------- requests

    def request(
        self,
        method: str,
        path: str,
        json_body: Optional[Dict[str, Any]] = None,
    ) -> Response:
        """Execute one HTTP request against the app, synchronously."""
        body = b"" if json_body is None else json.dumps(json_body).encode()
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode(),
            "query_string": b"",
            "headers": [(b"content-type", b"application/json")] if json_body else [],
            "scheme": "http",
        }
        sent = False
        received: List[Dict[str, Any]] = []

        async def receive():
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {"type": "http.request", "body": body, "more_body": False}

        async def send(message):
            received.append(message)

        self._run(self.app(scope, receive, send))
        assert received and received[0]["type"] == "http.response.start", received
        status = received[0]["status"]
        headers = received[0].get("headers", [])
        payload = b"".join(
            message.get("body", b"")
            for message in received[1:]
            if message["type"] == "http.response.body"
        )
        return Response(status, headers, payload)

    def get(self, path: str) -> Response:
        """``GET path``."""
        return self.request("GET", path)

    def post(self, path: str, json_body: Optional[Dict[str, Any]] = None) -> Response:
        """``POST path`` with an optional JSON body."""
        return self.request("POST", path, json_body)

    def delete(self, path: str) -> Response:
        """``DELETE path``."""
        return self.request("DELETE", path)

    def websocket(self, path: str) -> WebSocketTestSession:
        """Open an in-process WebSocket to the app."""
        return WebSocketTestSession(self, path)

"""Simulation-as-a-service: steppable sessions behind a small facade.

The package turns the repo's deterministic scenario engine into a
multiplexed service while keeping the determinism contract intact — a
session that is stepped in slices, interleaved with other sessions,
paused, evicted to a snapshot, and restored produces delivered-frame
sequences and reports byte-identical to an uninterrupted
``Scenario.run()`` (gated by benchmark E17 and the interleaving property
suite).

Layers, bottom up (each importable without the ones above it):

- :mod:`repro.service.bus` — in-process pub/sub for tick/state/topology/
  report events (sync callbacks + bounded asyncio queues).
- :mod:`repro.service.session` — :class:`SimulationSession`, the lifecycle
  state machine around one scenario's run window.
- :mod:`repro.service.registry` — :class:`SessionRegistry`, creation and
  cooperative round-robin scheduling of many sessions.
- :mod:`repro.service.app` — the framework-free ASGI HTTP + WebSocket
  facade (``repro serve``).
- :mod:`repro.service.httpd` / :mod:`repro.service.testing` — a stdlib
  ASGI server fallback and an in-process test client.

Everything is stdlib-plus-repo only; uvicorn (the ``[service]`` extra) is
an optional nicety for production serving, never a requirement.
"""

from repro.service.app import ServiceApp, create_app
from repro.service.bus import SubscriberBus
from repro.service.registry import SessionRegistry, UnknownSessionError
from repro.service.session import (
    DEFAULT_STEP_SLICE,
    SessionError,
    SessionState,
    SessionStateError,
    SimulationSession,
)

__all__ = [
    "DEFAULT_STEP_SLICE",
    "ServiceApp",
    "SessionError",
    "SessionRegistry",
    "SessionState",
    "SessionStateError",
    "SimulationSession",
    "SubscriberBus",
    "UnknownSessionError",
    "create_app",
]

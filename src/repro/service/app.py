"""Simulation-as-a-service: a framework-free ASGI HTTP + WebSocket facade.

The app speaks the plain `ASGI 3 <https://asgi.readthedocs.io/>`_ protocol
directly — no web framework — so the service layer stays importable with
zero dependencies beyond the package itself.  Run it under any ASGI server:
``repro serve`` uses uvicorn when installed (the ``[service]`` extra) and
otherwise falls back to the bundled stdlib server in
:mod:`repro.service.httpd`; tests drive it in-process through
:class:`repro.service.testing.ASGITestClient`.

Endpoints (JSON in/out unless noted; full protocol in ``docs/SERVICE.md``)::

    GET    /healthz                     liveness + per-state session counts
    GET    /metrics                     Prometheus exposition (text 0.0.4)
    GET    /sessions                    list session summaries
    POST   /sessions                    create (scenario/n/seed/duration/
                                        fault_horizon/step_slice/knobs;
                                        "start": true opens the window)
    GET    /sessions/{id}               session status
    GET    /sessions/{id}/report        final (or interim) report
    POST   /sessions/{id}/start         created -> running
    POST   /sessions/{id}/step          one slice ({"max_events": N} optional)
    POST   /sessions/{id}/pause         running -> paused
    POST   /sessions/{id}/resume        paused -> running
    POST   /sessions/{id}/fast-forward  drive the window to completion
    POST   /sessions/{id}/snapshot      artifact bytes, or {"path": ...} to
                                        write server-side
    POST   /sessions/{id}/evict         pause if needed, snapshot, drop
    POST   /sessions/{id}/restore       evicted -> paused
    DELETE /sessions/{id}               forget the session
    WS     /sessions/{id}/stream        tick/state/topology/report events

Errors map to conventional statuses: unknown session → 404, an operation
the lifecycle state forbids → 409, bad parameters → 400.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict
from typing import Any, Dict, Optional

from repro.service.registry import SessionRegistry, UnknownSessionError
from repro.service.session import SessionState, SessionStateError
from repro.simcore.simulator import StepOutcome

_STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


def _outcome_payload(outcome: StepOutcome) -> Dict[str, Any]:
    payload = asdict(outcome)
    payload["exhausted"] = outcome.exhausted
    return payload


class ServiceApp:
    """The ASGI application object (``async def __call__(scope, ...)``)."""

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        *,
        auto_drive: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else SessionRegistry()
        #: Whether lifespan startup launches the background scheduler that
        #: auto-advances ``running`` sessions.  Off, every slice must be
        #: requested explicitly via ``/step`` — the mode deterministic
        #: test harnesses use.
        self.auto_drive = auto_drive
        self._driver: Optional[asyncio.Task] = None

    # ----------------------------------------------------------- ASGI entry

    async def __call__(self, scope: Dict[str, Any], receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
        elif scope["type"] == "http":
            await self._http(scope, receive, send)
        elif scope["type"] == "websocket":
            await self._websocket(scope, receive, send)
        else:  # pragma: no cover - no other scope types exist today
            raise RuntimeError(f"unsupported ASGI scope type {scope['type']!r}")

    # ------------------------------------------------------------- lifespan

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                if self.auto_drive and self._driver is None:
                    self._driver = asyncio.get_running_loop().create_task(
                        self.registry.drive()
                    )
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                if self._driver is not None:
                    self.registry.stop_driving()
                    self._driver.cancel()
                    try:
                        await self._driver
                    except asyncio.CancelledError:
                        pass
                    self._driver = None
                await send({"type": "lifespan.shutdown.complete"})
                return

    # ----------------------------------------------------------------- HTTP

    async def _http(self, scope, receive, send) -> None:
        method = scope["method"].upper()
        parts = [part for part in scope["path"].split("/") if part]
        try:
            status, payload, raw = await self._route(method, parts, receive)
        except UnknownSessionError as error:
            status, payload, raw = 404, {"error": f"unknown session {error.args[0]!r}"}, None
        except SessionStateError as error:
            status, payload, raw = 409, {"error": str(error)}, None
        except (ValueError, TypeError) as error:
            status, payload, raw = 400, {"error": str(error)}, None
        if raw is not None:
            body, content_type = raw
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = b"application/json"
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", content_type),
                    (b"content-length", str(len(body)).encode("ascii")),
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})

    async def _route(self, method: str, parts, receive):
        """Dispatch one request; returns ``(status, json_payload, raw)``."""
        registry = self.registry
        if parts == ["healthz"] and method == "GET":
            return (
                200,
                {
                    "status": "ok",
                    "sessions": len(registry),
                    "states": registry.state_counts(),
                    "scheduler_passes": registry.scheduler_passes,
                    "sessions_stepped": registry.sessions_stepped,
                },
                None,
            )
        if parts == ["metrics"] and method == "GET":
            from repro.telemetry.prometheus import (
                CONTENT_TYPE,
                session_registry_exposition,
            )

            body = session_registry_exposition(registry).encode("utf-8")
            return 200, None, (body, CONTENT_TYPE.encode("ascii"))
        if parts == ["sessions"]:
            if method == "GET":
                return (
                    200,
                    {"sessions": [s.status() for s in registry.sessions()]},
                    None,
                )
            if method == "POST":
                return await self._create_session(receive)
            return 405, {"error": "method not allowed"}, None
        if len(parts) >= 2 and parts[0] == "sessions":
            session_id = parts[1]
            action = parts[2] if len(parts) == 3 else None
            if len(parts) > 3:
                return 404, {"error": "not found"}, None
            return await self._session_route(method, session_id, action, receive)
        return 404, {"error": "not found"}, None

    async def _create_session(self, receive):
        body = await _read_json(receive)
        scenario_name = body.get("scenario")
        if not scenario_name:
            raise ValueError("create needs a 'scenario' name")
        session = self.registry.create(
            str(scenario_name).replace("_", "-"),
            n=body.get("n"),
            seed=int(body.get("seed", 0)),
            duration=float(body.get("duration", 20.0)),
            fault_horizon=body.get("fault_horizon"),
            step_slice=body.get("step_slice"),
            knobs=body.get("knobs"),
        )
        if body.get("start"):
            session.start()
        return 201, session.status(), None

    async def _session_route(self, method, session_id, action, receive):
        registry = self.registry
        if action is None:
            if method == "GET":
                return 200, registry.get(session_id).status(), None
            if method == "DELETE":
                registry.delete(session_id)
                return 200, {"deleted": session_id}, None
            return 405, {"error": "method not allowed"}, None
        if method == "GET" and action == "report":
            return 200, {"report": registry.get(session_id).interim_report()}, None
        if method != "POST":
            return 405, {"error": "method not allowed"}, None
        session = registry.get(session_id)
        if action == "start":
            session.start()
            return 200, session.status(), None
        if action == "step":
            body = await _read_json(receive)
            max_events = body.get("max_events")
            outcome = session.step(
                None if max_events is None else int(max_events)
            )
            return (
                200,
                {"outcome": _outcome_payload(outcome), "status": session.status()},
                None,
            )
        if action == "pause":
            session.pause()
            return 200, session.status(), None
        if action == "resume":
            session.resume()
            return 200, session.status(), None
        if action == "fast-forward":
            report = await self._fast_forward(session)
            return 200, {"report": report, "status": session.status()}, None
        if action == "snapshot":
            body = await _read_json(receive)
            path = body.get("path")
            blob = session.snapshot(path)
            if path is not None:
                return 200, {"written": path, "bytes": len(blob)}, None
            return 200, None, (blob, b"application/octet-stream")
        if action == "evict":
            registry.evict(session_id)
            return 200, session.status(), None
        if action == "restore":
            registry.restore(session_id)
            return 200, session.status(), None
        return 404, {"error": "not found"}, None

    async def _fast_forward(self, session) -> Dict[str, float]:
        """Drive a session to completion without hogging the event loop."""
        if session.state is SessionState.CREATED:
            session.start()
        while session.state in (SessionState.RUNNING, SessionState.PAUSED):
            session.step()
            await asyncio.sleep(0)
        assert session.report is not None
        return session.report.as_dict()

    # ------------------------------------------------------------ WebSocket

    async def _websocket(self, scope, receive, send) -> None:
        parts = [part for part in scope["path"].split("/") if part]
        message = await receive()
        assert message["type"] == "websocket.connect"
        if len(parts) != 3 or parts[0] != "sessions" or parts[2] != "stream":
            await send({"type": "websocket.close", "code": 4404})
            return
        try:
            session = self.registry.get(parts[1])
        except UnknownSessionError:
            await send({"type": "websocket.close", "code": 4404})
            return
        await send({"type": "websocket.accept"})
        await send(
            {
                "type": "websocket.send",
                "text": json.dumps({"type": "hello", **session.status()}),
            }
        )
        if session.state is SessionState.FINISHED and session.report is not None:
            # Late subscriber: replay the terminal report, then close.
            await send(
                {
                    "type": "websocket.send",
                    "text": json.dumps(
                        {
                            "type": "report",
                            "session": session.id,
                            "report": session.report.as_dict(),
                        }
                    ),
                }
            )
            await send({"type": "websocket.close", "code": 1000})
            return
        queue = session.bus.connect_queue()
        try:
            await self._stream(queue, receive, send)
        finally:
            session.bus.disconnect_queue(queue)

    async def _stream(self, queue, receive, send) -> None:
        """Forward bus events until the client leaves or the run finishes."""
        receive_task = asyncio.ensure_future(receive())
        queue_task = asyncio.ensure_future(queue.get())
        try:
            while True:
                done, _ = await asyncio.wait(
                    {receive_task, queue_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if receive_task in done:
                    message = receive_task.result()
                    if message["type"] == "websocket.disconnect":
                        return
                    # Inbound frames are ignored; keep listening.
                    receive_task = asyncio.ensure_future(receive())
                if queue_task in done:
                    event = queue_task.result()
                    await send(
                        {"type": "websocket.send", "text": json.dumps(event)}
                    )
                    if event.get("type") == "report":
                        await send({"type": "websocket.close", "code": 1000})
                        return
                    queue_task = asyncio.ensure_future(queue.get())
        finally:
            for task in (receive_task, queue_task):
                if not task.done():
                    task.cancel()


async def _read_json(receive) -> Dict[str, Any]:
    """Drain an ASGI request body and parse it as JSON (empty → ``{}``)."""
    chunks = []
    while True:
        message = await receive()
        if message["type"] != "http.request":  # pragma: no cover - disconnect
            break
        chunks.append(message.get("body", b""))
        if not message.get("more_body"):
            break
    body = b"".join(chunks)
    if not body:
        return {}
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as error:
        raise ValueError(f"request body is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    return payload


def create_app(
    registry: Optional[SessionRegistry] = None, *, auto_drive: bool = True
) -> ServiceApp:
    """Build the service's ASGI application."""
    return ServiceApp(registry, auto_drive=auto_drive)

"""The session registry: many simulations multiplexed on one process.

The registry owns every live :class:`~repro.service.session.SimulationSession`
and drives the ``running`` ones with a cooperative round-robin scheduler:
each pass gives each runnable session exactly one bounded ``step`` slice and
then yields to the event loop, so no session can starve another and
WebSocket subscribers stay responsive while simulations are advancing.  The
scheduler is plain ``asyncio`` — the simulation itself never blocks on I/O,
it is CPU-bounded per slice by ``step_slice`` events.

The registry is framework-free; the ASGI app in :mod:`repro.service.app`
and the E17 benchmark are both thin clients of it.
"""

from __future__ import annotations

import asyncio
import itertools
import os
from typing import Any, Dict, List, Optional

from repro.scenarios import build_scenario
from repro.scenarios.base import Scenario
from repro.service.session import (
    DEFAULT_STEP_SLICE,
    SessionState,
    SimulationSession,
)
from repro.telemetry.trace import current_tracer


class UnknownSessionError(KeyError):
    """Lookup of a session id the registry does not hold."""


class SessionRegistry:
    """Create, look up, schedule, evict and delete simulation sessions.

    Parameters
    ----------
    step_slice:
        Default per-slice event budget for sessions created through the
        registry.
    snapshot_dir:
        When set, :meth:`evict` writes eviction artifacts under this
        directory (``<id>.reprosnap``) instead of holding them in memory.
    """

    def __init__(
        self,
        *,
        step_slice: int = DEFAULT_STEP_SLICE,
        snapshot_dir: Optional[str] = None,
    ) -> None:
        self.step_slice = int(step_slice)
        self.snapshot_dir = snapshot_dir
        self._sessions: Dict[str, SimulationSession] = {}
        self._ids = itertools.count(1)
        self._stop_driving = False
        # Plain-int scheduler odometers surfaced by /healthz and /metrics.
        self.scheduler_passes = 0
        self.sessions_stepped = 0

    # ------------------------------------------------------------------ CRUD

    def create(
        self,
        scenario_name: Optional[str] = None,
        *,
        scenario: Optional[Scenario] = None,
        n: Optional[int] = None,
        seed: int = 0,
        duration: float = 20.0,
        fault_horizon: Optional[float] = None,
        step_slice: Optional[int] = None,
        session_id: Optional[str] = None,
        knobs: Optional[Dict[str, Any]] = None,
    ) -> SimulationSession:
        """Build a scenario (or adopt a prebuilt one) and register a session.

        ``scenario_name``/``n``/``seed``/``knobs`` go through the same
        :func:`~repro.scenarios.build_scenario` registry the CLI and sweep
        runner use; alternatively pass a ``scenario`` you built yourself.
        The new session starts in ``created`` — call
        :meth:`SimulationSession.start` (or the facade's ``/start``) to
        open its run window.
        """
        if (scenario_name is None) == (scenario is None):
            raise ValueError("pass exactly one of scenario_name or scenario")
        if scenario is None:
            scenario = build_scenario(
                scenario_name, n=n, seed=seed, **(knobs or {})
            )
        if session_id is None:
            session_id = f"s{next(self._ids):04d}"
            while session_id in self._sessions:  # pragma: no cover - defensive
                session_id = f"s{next(self._ids):04d}"
        elif session_id in self._sessions:
            raise ValueError(f"session id {session_id!r} already exists")
        session = SimulationSession(
            session_id,
            scenario,
            duration=duration,
            fault_horizon=fault_horizon,
            step_slice=self.step_slice if step_slice is None else step_slice,
        )
        self._sessions[session_id] = session
        return session

    def get(self, session_id: str) -> SimulationSession:
        """The session registered under ``session_id`` (loud when absent)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise UnknownSessionError(session_id) from None

    def delete(self, session_id: str) -> None:
        """Forget a session in any state (its scenario is simply dropped)."""
        self.get(session_id)
        del self._sessions[session_id]

    def sessions(self) -> List[SimulationSession]:
        """Every registered session, in creation order."""
        return list(self._sessions.values())

    def state_counts(self) -> Dict[str, int]:
        """Session count per state, zero-filled over every state name."""
        counts = {state.value: 0 for state in SessionState}
        for session in self._sessions.values():
            counts[session.state.value] += 1
        return counts

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    # -------------------------------------------------------- evict/restore

    def evict(self, session_id: str) -> SimulationSession:
        """Pause (if needed) and evict a session to its snapshot artifact."""
        session = self.get(session_id)
        if session.state is SessionState.RUNNING:
            session.pause()
        path = None
        if self.snapshot_dir is not None:
            os.makedirs(self.snapshot_dir, exist_ok=True)
            path = os.path.join(self.snapshot_dir, f"{session_id}.reprosnap")
        session.evict(path)
        return session

    def restore(self, session_id: str) -> SimulationSession:
        """Restore an evicted session; it comes back ``paused``."""
        session = self.get(session_id)
        session.restore()
        return session

    # ------------------------------------------------------------ scheduler

    def runnable(self) -> List[SimulationSession]:
        """Sessions the scheduler should advance this pass."""
        return [
            session
            for session in self._sessions.values()
            if session.state is SessionState.RUNNING
        ]

    async def tick(self) -> int:
        """One round-robin pass: each runnable session gets one slice.

        Yields to the event loop after every slice so concurrent facade
        requests and WebSocket sends interleave with simulation work.
        Returns the number of sessions stepped.
        """
        tracer = current_tracer()
        trace_start = tracer.clock() if tracer is not None else 0.0
        stepped = 0
        for session in self.runnable():
            if session.state is not SessionState.RUNNING:
                continue  # a subscriber callback paused/deleted it mid-pass
            try:
                session.step()
            except Exception as error:  # noqa: BLE001 - quarantine the session
                # One broken scenario must not take the scheduler (and every
                # other session) down with it: park it in the terminal
                # ``failed`` state — runnable() skips it from now on — and
                # carry on with the rest of the pass.
                session.fail(error)
            stepped += 1
            await asyncio.sleep(0)
        self.scheduler_passes += 1
        self.sessions_stepped += stepped
        if tracer is not None and stepped:
            tracer.span(
                "scheduler_tick",
                "service",
                trace_start,
                args={"sessions_stepped": stepped, "registered": len(self)},
            )
        return stepped

    async def drive(
        self,
        *,
        until_idle: bool = False,
        idle_sleep: float = 0.02,
    ) -> None:
        """Run the scheduler loop.

        ``until_idle=True`` returns as soon as a pass finds nothing
        runnable (every session finished, paused, or evicted) — the mode
        batch drivers and the E17 benchmark use.  Otherwise the loop keeps
        polling forever (sleeping ``idle_sleep`` between empty passes)
        until :meth:`stop_driving` — the mode the service facade runs in
        the background.
        """
        self._stop_driving = False
        while not self._stop_driving:
            stepped = await self.tick()
            if stepped == 0:
                if until_idle:
                    return
                await asyncio.sleep(idle_sleep)

    def stop_driving(self) -> None:
        """Ask a background :meth:`drive` loop to exit after this pass."""
        self._stop_driving = True

    def drive_to_completion(self) -> None:
        """Synchronous convenience: drive until no session is runnable."""
        asyncio.run(self.drive(until_idle=True))

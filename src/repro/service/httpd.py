"""A minimal stdlib ASGI server: HTTP/1.1 + WebSocket over ``asyncio``.

``repro serve`` prefers uvicorn (the ``[service]`` optional extra) — this
module is the dependency-free fallback that makes the service usable from a
bare install.  It implements just enough of HTTP/1.1 (request parsing,
``Content-Length`` bodies, keep-alive) and RFC 6455 (handshake, masked
client frames, text/close/ping opcodes, unfragmented messages) to carry the
facade in :mod:`repro.service.app`; it is intentionally not a
general-purpose web server.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from typing import Any, Dict, List, Optional, Tuple

#: RFC 6455 magic GUID concatenated to ``Sec-WebSocket-Key`` in handshakes.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Hard cap on request body / WebSocket frame size (64 MiB) — the service's
#: payloads are tiny JSON documents; anything larger is a protocol error.
MAX_BODY = 64 * 1024 * 1024

_PHRASES = {
    200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    500: "Internal Server Error",
}


class _Connection:
    """One accepted TCP connection, serving requests until it closes."""

    def __init__(self, app, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.app = app
        self.reader = reader
        self.writer = writer

    async def serve(self) -> None:
        try:
            while True:
                head = await self._read_head()
                if head is None:
                    return
                method, path, query, headers = head
                if headers.get("upgrade", "").lower() == "websocket":
                    await self._serve_websocket(path, query, headers)
                    return
                keep_alive = await self._serve_http(method, path, query, headers)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self.writer.close()

    # ------------------------------------------------------------- parsing

    async def _read_head(
        self,
    ) -> Optional[Tuple[str, str, bytes, Dict[str, str]]]:
        try:
            raw = await self.reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = raw.decode("latin-1").split("\r\n")
        request_line = lines[0].split(" ")
        if len(request_line) != 3:
            return None
        method, target, _version = request_line
        path, _, query = target.partition("?")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        return method, path, query.encode("latin-1"), headers

    # ---------------------------------------------------------------- HTTP

    async def _serve_http(self, method, path, query, headers) -> bool:
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            await self._write_simple(400, b'{"error": "body too large"}')
            return False
        body = await self.reader.readexactly(length) if length else b""
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": query,
            "headers": [
                (key.encode("latin-1"), value.encode("latin-1"))
                for key, value in headers.items()
            ],
            "scheme": "http",
        }
        sent = False

        async def receive():
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {"type": "http.request", "body": body, "more_body": False}

        messages: List[Dict[str, Any]] = []

        async def send(message):
            messages.append(message)

        try:
            await self.app(scope, receive, send)
        except Exception as error:  # noqa: BLE001 - surface as a 500
            payload = json.dumps({"error": f"{type(error).__name__}: {error}"})
            await self._write_simple(500, payload.encode())
            return False
        status = 500
        response_headers: List[Tuple[bytes, bytes]] = []
        chunks: List[bytes] = []
        for message in messages:
            if message["type"] == "http.response.start":
                status = message["status"]
                response_headers = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))
        response_body = b"".join(chunks)
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        head_lines = [f"HTTP/1.1 {status} {_PHRASES.get(status, 'Unknown')}"]
        seen_length = False
        for key, value in response_headers:
            name = key.decode("latin-1")
            if name.lower() == "content-length":
                seen_length = True
            head_lines.append(f"{name}: {value.decode('latin-1')}")
        if not seen_length:
            head_lines.append(f"Content-Length: {len(response_body)}")
        head_lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        self.writer.write(
            ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1") + response_body
        )
        await self.writer.drain()
        return keep_alive

    async def _write_simple(self, status: int, body: bytes) -> None:
        self.writer.write(
            (
                f"HTTP/1.1 {status} {_PHRASES.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await self.writer.drain()

    # ----------------------------------------------------------- WebSocket

    async def _serve_websocket(self, path, query, headers) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            await self._write_simple(400, b'{"error": "missing websocket key"}')
            return
        accept = base64.b64encode(
            hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
        ).decode("ascii")
        scope = {
            "type": "websocket",
            "asgi": {"version": "3.0"},
            "path": path,
            "query_string": query,
            "headers": [
                (k.encode("latin-1"), v.encode("latin-1"))
                for k, v in headers.items()
            ],
            "scheme": "ws",
        }
        handshake_done = False
        closed = False
        inbound: asyncio.Queue = asyncio.Queue()
        inbound.put_nowait({"type": "websocket.connect"})

        async def _reader_loop():
            while True:
                frame = await self._read_frame()
                if frame is None:
                    inbound.put_nowait({"type": "websocket.disconnect", "code": 1006})
                    return
                opcode, payload = frame
                if opcode == 0x8:  # close
                    inbound.put_nowait({"type": "websocket.disconnect", "code": 1000})
                    return
                if opcode == 0x9:  # ping -> pong
                    await self._write_frame(0xA, payload)
                    continue
                if opcode == 0x1:
                    inbound.put_nowait(
                        {"type": "websocket.receive", "text": payload.decode("utf-8")}
                    )
                elif opcode == 0x2:
                    inbound.put_nowait({"type": "websocket.receive", "bytes": payload})

        reader_task: Optional[asyncio.Task] = None

        async def receive():
            return await inbound.get()

        async def send(message):
            nonlocal handshake_done, closed, reader_task
            if message["type"] == "websocket.accept":
                self.writer.write(
                    (
                        "HTTP/1.1 101 Switching Protocols\r\n"
                        "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                        f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
                    ).encode("latin-1")
                )
                await self.writer.drain()
                handshake_done = True
                reader_task = asyncio.get_running_loop().create_task(_reader_loop())
            elif message["type"] == "websocket.send":
                if "text" in message and message["text"] is not None:
                    await self._write_frame(0x1, message["text"].encode("utf-8"))
                else:
                    await self._write_frame(0x2, message.get("bytes", b""))
            elif message["type"] == "websocket.close":
                if handshake_done and not closed:
                    await self._write_frame(
                        0x8, struct.pack("!H", message.get("code", 1000))
                    )
                elif not handshake_done:
                    await self._write_simple(404, b'{"error": "not found"}')
                closed = True

        try:
            await self.app(scope, receive, send)
        finally:
            if reader_task is not None and not reader_task.done():
                reader_task.cancel()

    async def _read_frame(self) -> Optional[Tuple[int, bytes]]:
        try:
            first = await self.reader.readexactly(2)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        opcode = first[0] & 0x0F
        masked = bool(first[1] & 0x80)
        length = first[1] & 0x7F
        if length == 126:
            length = struct.unpack("!H", await self.reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack("!Q", await self.reader.readexactly(8))[0]
        if length > MAX_BODY:
            return None
        mask = await self.reader.readexactly(4) if masked else b""
        payload = await self.reader.readexactly(length) if length else b""
        if masked:
            payload = bytes(
                byte ^ mask[index % 4] for index, byte in enumerate(payload)
            )
        return opcode, payload

    async def _write_frame(self, opcode: int, payload: bytes) -> None:
        header = bytes([0x80 | opcode])
        length = len(payload)
        if length < 126:
            header += bytes([length])
        elif length < 1 << 16:
            header += bytes([126]) + struct.pack("!H", length)
        else:
            header += bytes([127]) + struct.pack("!Q", length)
        self.writer.write(header + payload)
        await self.writer.drain()


class StdlibASGIServer:
    """Bind the app to a TCP port and serve until stopped."""

    def __init__(self, app, host: str = "127.0.0.1", port: int = 8000) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        """Start listening (resolves ``port=0`` to the bound port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(self, reader, writer) -> None:
        await _Connection(self.app, reader, writer).serve()

    async def serve_forever(self) -> None:
        """Start (if needed) and block serving connections."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


async def _serve_with_lifespan(app, host: str, port: int) -> None:
    """Run lifespan startup, serve forever, lifespan shutdown on cancel."""
    to_app: asyncio.Queue = asyncio.Queue()
    from_app: asyncio.Queue = asyncio.Queue()
    lifespan = asyncio.get_running_loop().create_task(
        app({"type": "lifespan", "asgi": {"version": "3.0"}}, to_app.get, from_app.put)
    )
    to_app.put_nowait({"type": "lifespan.startup"})
    await from_app.get()  # startup.complete
    server = StdlibASGIServer(app, host, port)
    try:
        await server.serve_forever()
    finally:
        await server.stop()
        to_app.put_nowait({"type": "lifespan.shutdown"})
        try:
            await asyncio.wait_for(lifespan, 5.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            lifespan.cancel()


def run_server(app, host: str = "127.0.0.1", port: int = 8000) -> None:
    """Blocking entry point used by ``repro serve`` (Ctrl-C to stop)."""
    try:
        asyncio.run(_serve_with_lifespan(app, host, port))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass

"""The discrete-event simulator.

A :class:`Simulator` owns the virtual clock, the event queue, the experiment's
random streams, the metric :class:`~repro.simcore.monitor.Monitor` and the
:class:`~repro.simcore.trace.TraceLog`.  Entities schedule callbacks on it
(one-shot with :meth:`Simulator.schedule`, or repeating with
:meth:`Simulator.schedule_periodic`) and a driver advances it either to
completion with :meth:`Simulator.run` or cooperatively, one bounded slice at
a time, with :meth:`Simulator.step` — the primitive the session engine in
:mod:`repro.service` multiplexes many simulations on.  ``run`` is a loop
over ``step``, so the two are byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional

from repro.simcore.event import Event, EventQueue
from repro.simcore.monitor import Monitor
from repro.simcore.rng import RandomStreams
from repro.simcore.trace import TraceLog
from repro.telemetry.trace import current_tracer


class StopSimulation(Exception):
    """Raise from any event callback to stop the simulation immediately."""


@dataclass(frozen=True)
class StepOutcome:
    """What one :meth:`Simulator.step` slice accomplished and why it ended.

    A slice ends for exactly one *progress-blocking* reason — the queue ran
    dry, a callback requested a stop, the next event lies beyond ``until``
    — or because the ``max_events`` budget was spent with work remaining.
    :attr:`exhausted` distinguishes the two classes: an exhausted slice
    cannot make further progress within the same ``until`` bound, while a
    budget-limited slice can simply be called again.  Session schedulers
    lean on this to decide between "re-queue this session" and "its window
    is complete".
    """

    events_fired: int
    now: float
    queue_empty: bool
    stop_requested: bool
    reached_until: bool
    hit_event_budget: bool

    @property
    def exhausted(self) -> bool:
        """No further events can fire without raising ``until`` (or ever)."""
        return self.queue_empty or self.stop_requested or self.reached_until


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all random streams.
    start_time:
        Initial value of the virtual clock (seconds).
    trace:
        Whether to record a structured trace of fired events.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> sim.run(until=5.0)
    >>> fired
    [2.0]
    """

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        trace: bool = False,
    ) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self.streams = RandomStreams(seed)
        self.monitor = Monitor()
        self.tracelog = TraceLog(enabled=trace)
        self._running = False
        self._entities: List[Any] = []
        self._stop_requested = False
        #: Cumulative events fired over the simulator's lifetime (pure
        #: bookkeeping — deliberately not part of the snapshot state
        #: contract, though it travels with pickled simulators).
        self.events_fired = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting to fire (O(1))."""
        return self._queue.active_count()

    # ------------------------------------------------------------ scheduling

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; scheduling into the past would break
        causality and raises ``ValueError``.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, priority, name)

    def schedule_batch(
        self,
        entries: "Iterable[tuple[float, Callable[[], Any], int, str]]",
    ) -> List[Event]:
        """Schedule many callbacks in one queue operation.

        Each entry is ``(delay, callback, priority, name)``; semantics per
        entry match :meth:`schedule` (including the non-negative-delay
        check), but the underlying heap is updated once via
        :meth:`~repro.simcore.event.EventQueue.push_batch` — the radio
        medium's batched delivery path schedules a whole broadcast's
        arrivals this way instead of one heap sift per receiver.
        """
        now = self._now
        batch = []
        for delay, callback, priority, name in entries:
            if delay < 0:
                raise ValueError(f"cannot schedule into the past (delay={delay})")
            batch.append((now + delay, callback, priority, name))
        return self._queue.push_batch(batch)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self._queue.push(time, callback, priority, name)

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], Any],
        start_delay: Optional[float] = None,
        priority: int = 0,
        name: str = "",
        jitter: float = 0.0,
        rng_stream: str = "periodic-jitter",
    ) -> "PeriodicTask":
        """Schedule ``callback`` every ``period`` seconds until cancelled.

        ``jitter`` adds a uniform random offset in ``[0, jitter)`` to each
        firing, drawn from the ``rng_stream`` random stream — used to model
        unsynchronised (asynchronous) periodic behaviour such as beaconing.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        task = PeriodicTask(self, period, callback, priority, name, jitter, rng_stream)
        first_delay = period if start_delay is None else start_delay
        task.start(first_delay)
        return task

    # --------------------------------------------------------------- running

    def step(
        self,
        max_events: Optional[int] = None,
        until: Optional[float] = None,
    ) -> StepOutcome:
        """Fire a bounded slice of the event loop and report why it ended.

        This is *the* run-loop implementation — :meth:`run` is a thin loop
        over it, so the two are byte-identical by construction.  A slice
        fires events in deterministic ``(time, priority, sequence)`` order
        until the queue is empty, a callback raises
        :class:`StopSimulation`, the next event lies beyond ``until``, or
        ``max_events`` have fired, and returns a :class:`StepOutcome`
        naming the reason.  The clock is **not** advanced past the last
        fired event (see :meth:`advance_clock` for the window-end
        convention :meth:`run` applies).

        A simulator whose stop flag is set fires nothing until
        :meth:`clear_stop`; cooperative drivers treat that as "this
        session is done", not as an error.
        """
        fired = 0
        reached_until = False
        hit_budget = max_events is not None and max_events <= 0
        queue = self._queue
        # Telemetry is a pure observer: one global read when disabled, and
        # when enabled it only brackets the slice — no RNG, no scheduling.
        tracer = current_tracer()
        trace_start = tracer.clock() if tracer is not None else 0.0
        self._running = True
        try:
            while not self._stop_requested and not hit_budget:
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    reached_until = True
                    break
                event = queue.pop()
                self._now = event.time
                self.tracelog.record(self._now, "event", event.name or "anonymous")
                if event.callback is not None:
                    try:
                        event.callback()
                    except StopSimulation:
                        self._stop_requested = True
                fired += 1
                if max_events is not None and fired >= max_events:
                    hit_budget = True
        finally:
            self._running = False
        # getattr guard: simulators unpickled from pre-counter snapshot
        # artifacts lack the attribute (it is bookkeeping, not sim state).
        self.events_fired = getattr(self, "events_fired", 0) + fired
        if tracer is not None:
            tracer.span(
                "dispatch_batch", "sim", trace_start,
                sim_time=self._now,
                args={
                    "events_fired": fired,
                    "pending": queue.active_count(),
                    "hit_event_budget": hit_budget,
                },
            )
        return StepOutcome(
            events_fired=fired,
            now=self._now,
            queue_empty=queue.peek_time() is None,
            stop_requested=self._stop_requested,
            reached_until=reached_until,
            hit_event_budget=hit_budget,
        )

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop to completion of the window.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  The clock is advanced
            to ``until`` even if no event fires exactly there.
        max_events:
            Safety valve — stop after this many events.

        Returns
        -------
        int
            The number of events that fired.
        """
        self.clear_stop()
        fired = 0
        while True:
            remaining = None if max_events is None else max_events - fired
            outcome = self.step(max_events=remaining, until=until)
            fired += outcome.events_fired
            if outcome.exhausted or outcome.hit_event_budget:
                break
        self.advance_clock(until)
        return fired

    def advance_clock(self, until: Optional[float]) -> None:
        """Advance the idle clock to ``until`` (the window-end convention).

        Event processing never moves the clock past the last fired event;
        a run *window*, however, ends at its requested time even when no
        event fires exactly there.  No-op when ``until`` is ``None``,
        already reached, or a stop was requested (a stopped run keeps the
        clock where it halted — that is what the ``stopped_early`` report
        accounting observes).
        """
        if until is None or self._stop_requested:
            return
        if self._now < until:
            self._now = until

    def stop(self) -> None:
        """Request the event loop to stop after the current event."""
        self._stop_requested = True

    def clear_stop(self) -> None:
        """Re-arm a simulator whose stop flag was set (new run window)."""
        self._stop_requested = False

    @property
    def stop_requested(self) -> bool:
        """Whether a stop has been requested and not yet cleared."""
        return self._stop_requested

    # -------------------------------------------------------------- snapshot

    def capture_state(self) -> dict:
        """Clock, RNG-stream and event-queue state as one plain-data dict.

        This is the simulation core's half of the snapshot protocol: the
        values here (together with the pickled event graph the codec
        serialises) fully determine every future event the simulator will
        fire.  Two captures compare with ``==``, which is what the
        byte-identity test harness asserts before and after a restore.
        """
        return {
            "now": self._now,
            "rng": self.streams.capture_state(),
            "queue": self._queue.capture_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore clock, RNG streams and queue bookkeeping from a capture.

        The event heap itself must already hold the snapshot's events
        (restored by unpickling the owning scenario graph); this re-applies
        the plain-data half on top and validates the queue agrees.
        """
        self._now = float(state["now"])
        self.streams.restore_state(state["rng"])
        self._queue.restore_state(state["queue"])

    # -------------------------------------------------------------- entities

    def register_entity(self, entity: Any) -> None:
        """Track an entity so experiments can enumerate simulation members."""
        self._entities.append(entity)

    @property
    def entities(self) -> List[Any]:
        """All registered entities, in registration order."""
        return list(self._entities)


class PeriodicTask:
    """A repeating scheduled callback created by ``schedule_periodic``."""

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        priority: int,
        name: str,
        jitter: float,
        rng_stream: str,
    ) -> None:
        self._sim = sim
        self._period = period
        self._callback = callback
        self._priority = priority
        self._name = name
        self._jitter = jitter
        self._rng_stream = rng_stream
        self._event: Optional[Event] = None
        self._cancelled = False
        self.fire_count = 0

    @property
    def cancelled(self) -> bool:
        """Whether the task has been stopped."""
        return self._cancelled

    @property
    def period(self) -> float:
        """Seconds between firings (before jitter)."""
        return self._period

    def start(self, delay: float) -> None:
        """Arm the first firing ``delay`` seconds from now."""
        self._event = self._sim.schedule(
            delay, self._fire, self._priority, self._name
        )

    def cancel(self) -> None:
        """Stop future firings."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        self._callback()
        if self._cancelled:
            return
        delay = self._period
        if self._jitter > 0:
            rng = self._sim.streams.get(self._rng_stream)
            delay += float(rng.uniform(0.0, self._jitter))
        self._event = self._sim.schedule(
            delay, self._fire, self._priority, self._name
        )

"""Discrete-event simulation kernel.

Every other subsystem in the AirDnD reproduction runs on top of this small,
dependency-free discrete-event simulator.  The kernel provides:

* :class:`~repro.simcore.simulator.Simulator` — the event loop with a virtual
  clock, one-shot and periodic event scheduling, and named processes.
* :class:`~repro.simcore.entity.SimEntity` — a base class for objects that
  live inside a simulation (vehicles, radios, compute nodes, orchestrators).
* :class:`~repro.simcore.rng.RandomStreams` — independent, reproducible random
  number streams keyed by name so that changing one subsystem's randomness
  does not perturb another's.
* :class:`~repro.simcore.monitor.Monitor` — metric collection (counters,
  time series, samples) queried by the experiment harness.
* :class:`~repro.simcore.trace.TraceLog` — structured event tracing for
  debugging and for the per-experiment audit trail.
"""

from repro.simcore.event import Event, EventQueue
from repro.simcore.entity import SimEntity
from repro.simcore.monitor import Counter, Monitor, SampleSeries, TimeSeries
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator, StepOutcome, StopSimulation
from repro.simcore.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "SimEntity",
    "Simulator",
    "StepOutcome",
    "StopSimulation",
    "RandomStreams",
    "Monitor",
    "Counter",
    "TimeSeries",
    "SampleSeries",
    "TraceLog",
    "TraceRecord",
]

"""Structured trace log for simulations.

Tracing is opt-in (it costs memory) and primarily used by tests and by the
benchmark harness when auditing protocol behaviour — e.g. verifying that no
raw sensor data crossed the mesh, only task descriptions and results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: what happened, when, described how."""

    time: float
    kind: str
    detail: str


class TraceLog:
    """An append-only list of :class:`TraceRecord` entries."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._records: List[TraceRecord] = []

    def record(self, time: float, kind: str, detail: str) -> None:
        """Append a record if tracing is enabled (and capacity permits)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self._records) >= self.capacity:
            return
        self._records.append(TraceRecord(time, kind, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(
        self,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching ``kind`` and/or an arbitrary predicate."""
        out = []
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

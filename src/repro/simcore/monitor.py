"""Metric collection for simulations.

The :class:`Monitor` is a lightweight metric registry shared by every entity
in a simulation.  Four metric kinds cover the needs of the benchmark
harness:

* :class:`Counter` — strictly monotonically increasing totals (bytes sent,
  tasks done); a negative delta is a programming error and raises.
* :class:`Gauge` — a value that legitimately goes up *and* down (mesh
  size, leased cells, queue depth).
* :class:`SampleSeries` — unordered numeric observations (latencies) with
  percentile/mean summaries.
* :class:`TimeSeries` — ``(time, value)`` pairs for quantities that evolve
  over virtual time (mesh size, utilisation), with time-weighted averaging.

The kinds map one-to-one onto Prometheus families in
:mod:`repro.telemetry.prometheus` (counter/gauge/histogram/gauge
respectively), which is why the counter/gauge split is enforced rather
than documented away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Counter:
    """A named monotonically increasing total.

    Strictly monotonic: :meth:`add` rejects negative deltas, so a counter's
    value can be exported as a Prometheus counter and rate()-ed without
    resets ever meaning "someone subtracted".  Use :class:`Gauge` for
    values that go down.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.increments: int = 0

    def add(self, amount: float = 1.0) -> None:
        """Add a non-negative ``amount`` to the counter."""
        if amount < 0:
            raise ValueError(
                f"Counter {self.name!r} is monotonic; cannot add {amount} "
                "(use a Gauge for values that go down)"
            )
        self.value += amount
        self.increments += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that moves in both directions (mesh size, queue depth)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.updates: int = 0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)
        self.updates += 1

    def add(self, amount: float = 1.0) -> None:
        """Move the gauge by ``amount`` (negative deltas are the point)."""
        self.value += amount
        self.updates += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({self.name}={self.value})"


class SampleSeries:
    """A bag of numeric observations with summary statistics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def add(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return len(self.values)

    def mean(self) -> float:
        """Arithmetic mean, or ``nan`` when empty."""
        if not self.values:
            return math.nan
        return sum(self.values) / len(self.values)

    def minimum(self) -> float:
        """Smallest observation, or ``nan`` when empty."""
        return min(self.values) if self.values else math.nan

    def maximum(self) -> float:
        """Largest observation, or ``nan`` when empty."""
        return max(self.values) if self.values else math.nan

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in ``[0, 100]``."""
        if not self.values:
            return math.nan
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def stddev(self) -> float:
        """Population standard deviation, or ``nan`` for fewer than 2 samples."""
        if len(self.values) < 2:
            return math.nan
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / len(self.values))


class TimeSeries:
    """``(time, value)`` observations of a quantity evolving over time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation; times must be non-decreasing."""
        if self.points and time < self.points[-1][0]:
            raise ValueError(
                f"TimeSeries {self.name}: time {time} precedes last "
                f"observation at {self.points[-1][0]}"
            )
        self.points.append((float(time), float(value)))

    def __len__(self) -> int:
        return len(self.points)

    def last(self) -> Optional[float]:
        """Most recent value, or ``None`` when empty."""
        return self.points[-1][1] if self.points else None

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Average value weighted by how long each value was held.

        The final value is held until ``until`` (defaults to the last
        observation time, making the last point weightless).
        """
        if not self.points:
            return math.nan
        end = self.points[-1][0] if until is None else until
        total = 0.0
        duration = 0.0
        for (t0, v0), (t1, _v1) in zip(self.points, self.points[1:]):
            total += v0 * (t1 - t0)
            duration += t1 - t0
        last_t, last_v = self.points[-1]
        if end > last_t:
            total += last_v * (end - last_t)
            duration += end - last_t
        if duration <= 0:
            return self.points[-1][1]
        return total / duration

    def maximum(self) -> float:
        """Largest recorded value, or ``nan`` when empty."""
        return max(v for _, v in self.points) if self.points else math.nan


@dataclass
class Monitor:
    """Registry of named metrics for one simulation run."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    samples: Dict[str, SampleSeries] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        """Return (creating if needed) the gauge called ``name``.

        getattr guard: monitors unpickled from pre-``Gauge`` snapshot
        artifacts (e.g. the committed golden fixture) lack the registry.
        """
        if getattr(self, "gauges", None) is None:
            self.gauges = {}
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def sample(self, name: str) -> SampleSeries:
        """Return (creating if needed) the sample series called ``name``."""
        if name not in self.samples:
            self.samples[name] = SampleSeries(name)
        return self.samples[name]

    def timeseries(self, name: str) -> TimeSeries:
        """Return (creating if needed) the time series called ``name``."""
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def counter_value(self, name: str, default: float = 0.0) -> float:
        """Value of a counter without creating it."""
        if name in self.counters:
            return self.counters[name].value
        return default

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline numbers for quick experiment output."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[f"counter.{name}"] = counter.value
        for name, gauge in (getattr(self, "gauges", None) or {}).items():
            out[f"gauge.{name}"] = gauge.value
        for name, sample in self.samples.items():
            if sample.count:
                out[f"sample.{name}.mean"] = sample.mean()
                out[f"sample.{name}.p95"] = sample.percentile(95)
                out[f"sample.{name}.count"] = float(sample.count)
        for name, ts in self.series.items():
            if len(ts):
                out[f"series.{name}.mean"] = ts.time_weighted_mean()
                out[f"series.{name}.last"] = float(ts.last() or 0.0)
        return out

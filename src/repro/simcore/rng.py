"""Named, independent random-number streams.

Distributed-systems experiments become irreproducible the moment two
subsystems share a random generator: adding one extra draw in the mobility
model would silently change every radio fading sample.  ``RandomStreams``
derives an independent ``numpy`` generator per *stream name* from a single
experiment seed, so each subsystem owns its own stream and results stay
stable under unrelated code changes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic 63-bit child seed from a root seed and a name.

    Public because subsystems that need RNG *outside* a simulator's streams —
    e.g. :mod:`repro.faults.schedule`, whose timeline must be a pure function
    of ``(seed, knobs)`` regardless of what the simulation itself draws — use
    the same derivation so one experiment seed governs everything.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


#: Backwards-compatible private alias (pre-dates the public export).
_derive_seed = derive_seed


class RandomStreams:
    """A factory of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        Root experiment seed.  Two ``RandomStreams`` built from the same seed
        hand out identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> mobility_rng = streams.get("mobility")
    >>> radio_rng = streams.get("radio")
    >>> mobility_rng is streams.get("mobility")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                _derive_seed(self._seed, name)
            )
        return self._streams[name]

    def reset(self, names: Iterable[str] | None = None) -> None:
        """Re-derive the given streams (or all streams) from the root seed."""
        if names is None:
            names = list(self._streams)
        for name in names:
            self._streams[name] = np.random.default_rng(
                _derive_seed(self._seed, name)
            )

    def spawn(self, child_name: str) -> "RandomStreams":
        """Create a child factory with a seed derived from ``child_name``.

        Useful for giving each repetition of an experiment its own root seed
        while keeping the whole sweep reproducible.
        """
        return RandomStreams(_derive_seed(self._seed, f"spawn:{child_name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    # ------------------------------------------------------------- snapshot

    def capture_state(self) -> dict:
        """Every stream's exact generator state as plain data.

        Stream order is creation order (itself deterministic for a seeded
        run), and each entry is the bit generator's state dictionary, so two
        captures are ``==``-comparable and a restored factory continues the
        exact draw sequence the original would have produced.
        """
        return {
            "seed": self._seed,
            "streams": {
                name: generator.bit_generator.state
                for name, generator in self._streams.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild every stream mid-sequence from :meth:`capture_state`."""
        self._seed = int(state["seed"])
        streams: Dict[str, np.random.Generator] = {}
        for name, bit_state in state["streams"].items():
            generator = np.random.default_rng(_derive_seed(self._seed, name))
            generator.bit_generator.state = bit_state
            streams[name] = generator
        self._streams = streams

"""Event objects and the priority queue that orders them.

The simulator's core data structure is a binary-heap priority queue of
:class:`Event` objects ordered by ``(time, priority, sequence)``.  The
sequence number guarantees a deterministic, insertion-stable order for events
scheduled at identical times — essential for reproducible distributed-systems
experiments.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Tuple


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    ``__slots__`` (via ``dataclass(slots=True)``): one of these is allocated
    for every scheduled callback, making it the single hottest allocation in
    the simulator — dropping the per-instance ``__dict__`` saves both memory
    and attribute-lookup indirection.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    priority:
        Tie-breaker for events at the same time; lower fires first.
    sequence:
        Monotonic insertion counter, final tie-breaker (set by the queue).
    callback:
        Zero-argument callable invoked when the event fires.
    name:
        Human-readable label used in traces.
    cancelled:
        Cancelled events stay in the heap until they are popped or the queue
        compacts itself (see :class:`EventQueue`).
    """

    time: float
    priority: int = 0
    sequence: int = field(default=0, compare=True)
    callback: Optional[Callable[[], Any]] = field(default=None, compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped.

        Idempotent; notifies the owning queue so its active-event count
        stays exact without rescanning the heap.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._on_cancel(self)
            self.queue = None

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled


#: Heaps smaller than this are never compacted — rebuilding a few dozen
#: entries costs more bookkeeping than the dead entries occupy.
COMPACT_MIN_HEAP = 64

#: Compact when cancelled events outnumber active ones by this factor, i.e.
#: when less than ``1 / (1 + factor)`` of the heap is still live.
COMPACT_CANCELLED_FACTOR = 1


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Events compare by ``(time, priority, sequence)``.  ``sequence`` is assigned
    by the queue itself so two events pushed at the same ``(time, priority)``
    pop in push order.

    Cancelled events are skipped lazily when popped; when they come to
    dominate the heap (a long-horizon run with heavy beacon rescheduling can
    cancel far more events than it fires), the queue rebuilds itself in place
    without them, keeping the heap O(active events).  Compaction never
    changes observable order: the ``(time, priority, sequence)`` keys of the
    surviving events are untouched and totally ordered.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._active = 0
        #: In-place rebuilds performed to shed cancelled events.
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Create an event and insert it into the queue.

        Returns the :class:`Event` so callers may later :meth:`Event.cancel`
        it.
        """
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            name=name,
            queue=self,
        )
        heapq.heappush(self._heap, event)
        self._active += 1
        return event

    def push_batch(
        self, entries: Iterable[Tuple[float, Callable[[], Any], int, str]]
    ) -> list[Event]:
        """Insert many events in one call: ``(time, callback, priority, name)``.

        Sequence numbers are assigned in iteration order, so the batch pops
        exactly as the equivalent sequence of :meth:`push` calls would.  For
        large batches the heap is rebuilt with one ``heapify`` (O(n + k))
        instead of k sifts (O(k log n)) — this is the entry point the radio
        medium's batched delivery path uses to schedule a whole broadcast's
        arrivals at once.
        """
        counter = self._counter
        events = [
            Event(
                time=time,
                priority=priority,
                sequence=next(counter),
                callback=callback,
                name=name,
                queue=self,
            )
            for time, callback, priority, name in entries
        ]
        if not events:
            return events
        heap = self._heap
        if len(events) * 4 >= len(heap):
            heap.extend(events)
            heapq.heapify(heap)
        else:
            for event in events:
                heapq.heappush(heap, event)
        self._active += len(events)
        return events

    def _on_cancel(self, _event: Event) -> None:
        """Bookkeeping callback from :meth:`Event.cancel`."""
        self._active -= 1
        heap = self._heap
        if (
            len(heap) >= COMPACT_MIN_HEAP
            and len(heap) - self._active > self._active * COMPACT_CANCELLED_FACTOR
        ):
            self._heap = [event for event in heap if not event.cancelled]
            heapq.heapify(self._heap)
            self.compactions += 1

    def pop(self) -> Event:
        """Remove and return the earliest active event.

        Cancelled events are silently discarded.  Raises ``IndexError`` when
        the queue holds no active events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                # Detach so a late cancel() of the fired event cannot skew
                # the active count.
                event.queue = None
                self._active -= 1
                return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next active event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        for event in self._heap:
            event.queue = None
        self._heap.clear()
        self._active = 0

    def active_count(self) -> int:
        """Number of events that have not been cancelled (O(1), tracked
        incrementally on push/cancel/pop)."""
        return self._active

    # ------------------------------------------------------------- snapshot

    def capture_state(self) -> dict:
        """The queue's bookkeeping as plain data.

        The heap itself (events and their callbacks) travels inside the
        snapshot codec's object-graph payload; this captures the counters a
        restored queue must agree on — the next sequence number (ordering of
        future same-time events), the live/cancelled split and the
        compaction count — so tests can assert restored bookkeeping exactly
        matches the original.
        """
        return {
            "heap_len": len(self._heap),
            "active": self._active,
            "next_sequence": self._counter.__reduce__()[1][0],
            "compactions": self.compactions,
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply captured bookkeeping onto this queue.

        The heap contents must already match (they are restored by
        unpickling the owning simulator); a mismatched live-event count
        means the snapshot and the queue disagree and is rejected loudly.
        """
        if len(self._heap) != state["heap_len"] or self._active != state["active"]:
            raise ValueError(
                "event-queue bookkeeping mismatch: snapshot says "
                f"{state['active']} active / {state['heap_len']} heap entries, "
                f"queue holds {self._active} / {len(self._heap)}"
            )
        self._counter = itertools.count(state["next_sequence"])
        self.compactions = state["compactions"]

"""Event objects and the priority queue that orders them.

The simulator's core data structure is a binary-heap priority queue of
:class:`Event` objects ordered by ``(time, priority, sequence)``.  The
sequence number guarantees a deterministic, insertion-stable order for events
scheduled at identical times — essential for reproducible distributed-systems
experiments.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    ``__slots__`` (via ``dataclass(slots=True)``): one of these is allocated
    for every scheduled callback, making it the single hottest allocation in
    the simulator — dropping the per-instance ``__dict__`` saves both memory
    and attribute-lookup indirection.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    priority:
        Tie-breaker for events at the same time; lower fires first.
    sequence:
        Monotonic insertion counter, final tie-breaker (set by the queue).
    callback:
        Zero-argument callable invoked when the event fires.
    name:
        Human-readable label used in traces.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    priority: int = 0
    sequence: int = field(default=0, compare=True)
    callback: Optional[Callable[[], Any]] = field(default=None, compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped.

        Idempotent; notifies the owning queue so its active-event count
        stays exact without rescanning the heap.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._on_cancel(self)
            self.queue = None

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Events compare by ``(time, priority, sequence)``.  ``sequence`` is assigned
    by the queue itself so two events pushed at the same ``(time, priority)``
    pop in push order.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._active = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Create an event and insert it into the queue.

        Returns the :class:`Event` so callers may later :meth:`Event.cancel`
        it.
        """
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            name=name,
            queue=self,
        )
        heapq.heappush(self._heap, event)
        self._active += 1
        return event

    def _on_cancel(self, _event: Event) -> None:
        """Bookkeeping callback from :meth:`Event.cancel`."""
        self._active -= 1

    def pop(self) -> Event:
        """Remove and return the earliest active event.

        Cancelled events are silently discarded.  Raises ``IndexError`` when
        the queue holds no active events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                # Detach so a late cancel() of the fired event cannot skew
                # the active count.
                event.queue = None
                self._active -= 1
                return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next active event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        for event in self._heap:
            event.queue = None
        self._heap.clear()
        self._active = 0

    def active_count(self) -> int:
        """Number of events that have not been cancelled (O(1), tracked
        incrementally on push/cancel/pop)."""
        return self._active

"""Base class for objects that live inside a simulation."""

from __future__ import annotations

import itertools
from typing import Optional

from repro.simcore.simulator import Simulator

_entity_ids = itertools.count()


class SimEntity:
    """Anything with an identity that participates in a simulation.

    Subclasses include vehicles, radios, mesh agents, compute nodes and the
    AirDnD orchestrator nodes.  The base class provides a unique ``entity_id``,
    a back-reference to the :class:`~repro.simcore.simulator.Simulator`, and a
    convenience :meth:`log` method that writes into the simulator's trace.
    """

    def __init__(self, sim: Simulator, name: Optional[str] = None) -> None:
        self.sim = sim
        self.entity_id = next(_entity_ids)
        self.name = name if name is not None else f"{type(self).__name__}-{self.entity_id}"
        sim.register_entity(self)

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.sim.now

    def log(self, kind: str, detail: str = "") -> None:
        """Record a trace entry attributed to this entity."""
        self.sim.tracelog.record(self.sim.now, kind, f"{self.name}: {detail}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"

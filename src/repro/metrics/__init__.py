"""Statistics helpers and report formatting for the experiment harness."""

from repro.metrics.statistics import confidence_interval, mean, percentile, stddev
from repro.metrics.report import ResultTable, format_series

__all__ = [
    "mean",
    "stddev",
    "percentile",
    "confidence_interval",
    "ResultTable",
    "format_series",
]

"""Small, dependency-light statistics helpers.

The experiment harness works with short lists of repetition results; the
helpers here are what it needs — means, percentiles, standard deviation and a
normal-approximation confidence interval — with consistent ``nan`` behaviour
for empty inputs.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (``nan`` for an empty sequence)."""
    values = [v for v in values if not math.isnan(v)]
    if not values:
        return math.nan
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (``nan`` for fewer than two values)."""
    values = [v for v in values if not math.isnan(v)]
    if len(values) < 2:
        return math.nan
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100].

    ``q`` is validated before the empty-input shortcut: an out-of-range
    ``q`` is a caller bug and must raise even when ``values`` happens to be
    empty or all-``nan`` (it used to slip through as a silent ``nan``).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    values = sorted(v for v in values if not math.isnan(v))
    if not values:
        return math.nan
    if len(values) == 1:
        return values[0]
    rank = (q / 100.0) * (len(values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return values[low]
    frac = rank - low
    return values[low] * (1.0 - frac) + values[high] * frac


def confidence_interval(values: Sequence[float], z: float = 1.96) -> Tuple[float, float]:
    """Normal-approximation confidence interval around the mean.

    Returns ``(nan, nan)`` for fewer than two values.
    """
    values = [v for v in values if not math.isnan(v)]
    if len(values) < 2:
        return (math.nan, math.nan)
    mu = mean(values)
    half = z * stddev(values) / math.sqrt(len(values))
    return (mu - half, mu + half)


def paired_difference_ci(
    baseline: Sequence[float],
    candidate: Sequence[float],
    z: float = 1.96,
) -> Tuple[float, float]:
    """Confidence interval of the per-pair differences ``candidate - baseline``.

    The statistical-equivalence harness runs both equivalence tiers on the
    *same* seeds, so the right comparison is a paired one: per-seed
    differences cancel the (large) seed-to-seed variance and leave only the
    tier effect.  Pairs where either side is ``nan`` are dropped.

    Raises ``ValueError`` on length mismatch — silently zipping two
    different-length ensembles would compare unrelated seeds.
    """
    if len(baseline) != len(candidate):
        raise ValueError(
            f"paired samples must align: {len(baseline)} baseline vs "
            f"{len(candidate)} candidate values"
        )
    differences = [
        c - b
        for b, c in zip(baseline, candidate)
        if not (math.isnan(b) or math.isnan(c))
    ]
    return confidence_interval(differences, z=z)


def agrees_within_ci(
    baseline: Sequence[float],
    candidate: Sequence[float],
    tolerance: float,
    z: float = 1.96,
) -> bool:
    """Whether two paired ensembles agree to within ``tolerance``.

    True when the :func:`paired_difference_ci` of ``candidate - baseline``
    intersects ``[-tolerance, +tolerance]`` — i.e. the data is consistent
    with a true mean difference no larger than the tolerance.  A kernel with
    a real bias produces a CI entirely outside the band and is rejected;
    the identity kernel (all differences zero, degenerate zero-width CI)
    is accepted.  Returns ``False`` for an undefined CI (fewer than two
    valid pairs): an equivalence claim needs evidence.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    low, high = paired_difference_ci(baseline, candidate, z=z)
    if math.isnan(low) or math.isnan(high):
        # Degenerate but decidable: identical ensembles of any length agree.
        differences = [
            c - b
            for b, c in zip(baseline, candidate)
            if not (math.isnan(b) or math.isnan(c))
        ]
        if differences and all(d == differences[0] for d in differences):
            return abs(differences[0]) <= tolerance
        return False
    return low <= tolerance and high >= -tolerance

"""Plain-text result tables and series.

The benchmark harness prints the tables/series the paper's evaluation would
contain.  Output is deliberately dependency-free ASCII so it reads well in
CI logs and in the EXPERIMENTS.md snippets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class ResultTable:
    """A simple column-aligned ASCII table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        """Append one row; values are stringified (floats to 4 significant digits)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        formatted = []
        for value in values:
            if isinstance(value, float):
                formatted.append(f"{value:.4g}")
            else:
                formatted.append(str(value))
        self.rows.append(formatted)

    def add_dict_row(self, row: Dict[str, object]) -> None:
        """Append a row from a dict keyed by column name."""
        self.add_row(*[row.get(column, "") for column in self.columns])

    def as_records(self) -> List[Dict[str, str]]:
        """Rows as dicts keyed by column name (cells already formatted).

        The machine-readable twin of :meth:`render`, used by tests and by
        callers that post-process a table without re-parsing aligned text.
        """
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as a two-column text block (one figure series)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    table = ResultTable(name, [x_label, y_label])
    for x, y in zip(xs, ys):
        table.add_row(float(x), float(y))
    return table.render()

"""Plain-text result tables, series, and fault/trust outcome metrics.

The benchmark harness prints the tables/series the paper's evaluation would
contain.  Output is deliberately dependency-free ASCII so it reads well in
CI logs and in the EXPERIMENTS.md snippets.

The fault-metric helpers at the bottom turn raw simulation state into the
RQ3 headline numbers (wrong-result acceptance, honest-vs-malicious
reputation gap); they live here, next to the other reporting code, so both
the scenario reports and ad-hoc benchmark tables compute them identically.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


class ResultTable:
    """A simple column-aligned ASCII table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        """Append one row; values are stringified (floats to 4 significant digits)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        formatted = []
        for value in values:
            if isinstance(value, float):
                formatted.append(f"{value:.4g}")
            else:
                formatted.append(str(value))
        self.rows.append(formatted)

    def add_dict_row(self, row: Dict[str, object]) -> None:
        """Append a row from a dict keyed by column name."""
        self.add_row(*[row.get(column, "") for column in self.columns])

    def as_records(self) -> List[Dict[str, str]]:
        """Rows as dicts keyed by column name (cells already formatted).

        The machine-readable twin of :meth:`render`, used by tests and by
        callers that post-process a table without re-parsing aligned text.
        """
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as a two-column text block (one figure series)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    table = ResultTable(name, [x_label, y_label])
    for x, y in zip(xs, ys):
        table.add_row(float(x), float(y))
    return table.render()


# -------------------------------------------------------- fault/trust metrics


def wrong_result_acceptance_rate(lifecycles: Iterable[object]) -> float:
    """Fraction of completed tasks whose accepted value was a fabrication.

    A fabricated value is recognised by the duck-typed ``is_corrupted``
    marker that :class:`~repro.faults.adversary.CorruptedResult` carries, so
    no task-level ground truth is needed.  Returns 0.0 when nothing
    completed — an integrity metric should read clean, not undefined, for an
    idle system.
    """
    completed = 0
    wrong = 0
    for lifecycle in lifecycles:
        result = getattr(lifecycle, "result", None)
        if result is None or not getattr(result, "success", False):
            continue
        completed += 1
        if getattr(result.value, "is_corrupted", False):
            wrong += 1
    if completed == 0:
        return 0.0
    return wrong / completed


def reputation_gap(nodes: Sequence[object], malicious_names: Iterable[str]) -> float:
    """Honest observers' mean recorded score of honest vs. malicious peers.

    For every *honest* node's trust manager, every evidence-backed
    (recorded) peer score is pooled into an honest-peer or malicious-peer
    bucket; the gap is ``mean(honest) - mean(malicious)``.  Positive means
    reputation separates the populations — the RQ3 claim.  ``nan`` when
    either bucket is empty (no adversaries, or no recorded evidence yet).
    """
    malicious = set(malicious_names)
    honest_scores: List[float] = []
    malicious_scores: List[float] = []
    for node in nodes:
        if node.name in malicious:
            continue
        for peer, score in node.trust.recorded_scores().items():
            if peer in malicious:
                malicious_scores.append(score)
            else:
                honest_scores.append(score)
    if not honest_scores or not malicious_scores:
        return math.nan
    return sum(honest_scores) / len(honest_scores) - sum(malicious_scores) / len(
        malicious_scores
    )

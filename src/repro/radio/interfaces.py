"""Radio interfaces and the spatially-indexed shared radio environment.

A :class:`RadioInterface` is attached to each node (vehicle, roadside unit,
generic edge device).  All interfaces share a single :class:`RadioEnvironment`
which, on every transmission, evaluates the link budget to each *candidate*
receiver, applies random frame loss, models serialization/propagation delay
and a simple contention factor, and schedules the delivery callbacks on the
simulator.

Broadcast used to be the fleet-wide hot path: every beacon evaluated the link
budget against every attached interface — O(N²) work per beacon interval.
The environment now answers "who could hear this?" with a spatial range
query and only touches candidate receivers inside the link budget's
effective range.  The per-pair physics is batched as well: link qualities
are held in *per-sender rows* filled by one
:meth:`~repro.radio.link.LinkBudget.quality_batch` call per sender per
position epoch (``use_batched_links=False`` keeps the scalar per-pair
computation as the byte-identical reference path), so ``transmit``,
:meth:`RadioEnvironment.nodes_in_range` and every candidate scorer probe
hit one row dictionary instead of N per-pair cache entries.  When a :class:`~repro.mobility.manager.MobilityManager` is
bound, the query runs directly against the manager's shared
:class:`~repro.geometry.substrate.SpatialSubstrate` — the environment keeps
*no* mirror of mobile positions, so the manager's one position sync per tick
serves both layers (see :class:`RadioEnvironment` for the full freshness
contract).  Unbound environments fall back to mirroring interface positions
into a private grid resynced whenever the virtual clock advances, which
costs O(N) per distinct event time — bind the mobility manager for anything
beyond unit-test scale.  A position changed manually *between* events at the
same timestamp is invisible to any refresh scheme until the epoch advances;
call :meth:`RadioInterface.notify_moved` (or
:meth:`RadioEnvironment.notify_positions_changed`) after such writes to make
them visible immediately.  Substrate-tracked nodes are the mobility
manager's to move: write through the substrate (whose commit is its own
dirty-mark) instead.

Receivers are always iterated in name-sorted order so the frame-loss RNG
draws — and therefore the delivered-frame sequence — are identical for the
spatial and the brute-force (``use_spatial_index=False``) paths under the
same seed.  (Name-sorted order replaces the pre-refactor attachment-order
iteration, so seeded runs are reproducible against this version, not against
the old medium.)

Frames carry opaque payload objects plus a byte size; higher layers (the mesh
transport and the AirDnD offloading protocol) decide what goes inside.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from itertools import repeat
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.los import VisibilityMap
from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.vector import Vec2
from repro.radio.link import LinkBudget, LinkQuality
from repro.simcore.monitor import Counter
from repro.simcore.simulator import Simulator

_frame_ids = itertools.count()

#: ``LinkBudget.effective_range`` walks outward in 5 m steps, so the true
#: usable boundary lies at most one step beyond the reported range.  The
#: spatial query radius adds this slack so range pruning can never drop a
#: receiver that the full link-budget evaluation would have reached.
_RANGE_STEP_SLACK_M = 5.0


@dataclass(slots=True)
class Frame:
    """One over-the-air frame.

    Attributes
    ----------
    frame_id:
        Unique identifier (assigned automatically).
    sender:
        Name of the sending node.
    destination:
        Name of the destination node, or ``None`` for broadcast.
    payload:
        Arbitrary message object.
    size_bytes:
        Serialized size used for transfer-time computation.
    kind:
        Free-form label ("beacon", "task", "result", ...) used by metrics.
    """

    sender: str
    destination: Optional[str]
    payload: Any
    size_bytes: int
    kind: str = "data"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))


class _FrameDelivery:
    """One scheduled frame arrival, as a compact preallocated callable.

    Replaces the per-delivery ``lambda`` closure (a function object plus
    three cell objects per scheduled frame) with a single ``__slots__``
    instance — the radio medium schedules one of these for every delivered
    frame, which makes it one of the hottest allocations in a broadcast-heavy
    run.
    """

    __slots__ = ("receiver", "frame", "quality")

    def __init__(
        self, receiver: "RadioInterface", frame: "Frame", quality: LinkQuality
    ) -> None:
        self.receiver = receiver
        self.frame = frame
        self.quality = quality

    def __call__(self) -> None:
        self.receiver.deliver(self.frame, self.quality)


class _BatchFrameDelivery:
    """All of one broadcast's same-delay arrivals, coalesced into one event.

    The statistical tier schedules one of these per *distinct delay value*
    instead of one :class:`_FrameDelivery` per receiver.  Ordering is
    preserved observably: receivers sharing an identical delay would have
    been pushed consecutively — in name-sorted order, at the same
    ``(time, priority)`` — so they would fire back-to-back in exactly this
    order under the queue's ``(time, priority, sequence)`` contract anyway;
    delivering them name-sorted inside a single event is indistinguishable
    to observers.  Receivers with *different* delays still get their own
    events and interleave with the rest of the simulation by time as usual.

    Instead of copying per-group receiver/quality sublists on every
    broadcast, the event references the sender plan's full (per-epoch
    immutable) lists and carries only the member *indices* — ascending, so
    delivery stays name-sorted.  Events outliving their epoch keep the lists
    alive through these references; nothing mutates them after plan build.
    """

    __slots__ = ("receivers", "qualities", "indices", "frame")

    def __init__(
        self,
        receivers: List["RadioInterface"],
        qualities: "_QualityColumns",
        indices: List[int],
        frame: "Frame",
    ) -> None:
        self.receivers = receivers
        self.qualities = qualities
        self.indices = indices
        self.frame = frame

    def __call__(self) -> None:
        receivers = self.receivers
        qualities = self.qualities
        frame = self.frame
        size_bytes = frame.size_bytes
        for index in self.indices:
            # Inlined :meth:`RadioInterface.deliver`, with one refinement the
            # scalar path cannot afford: the LinkQuality is materialised from
            # the plan's columns only when a receive callback will actually
            # observe it.  Keep in lockstep with ``deliver`` above.
            receiver = receivers[index]
            if not receiver.enabled:
                continue
            receiver.bytes_received += size_bytes
            receiver.frames_received += 1
            callbacks = receiver._receive_callbacks
            if callbacks:
                quality = qualities[index]
                for callback in callbacks:
                    callback(frame, quality)


class _QualityColumns:
    """One sender plan's link qualities, stored column-major.

    Building a frozen :class:`~repro.radio.link.LinkQuality` costs about a
    microsecond of ``object.__setattr__`` calls — per usable receiver per
    plan, that used to dominate plan construction while most of the objects
    were never observed (a receiver with no receive callbacks never looks at
    its quality).  The columns are plain Python lists (``ndarray.tolist``,
    so consumers get genuine ``float`` values); ``__getitem__`` materialises
    a quality on demand.  All rows are usable by construction — the plan
    only keeps receivers that cleared the SNR threshold.
    """

    __slots__ = ("snrs", "rates", "pers", "distances")

    def __init__(
        self,
        snrs: List[float],
        rates: List[float],
        pers: List[float],
        distances: List[float],
    ) -> None:
        self.snrs = snrs
        self.rates = rates
        self.pers = pers
        self.distances = distances

    def __len__(self) -> int:
        return len(self.snrs)

    def __getitem__(self, index: int) -> LinkQuality:
        return LinkQuality(
            self.snrs[index],
            self.rates[index],
            self.pers[index],
            True,
            self.distances[index],
        )


class _FastSenderPlan:
    """One sender's precomputed broadcast state, valid for one position epoch.

    The statistical tier's answer to the per-sender link *row*: instead of a
    name-keyed dictionary of :class:`LinkQuality` objects probed per
    receiver per broadcast, the plan keeps the usable receivers as parallel
    lists/arrays — interfaces, qualities, PERs, contention-scaled rates,
    propagation delays — so each broadcast is a handful of whole-array
    operations.  ``delay_groups`` memoises, per frame size, the receiver
    indices bucketed by identical delivery delay (the coalescing structure
    is a pure function of the plan and the frame size, so it is computed
    once and reused by every same-sized broadcast in the epoch).
    ``RadioEnvironment._refresh`` discards plans with the other per-epoch
    caches.
    """

    __slots__ = (
        "receivers",
        "qualities",
        "pers",
        "scaled_rates",
        "prop_delays",
        "out_of_range",
        "delay_groups",
    )


class _FastUniverse:
    """Per-epoch position snapshot of every attached interface, name-sorted.

    The statistical tier gathers each interface's live position exactly once
    per epoch into parallel coordinate arrays; every sender plan then finds
    its broadcast candidates with one vectorised distance mask against the
    environment's query radius — the same exact ``<= radius`` criterion the
    spatial grid applies, without per-sender grid walks or per-candidate
    position-provider calls.  ``RadioEnvironment._refresh`` discards it with
    the other per-epoch caches.
    """

    __slots__ = ("interfaces", "positions", "xs", "ys", "index_of")


class RadioInterface:
    """A node's attachment point to the shared radio environment."""

    def __init__(
        self,
        environment: "RadioEnvironment",
        node_name: str,
        position_provider: Callable[[], Vec2],
    ) -> None:
        self.environment = environment
        self.node_name = node_name
        self.position_provider = position_provider
        self._receive_callbacks: List[Callable[[Frame, LinkQuality], None]] = []
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.enabled = True

    @property
    def position(self) -> Vec2:
        """Current position of the owning node."""
        return self.position_provider()

    def notify_moved(self) -> None:
        """Dirty-mark after an out-of-band (manual) position change.

        The environment never polls positions; it refreshes derived state
        when its position epoch advances.  Mobility-driven movement bumps the
        epoch automatically, but a position written by hand — a test mutating
        the state behind ``position_provider``, a node teleported by scenario
        logic — is invisible until the *next* epoch bump (for an unbound
        environment: the next distinct event time).  Calling this makes a
        same-timestamp move visible to the very next transmission or range
        query for any interface whose position the environment itself tracks:
        the unbound and epoch-bound mirrors and the substrate overlay.  A
        node registered with a *bound mobility manager* lives in the shared
        substrate, which this environment only reads — move it through the
        substrate (``substrate.update(name, pos)`` + ``commit()``, as
        :class:`~repro.mobility.manager.MobilityManager` does each tick);
        that commit is its own dirty-mark.
        """
        self.environment.notify_positions_changed()

    def on_receive(self, callback: Callable[[Frame, LinkQuality], None]) -> None:
        """Register a callback invoked for every delivered frame."""
        self._receive_callbacks.append(callback)

    def send(
        self,
        payload: Any,
        size_bytes: int,
        destination: Optional[str] = None,
        kind: str = "data",
    ) -> Frame:
        """Transmit a frame (broadcast when ``destination`` is ``None``)."""
        frame = Frame(
            sender=self.node_name,
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
        )
        if self.enabled:
            self.bytes_sent += size_bytes
            self.frames_sent += 1
            self.environment.transmit(self, frame)
        return frame

    def deliver(self, frame: Frame, quality: LinkQuality) -> None:
        """Called by the environment when a frame arrives at this interface."""
        if not self.enabled:
            return
        self.bytes_received += frame.size_bytes
        self.frames_received += 1
        for callback in self._receive_callbacks:
            callback(frame, quality)


class RadioEnvironment:
    """The shared medium connecting every :class:`RadioInterface`.

    Position freshness contract
    ---------------------------

    The environment never polls positions; it trusts an epoch counter and
    lazily refreshes derived state (spatial candidate lookup, the per-epoch
    link-quality and in-range caches) when that counter advances.  Three
    regimes, from fastest to safest:

    * **Substrate-bound** (a :class:`~repro.mobility.manager.MobilityManager`
      passed as ``mobility=`` or via :meth:`bind_mobility`): candidate
      queries go straight to the manager's shared
      :class:`~repro.geometry.substrate.SpatialSubstrate`, read-only.  The
      substrate's ``position_epoch`` — bumped once per mobility tick and on
      membership changes — is the single invalidation source; a refresh is a
      cache flush plus an overlay touch-up for the (usually zero) interfaces
      the substrate does not track (e.g. a roadside unit attached to the
      radio but never registered as a mobile node).  There is no second grid
      sync: positions are written exactly once per tick, by the manager.
    * **Epoch-bound** (``bind_mobility`` with any object exposing a
      monotonic ``position_epoch`` but no ``substrate``): the environment
      keeps its own mirror grid and resyncs it once per epoch bump.
    * **Unbound**: the mirror is resynced whenever the virtual clock
      advances — O(N) per distinct event time.  Manual position writes at
      the *current* timestamp still need an explicit dirty-mark
      (:meth:`RadioInterface.notify_moved` /
      :meth:`notify_positions_changed`) to be seen before the clock next
      moves.

    In all regimes the combined :attr:`position_epoch` (environment epoch +
    bound manager epoch) is exported so higher layers — e.g.
    :class:`~repro.core.network_model.NetworkDescriptionBuilder` and the
    memoised :class:`~repro.core.candidate.CandidateScorer` — can key their
    own caches on the same single value.  Cached derived state is valid
    exactly as long as ``position_epoch`` is unchanged; callers must not
    mutate returned lists or hold them across epochs.

    Parameters
    ----------
    sim:
        Simulator used for the virtual clock and delivery scheduling.
    link_budget:
        Physical-layer model mapping positions to rate/PER.
    visibility:
        Obstacle map for NLOS penalties (may be ``None`` for open terrain).
    contention_factor:
        Crude MAC-layer model: each concurrent neighbour within range scales
        the effective rate by ``1 / (1 + contention_factor · neighbours)``.
    rng_stream:
        Name of the random stream used for frame-loss draws.
    mobility:
        Optional :class:`~repro.mobility.manager.MobilityManager`.  When
        given, its ``position_epoch`` drives the invalidation scheme (see
        :meth:`bind_mobility`); without it the environment resyncs whenever
        the clock advances.
    use_spatial_index:
        When ``True`` (default) broadcasts only evaluate receivers returned
        by a spatial range query.  ``False`` keeps the full O(N) scan as the
        reference implementation for equivalence checks (benchmark E11):
        both paths iterate receivers name-sorted, so under the same seed
        they produce byte-identical delivered-frame sequences.
    use_batched_links:
        When ``True`` (default) each sender's link-quality row is filled by
        one :meth:`~repro.radio.link.LinkBudget.quality_batch` call per
        position epoch.  ``False`` keeps the scalar per-pair evaluation as
        the reference implementation; both fill byte-identical rows, so the
        delivered-frame sequence is seed-stable across the flag (benchmark
        E13).
    fast_math:
        Equivalence tier of the delivery path.  ``None`` (default) inherits
        the link budget's tier.  ``True`` selects the *statistical* tier:
        broadcast loss draws are vectorised (one ``rng.random(k)`` per
        broadcast) and same-delay arrivals are coalesced into single batch
        events via :meth:`~repro.simcore.simulator.Simulator.schedule_batch`
        — distribution-level metric agreement with the exact tier (benchmark
        E15), not byte-identical frame sequences.  Requires
        ``use_batched_links=True``.  ``False`` forces the exact tier even
        with a ``fast_math`` link budget.
    cell_size:
        Cell size of the mirrored spatial grid; defaults to the effective
        radio range.
    """

    def __init__(
        self,
        sim: Simulator,
        link_budget: Optional[LinkBudget] = None,
        visibility: Optional[VisibilityMap] = None,
        contention_factor: float = 0.05,
        rng_stream: str = "radio",
        mobility: Optional[Any] = None,
        use_spatial_index: bool = True,
        use_batched_links: bool = True,
        fast_math: Optional[bool] = None,
        cell_size: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.link_budget = link_budget or LinkBudget()
        if fast_math is None:
            fast_math = self.link_budget.fast_math
        elif not isinstance(fast_math, bool):
            raise ValueError(
                "fast_math selects the equivalence tier and must be a bool "
                f"or None (inherit from the link budget), got {fast_math!r}"
            )
        if fast_math and not use_batched_links:
            raise ValueError(
                "fast_math=True (statistical tier) requires "
                "use_batched_links=True; the scalar per-pair path is the "
                "exact tier's reference implementation"
            )
        self.fast_math = fast_math
        self.visibility = visibility
        self.contention_factor = contention_factor
        self.rng_stream = rng_stream
        #: Probability that an otherwise-delivered frame is dropped on top of
        #: the per-link PER — the fault injector's message-loss bursts.  The
        #: extra RNG draw happens *only* while this is nonzero, so an idle
        #: (or absent) injector leaves the radio stream's draw sequence — and
        #: therefore the delivered-frame sequence — byte-identical (E14).
        self.extra_loss_probability = 0.0
        self._interfaces: Dict[str, RadioInterface] = {}
        self.max_range = self.link_budget.effective_range(None)
        self._query_radius = self.max_range + _RANGE_STEP_SLACK_M
        if use_spatial_index and self.link_budget.quality(
            Vec2(0.0, 0.0), Vec2(self._query_radius, 0.0), None
        ).usable:
            # The link is still usable just beyond the reported effective
            # range, i.e. ``effective_range`` hit its scan cap rather than
            # the real SNR boundary.  Range pruning would silently drop
            # reachable receivers, so fall back to the full scan.
            use_spatial_index = False
        self.use_spatial_index = use_spatial_index
        self.use_batched_links = use_batched_links
        #: Private mirror grid.  Substrate-bound environments use it only as
        #: an *overlay* for interfaces the substrate does not track; other
        #: regimes mirror every interface into it.
        self._grid: SpatialGrid = SpatialGrid(
            cell_size=cell_size if cell_size is not None else max(self._query_radius, 1.0)
        )
        self._position_epoch = 0
        self._synced_epoch = -1
        self._synced_time: Optional[float] = None
        self._mobility: Optional[Any] = None
        self._substrate: Optional[Any] = None
        self._synced_mobility_epoch = -1
        self._overlay_names: List[str] = []
        self._overlay_key: Optional[Tuple[int, int]] = None
        #: Full mirror resync passes performed (stays 0 when substrate-bound;
        #: asserted by benchmark E11).
        self.mirror_sync_passes = 0
        #: Per-sender link rows, valid for one position epoch: sender name →
        #: {receiver name → LinkQuality}.  Rows are filled in bulk (one
        #: ``quality_batch`` call for all receivers a sender needs this
        #: epoch) instead of one cache entry per ``(src, dst)`` probe.
        self._quality_rows: Dict[str, Dict[str, LinkQuality]] = {}
        self._in_range_cache: Dict[str, List[str]] = {}
        #: Broadcast receiver lists (name-sorted) plus their pruned-receiver
        #: count, memoised per sender per position epoch.
        self._receiver_cache: Dict[str, Tuple[List[str], int]] = {}
        #: Statistical-tier broadcast plans, memoised per sender per epoch.
        self._fast_plans: Dict[str, _FastSenderPlan] = {}
        self._fast_universe: Optional[_FastUniverse] = None
        # Hot-path counters, resolved once instead of per frame.
        monitor = sim.monitor
        self._frames_out_of_range = monitor.counter("radio.frames_out_of_range")
        self._frames_lost = monitor.counter("radio.frames_lost")
        self._frames_delivered = monitor.counter("radio.frames_delivered")
        self._bytes_delivered = monitor.counter("radio.bytes_delivered")
        self._link_delay = monitor.sample("radio.link_delay")
        self._kind_bytes: Dict[str, Counter] = {}
        self._deliver_names: Dict[str, str] = {}
        if mobility is not None:
            self.bind_mobility(mobility)

    # ------------------------------------------------------------- snapshot

    #: Per-epoch derived state the snapshot protocol drops and rebuilds.
    _EPHEMERAL_DEFAULTS = {
        "_quality_rows": dict,
        "_in_range_cache": dict,
        "_receiver_cache": dict,
        "_fast_plans": dict,
        "_fast_universe": lambda: None,
    }

    def __getstate__(self) -> dict:
        """Pickle without per-epoch caches; force a refresh on first use.

        Link rows, in-range sets, broadcast receiver lists and the
        statistical tier's sender plans are pure functions of positions and
        the link budget — rebuilding them after restore is cheap and keeps
        the snapshot free of numpy scratch arrays and hash-ordered
        intermediates.  The sync sentinels are reset so the first
        :meth:`_refresh` after restore rebuilds everything (including the
        mirror grid for unbound environments).
        """
        state = self.__dict__.copy()
        for name, default in self._EPHEMERAL_DEFAULTS.items():
            state[name] = default()
        state["_synced_epoch"] = -1
        state["_synced_time"] = None
        state["_synced_mobility_epoch"] = -1
        state["_overlay_key"] = None
        return state

    def invalidate_caches(self) -> None:
        """Drop every per-epoch cache and force the next refresh to rebuild."""
        self._quality_rows.clear()
        self._in_range_cache.clear()
        self._receiver_cache.clear()
        self._fast_plans.clear()
        self._fast_universe = None
        self._synced_epoch = -1
        self._synced_time = None
        self._synced_mobility_epoch = -1
        self._overlay_key = None

    def capture_state(self) -> dict:
        """The radio layer's durable state as plain data.

        Everything here survives a snapshot/restore cycle verbatim; the
        per-epoch caches intentionally do not (see :meth:`__getstate__`) and
        therefore never appear in a capture.  Pending frame deliveries live
        in the simulator's event queue and travel with the object graph.
        """
        return {
            "noise_penalty_db": getattr(self.link_budget, "noise_penalty_db", 0.0),
            "extra_loss_probability": self.extra_loss_probability,
            "position_epoch": self._position_epoch,
            "fast_math": self.fast_math,
            "interfaces": {
                name: {
                    "bytes_sent": interface.bytes_sent,
                    "bytes_received": interface.bytes_received,
                    "frames_sent": interface.frames_sent,
                    "frames_received": interface.frames_received,
                    "enabled": interface.enabled,
                }
                for name, interface in sorted(self._interfaces.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply a capture onto this environment and flush derived state.

        Interface names must match the capture exactly — a restored
        simulation with a different attachment set is a different simulation
        and is rejected loudly.
        """
        captured = set(state["interfaces"])
        live = set(self._interfaces)
        if captured != live:
            raise ValueError(
                "radio snapshot names do not match attached interfaces: "
                f"snapshot-only={sorted(captured - live)}, "
                f"live-only={sorted(live - captured)}"
            )
        self.link_budget.noise_penalty_db = float(state["noise_penalty_db"])
        self.extra_loss_probability = float(state["extra_loss_probability"])
        self._position_epoch = int(state["position_epoch"])
        for name, fields in state["interfaces"].items():
            interface = self._interfaces[name]
            interface.bytes_sent = fields["bytes_sent"]
            interface.bytes_received = fields["bytes_received"]
            interface.frames_sent = fields["frames_sent"]
            interface.frames_received = fields["frames_received"]
            interface.enabled = fields["enabled"]
        self.invalidate_caches()

    # ----------------------------------------------------------- attachment

    def attach(
        self, node_name: str, position_provider: Callable[[], Vec2]
    ) -> RadioInterface:
        """Create and register an interface for ``node_name``."""
        if node_name in self._interfaces:
            raise ValueError(f"node {node_name!r} already has a radio interface")
        interface = RadioInterface(self, node_name, position_provider)
        self._interfaces[node_name] = interface
        self.notify_positions_changed()
        return interface

    def detach(self, node_name: str) -> None:
        """Remove a node's interface (e.g. the node left the area)."""
        if self._interfaces.pop(node_name, None) is not None:
            self._grid.remove(node_name)
            self.notify_positions_changed()

    def interface_of(self, node_name: str) -> RadioInterface:
        """Look up the interface attached to ``node_name``."""
        return self._interfaces[node_name]

    @property
    def node_names(self) -> List[str]:
        """All attached node names."""
        return list(self._interfaces)

    # ---------------------------------------------------------- invalidation

    def bind_mobility(self, mobility: Any) -> None:
        """Drive cache invalidation from a mobility manager's position epoch.

        ``mobility`` must expose a monotonic ``position_epoch`` attribute (as
        :class:`~repro.mobility.manager.MobilityManager` does, bumped on each
        tick and on membership changes).  Once bound, the environment trusts
        that positions only change when that epoch advances — which turns
        grid resyncs and cache flushes from per-event-time into
        per-mobility-tick work.

        When ``mobility`` additionally exposes a ``substrate``
        (:class:`~repro.geometry.substrate.SpatialSubstrate`), the
        environment drops its own mirror entirely and queries that substrate
        read-only — one position sync per tick then serves both the mobility
        and radio layers (see the class docstring's freshness contract).
        """
        self._mobility = mobility
        self._substrate = getattr(mobility, "substrate", None)
        self._synced_mobility_epoch = -1
        self._synced_epoch = -1
        self._overlay_key = None

    def notify_positions_changed(self) -> None:
        """Advance the position epoch (positions may have moved)."""
        self._position_epoch += 1

    def _obstacle_epoch(self) -> int:
        """The visibility map's occluder epoch (0 for open terrain)."""
        visibility = self.visibility
        return 0 if visibility is None else visibility.obstacle_epoch

    @property
    def position_epoch(self) -> int:
        """Monotonic counter bumped whenever link geometry may have changed.

        Combines the environment's own epoch (attach/detach/manual
        notifications) with the bound mobility manager's and the visibility
        map's :attr:`~repro.geometry.los.VisibilityMap.obstacle_epoch` (a
        moved occluder changes NLOS penalties even though no node moved), so
        consumers can key caches on this single value.
        """
        own = self._position_epoch + self._obstacle_epoch()
        if self._mobility is not None:
            own += self._mobility.position_epoch
        return own

    def spatial_stats(self) -> Dict[str, float]:
        """Counters describing how candidate lookup is being served.

        ``substrate_shared`` is 1.0 when broadcasts query the mobility
        manager's grid directly; ``mirror_updates`` counts writes into the
        environment's private grid (overlay-only when substrate-shared);
        ``mirror_sync_passes`` counts full mirror resyncs (0 when shared).
        """
        stats = {
            "substrate_shared": 1.0 if self._substrate is not None else 0.0,
            "overlay_nodes": float(len(self._overlay_names)),
            "mirror_updates": float(self._grid.update_calls),
            "mirror_sync_passes": float(self.mirror_sync_passes),
            "obstacle_epoch": float(self._obstacle_epoch()),
            "obstacle_index_rebuilds": float(
                getattr(self.visibility, "index_rebuilds", 0)
            ),
        }
        return stats

    def _refresh(self) -> None:
        """Flush per-epoch caches (and any mirror/overlay state) when stale.

        The obstacle epoch is folded into the environment's own epoch: link
        rows embed NLOS penalties, so a mutated occluder set (moving
        buses/trucks via
        :meth:`~repro.geometry.los.VisibilityMap.set_obstacles`) must flush
        them even though no node moved.  Both counters are monotonic, so
        their sum is a valid single invalidation key.
        """
        own = self._position_epoch + self._obstacle_epoch()
        substrate = self._substrate
        if substrate is not None:
            epoch = own + substrate.position_epoch
            if epoch == self._synced_epoch:
                return
            self._sync_overlay()
            self._quality_rows.clear()
            self._in_range_cache.clear()
            self._receiver_cache.clear()
            self._fast_plans.clear()
            self._fast_universe = None
            self._synced_epoch = epoch
            return
        mobility = self._mobility
        if self._synced_epoch == own:
            if mobility is not None:
                if self._synced_mobility_epoch == mobility.position_epoch:
                    return
            elif self._synced_time == self.sim.now:
                return
        grid = self._grid
        for name, interface in self._interfaces.items():
            grid.update(name, interface.position)
        self.mirror_sync_passes += 1
        self._quality_rows.clear()
        self._in_range_cache.clear()
        self._receiver_cache.clear()
        self._fast_plans.clear()
        self._fast_universe = None
        self._synced_epoch = own
        self._synced_mobility_epoch = (
            mobility.position_epoch if mobility is not None else -1
        )
        self._synced_time = self.sim.now

    def _sync_overlay(self) -> None:
        """Keep the overlay grid tracking interfaces outside the substrate.

        Mobile interfaces live in the shared substrate and are never written
        here; the overlay holds only radio-attached nodes the mobility
        manager does not manage (roadside units, hand-moved test nodes).
        Its membership is recomputed only when the attachment set or the
        substrate's membership changed; its (typically zero or few)
        positions are re-read on every refresh.
        """
        substrate = self._substrate
        grid = self._grid
        key = (self._position_epoch, substrate.membership_epoch)
        if key != self._overlay_key:
            self._overlay_key = key
            overlay = [name for name in self._interfaces if name not in substrate]
            self._overlay_names = overlay
            wanted = set(overlay)
            stale = [name for name, _ in grid.items() if name not in wanted]
            for name in stale:
                grid.remove(name)
        for name in self._overlay_names:
            grid.update(name, self._interfaces[name].position)

    # ------------------------------------------------------------- queries

    def link_quality(self, src: str, dst: str) -> LinkQuality:
        """Current link quality between two attached nodes."""
        self._refresh()
        return self._ensure_row(src, (dst,))[dst]

    def _ensure_row(
        self, src: str, wanted: "Sequence[str]"
    ) -> Dict[str, LinkQuality]:
        """The sender's link row, guaranteed to cover ``wanted`` receivers.

        Rows live for one position epoch (:meth:`_refresh` flushes them).
        Missing entries are computed in one
        :meth:`~repro.radio.link.LinkBudget.quality_batch` call — or pair by
        pair on the scalar reference path (``use_batched_links=False``),
        which fills bit-identical values.  Names without an attached
        interface are skipped (callers guard their lookups the same way).
        """
        row = self._quality_rows.get(src)
        if row is None:
            row = {}
            self._quality_rows[src] = row
        interfaces = self._interfaces
        missing = [
            name for name in wanted if name not in row and name in interfaces
        ]
        if missing:
            tx = interfaces[src].position
            if self.use_batched_links:
                positions = [interfaces[name].position for name in missing]
                qualities = self.link_budget.quality_batch(
                    tx, positions, self.visibility
                )
                for name, quality in zip(missing, qualities):
                    row[name] = quality
            else:
                quality = self.link_budget.quality
                visibility = self.visibility
                for name in missing:
                    row[name] = quality(tx, interfaces[name].position, visibility)
        return row

    def _candidate_names(self, center: Vec2) -> List[str]:
        """Attached interface names within the spatial query radius.

        Callers must have called :meth:`_refresh` first.  Substrate-bound
        environments query the shared grid (dropping substrate entries with
        no radio interface, e.g. tracked pedestrians) plus the overlay;
        otherwise the private mirror is authoritative.
        """
        substrate = self._substrate
        if substrate is None:
            return self._grid.query_range(center, self._query_radius)
        names = [
            name
            for name in substrate.query_range(center, self._query_radius)
            if name in self._interfaces
        ]
        if self._overlay_names:
            names.extend(self._grid.query_range(center, self._query_radius))
        return names

    def nodes_in_range(self, node_name: str) -> List[str]:
        """Other nodes whose link from ``node_name`` is currently usable.

        Memoised per position epoch; the result is name-sorted.
        """
        self._refresh()
        cached = self._in_range_cache.get(node_name)
        if cached is None:
            if self.use_spatial_index:
                candidates = self._candidate_names(self._interfaces[node_name].position)
            else:
                candidates = list(self._interfaces)
            others = [other for other in candidates if other != node_name]
            row = self._ensure_row(node_name, others)
            cached = sorted(other for other in others if row[other].usable)
            self._in_range_cache[node_name] = cached
        return list(cached)

    # --------------------------------------------------------- transmission

    def _broadcast_candidates(
        self, sender_name: str, position: Vec2
    ) -> Tuple[List[str], int]:
        """Memoised broadcast candidate names (name-sorted) + pruned count.

        Pure lookup — no counter side effects — shared by the exact tier's
        :meth:`_broadcast_receivers` and the statistical tier's
        :meth:`_build_fast_plan`, which account for the pruned receivers on
        their own per-broadcast schedule.
        """
        cached = self._receiver_cache.get(sender_name)
        if cached is None:
            if self.use_spatial_index:
                receivers = sorted(
                    name
                    for name in self._candidate_names(position)
                    if name != sender_name
                )
                attached_others = len(self._interfaces) - (
                    1 if sender_name in self._interfaces else 0
                )
                pruned = attached_others - len(receivers)
            else:
                receivers = sorted(
                    name for name in self._interfaces if name != sender_name
                )
                pruned = 0
            cached = (receivers, pruned)
            self._receiver_cache[sender_name] = cached
        return cached

    def _broadcast_receivers(self, sender_name: str, position: Vec2) -> List[str]:
        """Candidate receiver names for a broadcast, name-sorted.

        With the spatial index enabled, interfaces beyond the query radius
        are pruned wholesale and accounted to ``radio.frames_out_of_range``
        in one O(1) increment — the link budget is monotone in distance, so
        none of them could have been usable.  The list (and its pruned
        count) is memoised per sender per position epoch; the counter is
        still bumped once per broadcast.
        """
        receivers, pruned = self._broadcast_candidates(sender_name, position)
        if pruned > 0:
            self._frames_out_of_range.add(pruned)
        return receivers

    def _kind_counter(self, kind: str) -> Counter:
        counter = self._kind_bytes.get(kind)
        if counter is None:
            counter = self.sim.monitor.counter(f"radio.bytes.{kind}")
            self._kind_bytes[kind] = counter
        return counter

    def transmit(self, sender: RadioInterface, frame: Frame) -> None:
        """Deliver ``frame`` to its destination(s) with latency and loss."""
        self._refresh()
        sender_name = sender.node_name
        if self.fast_math and frame.destination is None:
            # Statistical tier: vectorised broadcast via the per-epoch
            # sender plan.  Unicast frames take the scalar loop below — one
            # receiver gains nothing from vectorisation.
            self._transmit_fast(sender, frame)
            return
        if frame.destination is not None:
            receiver_names = [frame.destination]
        else:
            receiver_names = self._broadcast_receivers(sender_name, sender.position)
        row = self._ensure_row(sender_name, receiver_names)
        concurrent = max(0, len(self.nodes_in_range(sender_name)) - 1)
        contention_scale = 1.0 / (1.0 + self.contention_factor * concurrent)
        deliver_name = self._deliver_names.get(frame.kind)
        if deliver_name is None:
            deliver_name = f"deliver-{frame.kind}"
            self._deliver_names[frame.kind] = deliver_name
        rng = self.sim.streams.get(self.rng_stream)
        for receiver_name in receiver_names:
            receiver = self._interfaces.get(receiver_name)
            if receiver is None or receiver is sender:
                continue
            quality = row[receiver_name]
            if not quality.usable:
                self._frames_out_of_range.add()
                continue
            if rng.random() < quality.packet_error_rate:
                self._frames_lost.add()
                continue
            if (
                self.extra_loss_probability > 0.0
                and rng.random() < self.extra_loss_probability
            ):
                self._frames_lost.add()
                continue
            rate = quality.rate_bps * contention_scale
            serialization = self.link_budget.transfer_time(frame.size_bytes * 8, rate)
            propagation = quality.distance / 3e8
            delay = serialization + propagation
            self._frames_delivered.add()
            self._bytes_delivered.add(frame.size_bytes)
            self._kind_counter(frame.kind).add(frame.size_bytes)
            self._link_delay.add(delay)
            self.sim.schedule(
                delay,
                _FrameDelivery(receiver, frame, quality),
                name=deliver_name,
            )

    def _ensure_fast_universe(self) -> "_FastUniverse":
        """The per-epoch position snapshot, built on first fast broadcast.

        One position-provider call per attached interface per epoch; every
        sender plan of the epoch reuses the arrays.  Name-sorted so the
        candidate order derived from it matches the exact tier's sorted
        receiver lists.
        """
        universe = self._fast_universe
        if universe is None:
            universe = _FastUniverse()
            interfaces = [
                self._interfaces[name] for name in sorted(self._interfaces)
            ]
            positions = [interface.position for interface in interfaces]
            count = len(positions)
            universe.interfaces = interfaces
            universe.positions = positions
            universe.xs = np.fromiter(
                (position.x for position in positions), np.float64, count
            )
            universe.ys = np.fromiter(
                (position.y for position in positions), np.float64, count
            )
            universe.index_of = {
                interface.node_name: index
                for index, interface in enumerate(interfaces)
            }
            self._fast_universe = universe
        return universe

    def _build_fast_plan(
        self, sender_name: str, position: Vec2
    ) -> "_FastSenderPlan":
        """Precompute one sender's broadcast state for this position epoch.

        Candidates come from one vectorised distance mask over the epoch's
        :class:`_FastUniverse` (the same exact ``<= query radius`` test the
        spatial grid applies, minus the grid walk — live positions instead
        of the substrate's committed ones, which the statistical tier's
        aggregate contract permits); one
        :meth:`~repro.radio.link.LinkBudget.quality_arrays_xy` call fills
        the usable receivers' PER / contention-scaled rate / propagation
        delay columns in array form.  The contention scale is derived from
        the usable-receiver count (identical to the exact tier's
        ``len(nodes_in_range) - 1``, which for a broadcast counts exactly
        these links).  ``out_of_range`` folds the spatially pruned and the
        link-unusable receivers into one per-broadcast counter increment.
        """
        universe = self._ensure_fast_universe()
        sender_index = universe.index_of.get(sender_name)
        dx = universe.xs - position.x
        dy = universe.ys - position.y
        squared = dx * dx + dy * dy
        if self.use_spatial_index:
            # Same exact criterion as the spatial grid's range query, on
            # squared distances so the sqrt only runs over the survivors.
            in_range = squared <= self._query_radius * self._query_radius
        else:
            in_range = np.ones(len(universe.interfaces), dtype=bool)
        if sender_index is not None:
            in_range[sender_index] = False
        candidate_indices = np.flatnonzero(in_range)
        others = len(universe.interfaces) - (1 if sender_index is not None else 0)
        pruned = others - int(candidate_indices.size)
        candidate_positions = None
        if self.visibility is not None:
            positions = universe.positions
            candidate_positions = [
                positions[index] for index in candidate_indices.tolist()
            ]
        snrs, rates, pers, usable, distances = self.link_budget.quality_arrays_xy(
            position,
            universe.xs[candidate_indices],
            universe.ys[candidate_indices],
            self.visibility,
            rxs=candidate_positions,
            distances=np.sqrt(squared[candidate_indices]),
        )
        usable_indices = np.flatnonzero(usable)
        unusable = int(candidate_indices.size) - int(usable_indices.size)
        kept_indices = candidate_indices[usable_indices].tolist()
        all_interfaces = universe.interfaces
        receivers = [all_interfaces[index] for index in kept_indices]
        usable_distances = distances[usable_indices]
        qualities = _QualityColumns(
            snrs[usable_indices].tolist(),
            rates[usable_indices].tolist(),
            pers[usable_indices].tolist(),
            usable_distances.tolist(),
        )
        concurrent = max(0, len(receivers) - 1)
        contention_scale = 1.0 / (1.0 + self.contention_factor * concurrent)
        plan = _FastSenderPlan()
        plan.receivers = receivers
        plan.qualities = qualities
        plan.pers = pers[usable_indices]
        plan.scaled_rates = rates[usable_indices] * contention_scale
        plan.prop_delays = usable_distances / 3e8
        plan.out_of_range = pruned + unusable
        plan.delay_groups = {}
        return plan

    def _transmit_fast(self, sender: RadioInterface, frame: Frame) -> None:
        """Statistical-tier broadcast delivery: vectorised loss and delay.

        All of a broadcast's frame-loss draws happen in one
        ``rng.random(k)`` call (still on the named radio stream, still over
        the usable receivers in name-sorted order), delays come from the
        per-epoch sender plan, and receivers sharing an identical delay are
        coalesced into one :class:`_BatchFrameDelivery` pushed through
        :meth:`~repro.simcore.simulator.Simulator.schedule_batch` — one heap
        operation per broadcast instead of one sift per receiver.  Counter
        totals match the exact tier's values; the RNG draw *interleaving*
        (and therefore the exact delivered-frame sequence) is the thing this
        tier deliberately stops pinning.
        """
        sender_name = sender.node_name
        plan = self._fast_plans.get(sender_name)
        if plan is None:
            plan = self._build_fast_plan(sender_name, sender.position)
            self._fast_plans[sender_name] = plan
        if plan.out_of_range:
            self._frames_out_of_range.add(plan.out_of_range)
        count = len(plan.receivers)
        if count == 0:
            return
        rng = self.sim.streams.get(self.rng_stream)
        kept = rng.random(count) >= plan.pers
        extra = self.extra_loss_probability
        if extra > 0.0:
            # Mirror the exact tier's contract: extra-loss draws happen only
            # while the injector holds the probability nonzero, and only for
            # frames that survived the PER draw.
            survivor_indices = np.flatnonzero(kept)
            if survivor_indices.size:
                extra_lost = rng.random(survivor_indices.size) < extra
                kept[survivor_indices[extra_lost]] = False
        delivered = int(kept.sum())
        lost = count - delivered
        if lost:
            self._frames_lost.add(lost)
        if not delivered:
            return
        size_bits = frame.size_bytes * 8
        groups = plan.delay_groups.get(size_bits)
        if groups is None:
            # Bucket receivers by identical delay in C: `np.unique` sorts the
            # delays, the stable argsort of the inverse mapping lays the
            # member indices out group by group (ascending within each group,
            # preserving name order).  Group order is delay-ascending rather
            # than first-occurrence — observationally equivalent, since
            # distinct delays fire at distinct times regardless of push
            # order.
            delays = size_bits / plan.scaled_rates + plan.prop_delays
            unique_delays, inverse, counts = np.unique(
                delays, return_inverse=True, return_counts=True
            )
            order = np.argsort(inverse, kind="stable").tolist()
            groups = []
            start = 0
            for delay, count_in_group in zip(
                unique_delays.tolist(), counts.tolist()
            ):
                end = start + count_in_group
                groups.append((delay, order[start:end]))
                start = end
            plan.delay_groups[size_bits] = groups
        deliver_name = self._deliver_names.get(frame.kind)
        if deliver_name is None:
            deliver_name = f"deliver-{frame.kind}"
            self._deliver_names[frame.kind] = deliver_name
        self._frames_delivered.add(delivered)
        total_bytes = frame.size_bytes * delivered
        self._bytes_delivered.add(total_bytes)
        self._kind_counter(frame.kind).add(total_bytes)
        delay_samples = self._link_delay.values
        receivers = plan.receivers
        qualities = plan.qualities
        # The (few) lost indices drive group filtering: most groups are
        # untouched and reuse their plan-held member list without a copy.
        lost_set = None if delivered == count else set(
            np.flatnonzero(~kept).tolist()
        )
        entries: List[Tuple[float, Callable[[], Any], int, str]] = []
        # Group order (and each group's member order) is name-sorted, so the
        # coalesced events preserve the exact tier's observable ordering.
        for delay, members in groups:
            if lost_set is None or lost_set.isdisjoint(members):
                selected = members
            else:
                selected = [
                    index for index in members if index not in lost_set
                ]
                if not selected:
                    continue
            if len(selected) == 1:
                index = selected[0]
                callback: Callable[[], Any] = _FrameDelivery(
                    receivers[index], frame, qualities[index]
                )
            else:
                callback = _BatchFrameDelivery(
                    receivers, qualities, selected, frame
                )
            delay_samples.extend(repeat(delay, len(selected)))
            entries.append((delay, callback, 0, deliver_name))
        self.sim.schedule_batch(entries)

"""Radio interfaces and the shared radio environment.

A :class:`RadioInterface` is attached to each node (vehicle, roadside unit,
generic edge device).  All interfaces share a single :class:`RadioEnvironment`
which, on every transmission, evaluates the link budget to each potential
receiver, applies random frame loss, models serialization/propagation delay
and a simple contention factor, and schedules the delivery callbacks on the
simulator.

Frames carry opaque payload objects plus a byte size; higher layers (the mesh
transport and the AirDnD offloading protocol) decide what goes inside.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.geometry.los import VisibilityMap
from repro.geometry.vector import Vec2
from repro.radio.link import LinkBudget, LinkQuality
from repro.simcore.simulator import Simulator

_frame_ids = itertools.count()


@dataclass
class Frame:
    """One over-the-air frame.

    Attributes
    ----------
    frame_id:
        Unique identifier (assigned automatically).
    sender:
        Name of the sending node.
    destination:
        Name of the destination node, or ``None`` for broadcast.
    payload:
        Arbitrary message object.
    size_bytes:
        Serialized size used for transfer-time computation.
    kind:
        Free-form label ("beacon", "task", "result", ...) used by metrics.
    """

    sender: str
    destination: Optional[str]
    payload: Any
    size_bytes: int
    kind: str = "data"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))


class RadioInterface:
    """A node's attachment point to the shared radio environment."""

    def __init__(
        self,
        environment: "RadioEnvironment",
        node_name: str,
        position_provider: Callable[[], Vec2],
    ) -> None:
        self.environment = environment
        self.node_name = node_name
        self.position_provider = position_provider
        self._receive_callbacks: List[Callable[[Frame, LinkQuality], None]] = []
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.enabled = True

    @property
    def position(self) -> Vec2:
        """Current position of the owning node."""
        return self.position_provider()

    def on_receive(self, callback: Callable[[Frame, LinkQuality], None]) -> None:
        """Register a callback invoked for every delivered frame."""
        self._receive_callbacks.append(callback)

    def send(
        self,
        payload: Any,
        size_bytes: int,
        destination: Optional[str] = None,
        kind: str = "data",
    ) -> Frame:
        """Transmit a frame (broadcast when ``destination`` is ``None``)."""
        frame = Frame(
            sender=self.node_name,
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
        )
        if self.enabled:
            self.bytes_sent += size_bytes
            self.frames_sent += 1
            self.environment.transmit(self, frame)
        return frame

    def deliver(self, frame: Frame, quality: LinkQuality) -> None:
        """Called by the environment when a frame arrives at this interface."""
        if not self.enabled:
            return
        self.bytes_received += frame.size_bytes
        self.frames_received += 1
        for callback in self._receive_callbacks:
            callback(frame, quality)


class RadioEnvironment:
    """The shared medium connecting every :class:`RadioInterface`.

    Parameters
    ----------
    sim:
        Simulator used for the virtual clock and delivery scheduling.
    link_budget:
        Physical-layer model mapping positions to rate/PER.
    visibility:
        Obstacle map for NLOS penalties (may be ``None`` for open terrain).
    contention_factor:
        Crude MAC-layer model: each concurrent neighbour within range scales
        the effective rate by ``1 / (1 + contention_factor · neighbours)``.
    rng_stream:
        Name of the random stream used for frame-loss draws.
    """

    def __init__(
        self,
        sim: Simulator,
        link_budget: Optional[LinkBudget] = None,
        visibility: Optional[VisibilityMap] = None,
        contention_factor: float = 0.05,
        rng_stream: str = "radio",
    ) -> None:
        self.sim = sim
        self.link_budget = link_budget or LinkBudget()
        self.visibility = visibility
        self.contention_factor = contention_factor
        self.rng_stream = rng_stream
        self._interfaces: Dict[str, RadioInterface] = {}
        self.max_range = self.link_budget.effective_range(None)

    # ----------------------------------------------------------- attachment

    def attach(
        self, node_name: str, position_provider: Callable[[], Vec2]
    ) -> RadioInterface:
        """Create and register an interface for ``node_name``."""
        if node_name in self._interfaces:
            raise ValueError(f"node {node_name!r} already has a radio interface")
        interface = RadioInterface(self, node_name, position_provider)
        self._interfaces[node_name] = interface
        return interface

    def detach(self, node_name: str) -> None:
        """Remove a node's interface (e.g. the node left the area)."""
        self._interfaces.pop(node_name, None)

    def interface_of(self, node_name: str) -> RadioInterface:
        """Look up the interface attached to ``node_name``."""
        return self._interfaces[node_name]

    @property
    def node_names(self) -> List[str]:
        """All attached node names."""
        return list(self._interfaces)

    # ------------------------------------------------------------- queries

    def link_quality(self, src: str, dst: str) -> LinkQuality:
        """Current link quality between two attached nodes."""
        tx = self._interfaces[src].position
        rx = self._interfaces[dst].position
        return self.link_budget.quality(tx, rx, self.visibility)

    def nodes_in_range(self, node_name: str) -> List[str]:
        """Other nodes whose link from ``node_name`` is currently usable."""
        out = []
        for other in self._interfaces:
            if other == node_name:
                continue
            if self.link_quality(node_name, other).usable:
                out.append(other)
        return out

    # --------------------------------------------------------- transmission

    def transmit(self, sender: RadioInterface, frame: Frame) -> None:
        """Deliver ``frame`` to its destination(s) with latency and loss."""
        rng = self.sim.streams.get(self.rng_stream)
        receivers = (
            [frame.destination]
            if frame.destination is not None
            else [n for n in self._interfaces if n != sender.node_name]
        )
        concurrent = max(0, len(self.nodes_in_range(sender.node_name)) - 1)
        contention_scale = 1.0 / (1.0 + self.contention_factor * concurrent)
        monitor = self.sim.monitor
        for receiver_name in receivers:
            receiver = self._interfaces.get(receiver_name)
            if receiver is None or receiver is sender:
                continue
            quality = self.link_budget.quality(
                sender.position, receiver.position, self.visibility
            )
            if not quality.usable:
                monitor.counter("radio.frames_out_of_range").add()
                continue
            if rng.random() < quality.packet_error_rate:
                monitor.counter("radio.frames_lost").add()
                continue
            rate = quality.rate_bps * contention_scale
            serialization = self.link_budget.transfer_time(frame.size_bytes * 8, rate)
            propagation = quality.distance / 3e8
            delay = serialization + propagation
            monitor.counter("radio.frames_delivered").add()
            monitor.counter("radio.bytes_delivered").add(frame.size_bytes)
            monitor.counter(f"radio.bytes.{frame.kind}").add(frame.size_bytes)
            monitor.sample("radio.link_delay").add(delay)
            self.sim.schedule(
                delay,
                lambda r=receiver, f=frame, q=quality: r.deliver(f, q),
                name=f"deliver-{frame.kind}",
            )

"""Radio interfaces and the spatially-indexed shared radio environment.

A :class:`RadioInterface` is attached to each node (vehicle, roadside unit,
generic edge device).  All interfaces share a single :class:`RadioEnvironment`
which, on every transmission, evaluates the link budget to each *candidate*
receiver, applies random frame loss, models serialization/propagation delay
and a simple contention factor, and schedules the delivery callbacks on the
simulator.

Broadcast used to be the fleet-wide hot path: every beacon evaluated the link
budget against every attached interface — O(N²) work per beacon interval.
The environment now answers "who could hear this?" with a spatial range
query and only touches candidate receivers inside the link budget's
effective range.  The per-pair physics is batched as well: link qualities
are held in *per-sender rows* filled by one
:meth:`~repro.radio.link.LinkBudget.quality_batch` call per sender per
position epoch (``use_batched_links=False`` keeps the scalar per-pair
computation as the byte-identical reference path), so ``transmit``,
:meth:`RadioEnvironment.nodes_in_range` and every candidate scorer probe
hit one row dictionary instead of N per-pair cache entries.  When a :class:`~repro.mobility.manager.MobilityManager` is
bound, the query runs directly against the manager's shared
:class:`~repro.geometry.substrate.SpatialSubstrate` — the environment keeps
*no* mirror of mobile positions, so the manager's one position sync per tick
serves both layers (see :class:`RadioEnvironment` for the full freshness
contract).  Unbound environments fall back to mirroring interface positions
into a private grid resynced whenever the virtual clock advances, which
costs O(N) per distinct event time — bind the mobility manager for anything
beyond unit-test scale.  A position changed manually *between* events at the
same timestamp is invisible to any refresh scheme until the epoch advances;
call :meth:`RadioInterface.notify_moved` (or
:meth:`RadioEnvironment.notify_positions_changed`) after such writes to make
them visible immediately.  Substrate-tracked nodes are the mobility
manager's to move: write through the substrate (whose commit is its own
dirty-mark) instead.

Receivers are always iterated in name-sorted order so the frame-loss RNG
draws — and therefore the delivered-frame sequence — are identical for the
spatial and the brute-force (``use_spatial_index=False``) paths under the
same seed.  (Name-sorted order replaces the pre-refactor attachment-order
iteration, so seeded runs are reproducible against this version, not against
the old medium.)

Frames carry opaque payload objects plus a byte size; higher layers (the mesh
transport and the AirDnD offloading protocol) decide what goes inside.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.geometry.los import VisibilityMap
from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.vector import Vec2
from repro.radio.link import LinkBudget, LinkQuality
from repro.simcore.monitor import Counter
from repro.simcore.simulator import Simulator

_frame_ids = itertools.count()

#: ``LinkBudget.effective_range`` walks outward in 5 m steps, so the true
#: usable boundary lies at most one step beyond the reported range.  The
#: spatial query radius adds this slack so range pruning can never drop a
#: receiver that the full link-budget evaluation would have reached.
_RANGE_STEP_SLACK_M = 5.0


@dataclass(slots=True)
class Frame:
    """One over-the-air frame.

    Attributes
    ----------
    frame_id:
        Unique identifier (assigned automatically).
    sender:
        Name of the sending node.
    destination:
        Name of the destination node, or ``None`` for broadcast.
    payload:
        Arbitrary message object.
    size_bytes:
        Serialized size used for transfer-time computation.
    kind:
        Free-form label ("beacon", "task", "result", ...) used by metrics.
    """

    sender: str
    destination: Optional[str]
    payload: Any
    size_bytes: int
    kind: str = "data"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))


class _FrameDelivery:
    """One scheduled frame arrival, as a compact preallocated callable.

    Replaces the per-delivery ``lambda`` closure (a function object plus
    three cell objects per scheduled frame) with a single ``__slots__``
    instance — the radio medium schedules one of these for every delivered
    frame, which makes it one of the hottest allocations in a broadcast-heavy
    run.
    """

    __slots__ = ("receiver", "frame", "quality")

    def __init__(
        self, receiver: "RadioInterface", frame: "Frame", quality: LinkQuality
    ) -> None:
        self.receiver = receiver
        self.frame = frame
        self.quality = quality

    def __call__(self) -> None:
        self.receiver.deliver(self.frame, self.quality)


class RadioInterface:
    """A node's attachment point to the shared radio environment."""

    def __init__(
        self,
        environment: "RadioEnvironment",
        node_name: str,
        position_provider: Callable[[], Vec2],
    ) -> None:
        self.environment = environment
        self.node_name = node_name
        self.position_provider = position_provider
        self._receive_callbacks: List[Callable[[Frame, LinkQuality], None]] = []
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.enabled = True

    @property
    def position(self) -> Vec2:
        """Current position of the owning node."""
        return self.position_provider()

    def notify_moved(self) -> None:
        """Dirty-mark after an out-of-band (manual) position change.

        The environment never polls positions; it refreshes derived state
        when its position epoch advances.  Mobility-driven movement bumps the
        epoch automatically, but a position written by hand — a test mutating
        the state behind ``position_provider``, a node teleported by scenario
        logic — is invisible until the *next* epoch bump (for an unbound
        environment: the next distinct event time).  Calling this makes a
        same-timestamp move visible to the very next transmission or range
        query for any interface whose position the environment itself tracks:
        the unbound and epoch-bound mirrors and the substrate overlay.  A
        node registered with a *bound mobility manager* lives in the shared
        substrate, which this environment only reads — move it through the
        substrate (``substrate.update(name, pos)`` + ``commit()``, as
        :class:`~repro.mobility.manager.MobilityManager` does each tick);
        that commit is its own dirty-mark.
        """
        self.environment.notify_positions_changed()

    def on_receive(self, callback: Callable[[Frame, LinkQuality], None]) -> None:
        """Register a callback invoked for every delivered frame."""
        self._receive_callbacks.append(callback)

    def send(
        self,
        payload: Any,
        size_bytes: int,
        destination: Optional[str] = None,
        kind: str = "data",
    ) -> Frame:
        """Transmit a frame (broadcast when ``destination`` is ``None``)."""
        frame = Frame(
            sender=self.node_name,
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
        )
        if self.enabled:
            self.bytes_sent += size_bytes
            self.frames_sent += 1
            self.environment.transmit(self, frame)
        return frame

    def deliver(self, frame: Frame, quality: LinkQuality) -> None:
        """Called by the environment when a frame arrives at this interface."""
        if not self.enabled:
            return
        self.bytes_received += frame.size_bytes
        self.frames_received += 1
        for callback in self._receive_callbacks:
            callback(frame, quality)


class RadioEnvironment:
    """The shared medium connecting every :class:`RadioInterface`.

    Position freshness contract
    ---------------------------

    The environment never polls positions; it trusts an epoch counter and
    lazily refreshes derived state (spatial candidate lookup, the per-epoch
    link-quality and in-range caches) when that counter advances.  Three
    regimes, from fastest to safest:

    * **Substrate-bound** (a :class:`~repro.mobility.manager.MobilityManager`
      passed as ``mobility=`` or via :meth:`bind_mobility`): candidate
      queries go straight to the manager's shared
      :class:`~repro.geometry.substrate.SpatialSubstrate`, read-only.  The
      substrate's ``position_epoch`` — bumped once per mobility tick and on
      membership changes — is the single invalidation source; a refresh is a
      cache flush plus an overlay touch-up for the (usually zero) interfaces
      the substrate does not track (e.g. a roadside unit attached to the
      radio but never registered as a mobile node).  There is no second grid
      sync: positions are written exactly once per tick, by the manager.
    * **Epoch-bound** (``bind_mobility`` with any object exposing a
      monotonic ``position_epoch`` but no ``substrate``): the environment
      keeps its own mirror grid and resyncs it once per epoch bump.
    * **Unbound**: the mirror is resynced whenever the virtual clock
      advances — O(N) per distinct event time.  Manual position writes at
      the *current* timestamp still need an explicit dirty-mark
      (:meth:`RadioInterface.notify_moved` /
      :meth:`notify_positions_changed`) to be seen before the clock next
      moves.

    In all regimes the combined :attr:`position_epoch` (environment epoch +
    bound manager epoch) is exported so higher layers — e.g.
    :class:`~repro.core.network_model.NetworkDescriptionBuilder` and the
    memoised :class:`~repro.core.candidate.CandidateScorer` — can key their
    own caches on the same single value.  Cached derived state is valid
    exactly as long as ``position_epoch`` is unchanged; callers must not
    mutate returned lists or hold them across epochs.

    Parameters
    ----------
    sim:
        Simulator used for the virtual clock and delivery scheduling.
    link_budget:
        Physical-layer model mapping positions to rate/PER.
    visibility:
        Obstacle map for NLOS penalties (may be ``None`` for open terrain).
    contention_factor:
        Crude MAC-layer model: each concurrent neighbour within range scales
        the effective rate by ``1 / (1 + contention_factor · neighbours)``.
    rng_stream:
        Name of the random stream used for frame-loss draws.
    mobility:
        Optional :class:`~repro.mobility.manager.MobilityManager`.  When
        given, its ``position_epoch`` drives the invalidation scheme (see
        :meth:`bind_mobility`); without it the environment resyncs whenever
        the clock advances.
    use_spatial_index:
        When ``True`` (default) broadcasts only evaluate receivers returned
        by a spatial range query.  ``False`` keeps the full O(N) scan as the
        reference implementation for equivalence checks (benchmark E11):
        both paths iterate receivers name-sorted, so under the same seed
        they produce byte-identical delivered-frame sequences.
    use_batched_links:
        When ``True`` (default) each sender's link-quality row is filled by
        one :meth:`~repro.radio.link.LinkBudget.quality_batch` call per
        position epoch.  ``False`` keeps the scalar per-pair evaluation as
        the reference implementation; both fill byte-identical rows, so the
        delivered-frame sequence is seed-stable across the flag (benchmark
        E13).
    cell_size:
        Cell size of the mirrored spatial grid; defaults to the effective
        radio range.
    """

    def __init__(
        self,
        sim: Simulator,
        link_budget: Optional[LinkBudget] = None,
        visibility: Optional[VisibilityMap] = None,
        contention_factor: float = 0.05,
        rng_stream: str = "radio",
        mobility: Optional[Any] = None,
        use_spatial_index: bool = True,
        use_batched_links: bool = True,
        cell_size: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.link_budget = link_budget or LinkBudget()
        self.visibility = visibility
        self.contention_factor = contention_factor
        self.rng_stream = rng_stream
        #: Probability that an otherwise-delivered frame is dropped on top of
        #: the per-link PER — the fault injector's message-loss bursts.  The
        #: extra RNG draw happens *only* while this is nonzero, so an idle
        #: (or absent) injector leaves the radio stream's draw sequence — and
        #: therefore the delivered-frame sequence — byte-identical (E14).
        self.extra_loss_probability = 0.0
        self._interfaces: Dict[str, RadioInterface] = {}
        self.max_range = self.link_budget.effective_range(None)
        self._query_radius = self.max_range + _RANGE_STEP_SLACK_M
        if use_spatial_index and self.link_budget.quality(
            Vec2(0.0, 0.0), Vec2(self._query_radius, 0.0), None
        ).usable:
            # The link is still usable just beyond the reported effective
            # range, i.e. ``effective_range`` hit its scan cap rather than
            # the real SNR boundary.  Range pruning would silently drop
            # reachable receivers, so fall back to the full scan.
            use_spatial_index = False
        self.use_spatial_index = use_spatial_index
        self.use_batched_links = use_batched_links
        #: Private mirror grid.  Substrate-bound environments use it only as
        #: an *overlay* for interfaces the substrate does not track; other
        #: regimes mirror every interface into it.
        self._grid: SpatialGrid = SpatialGrid(
            cell_size=cell_size if cell_size is not None else max(self._query_radius, 1.0)
        )
        self._position_epoch = 0
        self._synced_epoch = -1
        self._synced_time: Optional[float] = None
        self._mobility: Optional[Any] = None
        self._substrate: Optional[Any] = None
        self._synced_mobility_epoch = -1
        self._overlay_names: List[str] = []
        self._overlay_key: Optional[Tuple[int, int]] = None
        #: Full mirror resync passes performed (stays 0 when substrate-bound;
        #: asserted by benchmark E11).
        self.mirror_sync_passes = 0
        #: Per-sender link rows, valid for one position epoch: sender name →
        #: {receiver name → LinkQuality}.  Rows are filled in bulk (one
        #: ``quality_batch`` call for all receivers a sender needs this
        #: epoch) instead of one cache entry per ``(src, dst)`` probe.
        self._quality_rows: Dict[str, Dict[str, LinkQuality]] = {}
        self._in_range_cache: Dict[str, List[str]] = {}
        #: Broadcast receiver lists (name-sorted) plus their pruned-receiver
        #: count, memoised per sender per position epoch.
        self._receiver_cache: Dict[str, Tuple[List[str], int]] = {}
        # Hot-path counters, resolved once instead of per frame.
        monitor = sim.monitor
        self._frames_out_of_range = monitor.counter("radio.frames_out_of_range")
        self._frames_lost = monitor.counter("radio.frames_lost")
        self._frames_delivered = monitor.counter("radio.frames_delivered")
        self._bytes_delivered = monitor.counter("radio.bytes_delivered")
        self._link_delay = monitor.sample("radio.link_delay")
        self._kind_bytes: Dict[str, Counter] = {}
        self._deliver_names: Dict[str, str] = {}
        if mobility is not None:
            self.bind_mobility(mobility)

    # ----------------------------------------------------------- attachment

    def attach(
        self, node_name: str, position_provider: Callable[[], Vec2]
    ) -> RadioInterface:
        """Create and register an interface for ``node_name``."""
        if node_name in self._interfaces:
            raise ValueError(f"node {node_name!r} already has a radio interface")
        interface = RadioInterface(self, node_name, position_provider)
        self._interfaces[node_name] = interface
        self.notify_positions_changed()
        return interface

    def detach(self, node_name: str) -> None:
        """Remove a node's interface (e.g. the node left the area)."""
        if self._interfaces.pop(node_name, None) is not None:
            self._grid.remove(node_name)
            self.notify_positions_changed()

    def interface_of(self, node_name: str) -> RadioInterface:
        """Look up the interface attached to ``node_name``."""
        return self._interfaces[node_name]

    @property
    def node_names(self) -> List[str]:
        """All attached node names."""
        return list(self._interfaces)

    # ---------------------------------------------------------- invalidation

    def bind_mobility(self, mobility: Any) -> None:
        """Drive cache invalidation from a mobility manager's position epoch.

        ``mobility`` must expose a monotonic ``position_epoch`` attribute (as
        :class:`~repro.mobility.manager.MobilityManager` does, bumped on each
        tick and on membership changes).  Once bound, the environment trusts
        that positions only change when that epoch advances — which turns
        grid resyncs and cache flushes from per-event-time into
        per-mobility-tick work.

        When ``mobility`` additionally exposes a ``substrate``
        (:class:`~repro.geometry.substrate.SpatialSubstrate`), the
        environment drops its own mirror entirely and queries that substrate
        read-only — one position sync per tick then serves both the mobility
        and radio layers (see the class docstring's freshness contract).
        """
        self._mobility = mobility
        self._substrate = getattr(mobility, "substrate", None)
        self._synced_mobility_epoch = -1
        self._synced_epoch = -1
        self._overlay_key = None

    def notify_positions_changed(self) -> None:
        """Advance the position epoch (positions may have moved)."""
        self._position_epoch += 1

    @property
    def position_epoch(self) -> int:
        """Monotonic counter bumped whenever positions may have changed.

        Combines the environment's own epoch (attach/detach/manual
        notifications) with the bound mobility manager's, so consumers can
        key caches on this single value.
        """
        own = self._position_epoch
        if self._mobility is not None:
            own += self._mobility.position_epoch
        return own

    def spatial_stats(self) -> Dict[str, float]:
        """Counters describing how candidate lookup is being served.

        ``substrate_shared`` is 1.0 when broadcasts query the mobility
        manager's grid directly; ``mirror_updates`` counts writes into the
        environment's private grid (overlay-only when substrate-shared);
        ``mirror_sync_passes`` counts full mirror resyncs (0 when shared).
        """
        return {
            "substrate_shared": 1.0 if self._substrate is not None else 0.0,
            "overlay_nodes": float(len(self._overlay_names)),
            "mirror_updates": float(self._grid.update_calls),
            "mirror_sync_passes": float(self.mirror_sync_passes),
        }

    def _refresh(self) -> None:
        """Flush per-epoch caches (and any mirror/overlay state) when stale."""
        substrate = self._substrate
        if substrate is not None:
            epoch = self._position_epoch + substrate.position_epoch
            if epoch == self._synced_epoch:
                return
            self._sync_overlay()
            self._quality_rows.clear()
            self._in_range_cache.clear()
            self._receiver_cache.clear()
            self._synced_epoch = epoch
            return
        mobility = self._mobility
        if self._synced_epoch == self._position_epoch:
            if mobility is not None:
                if self._synced_mobility_epoch == mobility.position_epoch:
                    return
            elif self._synced_time == self.sim.now:
                return
        grid = self._grid
        for name, interface in self._interfaces.items():
            grid.update(name, interface.position)
        self.mirror_sync_passes += 1
        self._quality_rows.clear()
        self._in_range_cache.clear()
        self._receiver_cache.clear()
        self._synced_epoch = self._position_epoch
        self._synced_mobility_epoch = (
            mobility.position_epoch if mobility is not None else -1
        )
        self._synced_time = self.sim.now

    def _sync_overlay(self) -> None:
        """Keep the overlay grid tracking interfaces outside the substrate.

        Mobile interfaces live in the shared substrate and are never written
        here; the overlay holds only radio-attached nodes the mobility
        manager does not manage (roadside units, hand-moved test nodes).
        Its membership is recomputed only when the attachment set or the
        substrate's membership changed; its (typically zero or few)
        positions are re-read on every refresh.
        """
        substrate = self._substrate
        grid = self._grid
        key = (self._position_epoch, substrate.membership_epoch)
        if key != self._overlay_key:
            self._overlay_key = key
            overlay = [name for name in self._interfaces if name not in substrate]
            self._overlay_names = overlay
            wanted = set(overlay)
            stale = [name for name, _ in grid.items() if name not in wanted]
            for name in stale:
                grid.remove(name)
        for name in self._overlay_names:
            grid.update(name, self._interfaces[name].position)

    # ------------------------------------------------------------- queries

    def link_quality(self, src: str, dst: str) -> LinkQuality:
        """Current link quality between two attached nodes."""
        self._refresh()
        return self._ensure_row(src, (dst,))[dst]

    def _ensure_row(
        self, src: str, wanted: "Sequence[str]"
    ) -> Dict[str, LinkQuality]:
        """The sender's link row, guaranteed to cover ``wanted`` receivers.

        Rows live for one position epoch (:meth:`_refresh` flushes them).
        Missing entries are computed in one
        :meth:`~repro.radio.link.LinkBudget.quality_batch` call — or pair by
        pair on the scalar reference path (``use_batched_links=False``),
        which fills bit-identical values.  Names without an attached
        interface are skipped (callers guard their lookups the same way).
        """
        row = self._quality_rows.get(src)
        if row is None:
            row = {}
            self._quality_rows[src] = row
        interfaces = self._interfaces
        missing = [
            name for name in wanted if name not in row and name in interfaces
        ]
        if missing:
            tx = interfaces[src].position
            if self.use_batched_links:
                positions = [interfaces[name].position for name in missing]
                qualities = self.link_budget.quality_batch(
                    tx, positions, self.visibility
                )
                for name, quality in zip(missing, qualities):
                    row[name] = quality
            else:
                quality = self.link_budget.quality
                visibility = self.visibility
                for name in missing:
                    row[name] = quality(tx, interfaces[name].position, visibility)
        return row

    def _candidate_names(self, center: Vec2) -> List[str]:
        """Attached interface names within the spatial query radius.

        Callers must have called :meth:`_refresh` first.  Substrate-bound
        environments query the shared grid (dropping substrate entries with
        no radio interface, e.g. tracked pedestrians) plus the overlay;
        otherwise the private mirror is authoritative.
        """
        substrate = self._substrate
        if substrate is None:
            return self._grid.query_range(center, self._query_radius)
        names = [
            name
            for name in substrate.query_range(center, self._query_radius)
            if name in self._interfaces
        ]
        if self._overlay_names:
            names.extend(self._grid.query_range(center, self._query_radius))
        return names

    def nodes_in_range(self, node_name: str) -> List[str]:
        """Other nodes whose link from ``node_name`` is currently usable.

        Memoised per position epoch; the result is name-sorted.
        """
        self._refresh()
        cached = self._in_range_cache.get(node_name)
        if cached is None:
            if self.use_spatial_index:
                candidates = self._candidate_names(self._interfaces[node_name].position)
            else:
                candidates = list(self._interfaces)
            others = [other for other in candidates if other != node_name]
            row = self._ensure_row(node_name, others)
            cached = sorted(other for other in others if row[other].usable)
            self._in_range_cache[node_name] = cached
        return list(cached)

    # --------------------------------------------------------- transmission

    def _broadcast_receivers(self, sender_name: str, position: Vec2) -> List[str]:
        """Candidate receiver names for a broadcast, name-sorted.

        With the spatial index enabled, interfaces beyond the query radius
        are pruned wholesale and accounted to ``radio.frames_out_of_range``
        in one O(1) increment — the link budget is monotone in distance, so
        none of them could have been usable.  The list (and its pruned
        count) is memoised per sender per position epoch; the counter is
        still bumped once per broadcast.
        """
        cached = self._receiver_cache.get(sender_name)
        if cached is None:
            if self.use_spatial_index:
                receivers = sorted(
                    name
                    for name in self._candidate_names(position)
                    if name != sender_name
                )
                attached_others = len(self._interfaces) - (
                    1 if sender_name in self._interfaces else 0
                )
                pruned = attached_others - len(receivers)
            else:
                receivers = sorted(
                    name for name in self._interfaces if name != sender_name
                )
                pruned = 0
            cached = (receivers, pruned)
            self._receiver_cache[sender_name] = cached
        receivers, pruned = cached
        if pruned > 0:
            self._frames_out_of_range.add(pruned)
        return receivers

    def _kind_counter(self, kind: str) -> Counter:
        counter = self._kind_bytes.get(kind)
        if counter is None:
            counter = self.sim.monitor.counter(f"radio.bytes.{kind}")
            self._kind_bytes[kind] = counter
        return counter

    def transmit(self, sender: RadioInterface, frame: Frame) -> None:
        """Deliver ``frame`` to its destination(s) with latency and loss."""
        self._refresh()
        rng = self.sim.streams.get(self.rng_stream)
        sender_name = sender.node_name
        if frame.destination is not None:
            receiver_names = [frame.destination]
        else:
            receiver_names = self._broadcast_receivers(sender_name, sender.position)
        row = self._ensure_row(sender_name, receiver_names)
        concurrent = max(0, len(self.nodes_in_range(sender_name)) - 1)
        contention_scale = 1.0 / (1.0 + self.contention_factor * concurrent)
        deliver_name = self._deliver_names.get(frame.kind)
        if deliver_name is None:
            deliver_name = f"deliver-{frame.kind}"
            self._deliver_names[frame.kind] = deliver_name
        for receiver_name in receiver_names:
            receiver = self._interfaces.get(receiver_name)
            if receiver is None or receiver is sender:
                continue
            quality = row[receiver_name]
            if not quality.usable:
                self._frames_out_of_range.add()
                continue
            if rng.random() < quality.packet_error_rate:
                self._frames_lost.add()
                continue
            if (
                self.extra_loss_probability > 0.0
                and rng.random() < self.extra_loss_probability
            ):
                self._frames_lost.add()
                continue
            rate = quality.rate_bps * contention_scale
            serialization = self.link_budget.transfer_time(frame.size_bytes * 8, rate)
            propagation = quality.distance / 3e8
            delay = serialization + propagation
            self._frames_delivered.add()
            self._bytes_delivered.add(frame.size_bytes)
            self._kind_counter(frame.kind).add(frame.size_bytes)
            self._link_delay.add(delay)
            self.sim.schedule(
                delay,
                _FrameDelivery(receiver, frame, quality),
                name=deliver_name,
            )

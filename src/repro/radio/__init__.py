"""Wireless substrate: propagation, V2V sidelink and cellular links.

The AirDnD orchestrator's central premise is that *in-range* direct
vehicle-to-vehicle (V2V) communication is cheaper and faster than hauling
data through the cellular network to a distant server.  This package models
both paths:

* :mod:`repro.radio.propagation` — distance- and occlusion-dependent path
  loss (log-distance model with an extra non-line-of-sight penalty).
* :mod:`repro.radio.link` — link budgets: received power, SNR, Shannon-style
  achievable rate, packet error rate and effective communication range.
* :mod:`repro.radio.interfaces` — :class:`RadioInterface` objects attached to
  nodes, and the shared :class:`RadioEnvironment` that delivers frames
  between interfaces with per-link latency and loss.
* :mod:`repro.radio.cellular` — the cellular (Uu) uplink/downlink to a cloud
  endpoint, used by the centralised baselines and for comparison in E4.
"""

from repro.radio.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PropagationModel,
)
from repro.radio.link import LinkBudget, LinkQuality
from repro.radio.interfaces import Frame, RadioEnvironment, RadioInterface
from repro.radio.cellular import CellularNetwork, CloudEndpoint

__all__ = [
    "PropagationModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "LinkBudget",
    "LinkQuality",
    "Frame",
    "RadioInterface",
    "RadioEnvironment",
    "CellularNetwork",
    "CloudEndpoint",
]

"""Path-loss models.

Two standard models are provided.  Both return path loss in dB for a given
transmitter/receiver distance; the log-distance model additionally applies a
fixed non-line-of-sight (NLOS) penalty when a building blocks the direct
path, which is what makes the "looking around the corner" geometry matter for
communication as well as for perception.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

from repro.geometry.los import VisibilityMap
from repro.geometry.vector import Vec2

SPEED_OF_LIGHT = 299_792_458.0


class PropagationModel(Protocol):
    """Interface of every path-loss model."""

    def path_loss_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """Path loss in dB between transmitter and receiver positions."""
        ...


class FreeSpacePathLoss:
    """Friis free-space path loss.

    ``PL(d) = 20 log10(d) + 20 log10(f) + 20 log10(4π/c)``
    """

    def __init__(self, frequency_hz: float = 5.9e9) -> None:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.frequency_hz = frequency_hz

    def path_loss_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """Free-space loss; ignores obstacles entirely."""
        distance = max(1.0, tx.distance_to(rx))
        return (
            20.0 * math.log10(distance)
            + 20.0 * math.log10(self.frequency_hz)
            + 20.0 * math.log10(4.0 * math.pi / SPEED_OF_LIGHT)
        )


class LogDistancePathLoss:
    """Log-distance path loss with an NLOS obstruction penalty.

    ``PL(d) = PL(d0) + 10·n·log10(d/d0) [+ nlos_penalty_db if occluded]``

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n`` (2 = free space, 2.7–3.5 urban).
    reference_distance:
        ``d0`` in metres.
    frequency_hz:
        Carrier frequency, used for the reference loss at ``d0``.
    nlos_penalty_db:
        Extra attenuation applied when the direct path is occluded by a
        building footprint (typical corner-diffraction losses are 10–25 dB).
    """

    def __init__(
        self,
        exponent: float = 2.75,
        reference_distance: float = 1.0,
        frequency_hz: float = 5.9e9,
        nlos_penalty_db: float = 15.0,
    ) -> None:
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if reference_distance <= 0:
            raise ValueError("reference distance must be positive")
        self.exponent = exponent
        self.reference_distance = reference_distance
        self.nlos_penalty_db = nlos_penalty_db
        self._reference_loss = FreeSpacePathLoss(frequency_hz).path_loss_db(
            Vec2(0.0, 0.0), Vec2(reference_distance, 0.0)
        )

    def path_loss_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """Log-distance loss plus the NLOS penalty when occluded."""
        distance = max(self.reference_distance, tx.distance_to(rx))
        loss = self._reference_loss + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance
        )
        if visibility is not None and visibility.is_occluded(tx, rx):
            loss += self.nlos_penalty_db
        return loss

"""Path-loss models.

Two standard models are provided.  Both return path loss in dB for a given
transmitter/receiver distance; the log-distance model additionally applies a
fixed non-line-of-sight (NLOS) penalty when a building blocks the direct
path, which is what makes the "looking around the corner" geometry matter for
communication as well as for perception.

Each model also answers the batched form used by the per-sender link
pipeline: one call for all receivers of one sender, with the constants
hoisted and a single line-of-sight batch query.  The batched results are
**bit-identical** to the scalar ones: all transcendental evaluations go
through the same :mod:`math` C-library entry points as the scalar path
(numpy's SIMD ``log10``/``exp`` kernels round differently in the last ulp,
which would break the byte-identical reference-flag contract), while the
surrounding additions and multiplications — exact IEEE operations — are
applied in the same association order.

The *statistical* equivalence tier (``fast_math=True`` on
:class:`~repro.radio.link.LinkBudget`, see ``docs/PERFORMANCE.md``) drops
the byte-identity requirement and uses the ``path_loss_db_simd`` variants
below: full numpy SIMD ``log10`` over a distance *array*, differing from the
exact kernels only in the last ulp.  Distribution-level agreement between
the two tiers is what the statistical-equivalence harness
(``tests/properties/test_property_statistical_equivalence.py`` and
benchmark E15) asserts.
"""

from __future__ import annotations

import math
from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.geometry.los import VisibilityMap
from repro.geometry.vector import Vec2

SPEED_OF_LIGHT = 299_792_458.0


class PropagationModel(Protocol):
    """Interface of every path-loss model.

    ``path_loss_db`` is the only required method.  A model may additionally
    offer ``path_loss_db_batch(tx, rxs, distances, visibility)`` — per-
    receiver losses bit-identical to the scalar method applied pairwise,
    with ``distances[i] == tx.distance_to(rxs[i])`` — which the batched link
    pipeline discovers by duck typing and falls back from gracefully (see
    :meth:`~repro.radio.link.LinkBudget.quality_batch`).  A model serving
    the statistical tier may further offer
    ``path_loss_db_simd(tx, rxs, distances, visibility)`` taking an
    ``ndarray`` of distances and returning an ``ndarray`` of losses via full
    numpy SIMD kernels; the fused fast kernel duck-types it the same way and
    falls back to ``path_loss_db_batch`` (then pairwise) when absent.
    Neither is part of this Protocol so that pre-existing single-method
    models keep type-checking.
    """

    def path_loss_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """Path loss in dB between transmitter and receiver positions."""
        ...


class FreeSpacePathLoss:
    """Friis free-space path loss.

    ``PL(d) = 20 log10(d) + 20 log10(f) + 20 log10(4π/c)``
    """

    def __init__(self, frequency_hz: float = 5.9e9) -> None:
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        self.frequency_hz = frequency_hz

    def path_loss_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """Free-space loss; ignores obstacles entirely."""
        distance = max(1.0, tx.distance_to(rx))
        return (
            20.0 * math.log10(distance)
            + 20.0 * math.log10(self.frequency_hz)
            + 20.0 * math.log10(4.0 * math.pi / SPEED_OF_LIGHT)
        )

    def path_loss_db_batch(
        self,
        tx: Vec2,
        rxs: Sequence[Vec2],
        distances: Sequence[float],
        visibility: Optional[VisibilityMap] = None,
    ) -> np.ndarray:
        """Vectorised free-space losses (obstacles ignored, as in the scalar
        path).  The two frequency-dependent terms are evaluated once and
        added in the scalar path's association order."""
        log10 = math.log10
        frequency_term = 20.0 * log10(self.frequency_hz)
        geometry_term = 20.0 * log10(4.0 * math.pi / SPEED_OF_LIGHT)
        log_terms = np.fromiter(
            (20.0 * log10(d if d > 1.0 else 1.0) for d in distances),
            np.float64,
            len(distances),
        )
        return (log_terms + frequency_term) + geometry_term

    def path_loss_db_simd(
        self,
        tx: Vec2,
        rxs: Sequence[Vec2],
        distances: np.ndarray,
        visibility: Optional[VisibilityMap] = None,
    ) -> np.ndarray:
        """Statistical-tier losses: one numpy SIMD ``log10`` over the array.

        ``distances`` is already an ``ndarray`` (the fused fast kernel
        computes it with ``np.hypot``).  Equal to
        :meth:`path_loss_db_batch` up to the last ulp of the transcendental.
        """
        clamped = np.maximum(distances, 1.0)
        constant = 20.0 * math.log10(self.frequency_hz) + 20.0 * math.log10(
            4.0 * math.pi / SPEED_OF_LIGHT
        )
        return 20.0 * np.log10(clamped) + constant


class LogDistancePathLoss:
    """Log-distance path loss with an NLOS obstruction penalty.

    ``PL(d) = PL(d0) + 10·n·log10(d/d0) [+ nlos_penalty_db if occluded]``

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n`` (2 = free space, 2.7–3.5 urban).
    reference_distance:
        ``d0`` in metres.
    frequency_hz:
        Carrier frequency, used for the reference loss at ``d0``.
    nlos_penalty_db:
        Extra attenuation applied when the direct path is occluded by a
        building footprint (typical corner-diffraction losses are 10–25 dB).
    """

    def __init__(
        self,
        exponent: float = 2.75,
        reference_distance: float = 1.0,
        frequency_hz: float = 5.9e9,
        nlos_penalty_db: float = 15.0,
    ) -> None:
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if reference_distance <= 0:
            raise ValueError("reference distance must be positive")
        self.exponent = exponent
        self.reference_distance = reference_distance
        self.nlos_penalty_db = nlos_penalty_db
        self._reference_loss = FreeSpacePathLoss(frequency_hz).path_loss_db(
            Vec2(0.0, 0.0), Vec2(reference_distance, 0.0)
        )

    def path_loss_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """Log-distance loss plus the NLOS penalty when occluded."""
        distance = max(self.reference_distance, tx.distance_to(rx))
        loss = self._reference_loss + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance
        )
        if visibility is not None and visibility.is_occluded(tx, rx):
            loss += self.nlos_penalty_db
        return loss

    def path_loss_db_batch(
        self,
        tx: Vec2,
        rxs: Sequence[Vec2],
        distances: Sequence[float],
        visibility: Optional[VisibilityMap] = None,
    ) -> np.ndarray:
        """Vectorised log-distance losses with one LOS batch call.

        The reference loss and the ``10·n`` scale are hoisted; occlusion for
        every receiver is resolved by a single
        :meth:`~repro.geometry.los.VisibilityMap.line_of_sight_batch` query
        instead of one obstacle scan per pair.
        """
        d0 = self.reference_distance
        scale = 10.0 * self.exponent
        log10 = math.log10
        log_terms = np.fromiter(
            (log10((d if d > d0 else d0) / d0) for d in distances),
            np.float64,
            len(distances),
        )
        losses = self._reference_loss + scale * log_terms
        if visibility is not None:
            occluded = ~np.fromiter(
                visibility.line_of_sight_batch(tx, rxs), np.bool_, len(rxs)
            )
            if occluded.any():
                losses[occluded] += self.nlos_penalty_db
        return losses

    def path_loss_db_simd(
        self,
        tx: Vec2,
        rxs: Sequence[Vec2],
        distances: np.ndarray,
        visibility: Optional[VisibilityMap] = None,
    ) -> np.ndarray:
        """Statistical-tier losses: numpy SIMD ``log10``, vectorised NLOS add.

        The line-of-sight query itself is geometry, not floating-point
        rounding — it runs through the same (obstacle-indexed) batch call as
        the exact kernel, so the two tiers shadow exactly the same links.
        """
        d0 = self.reference_distance
        clamped = np.maximum(distances, d0)
        losses = self._reference_loss + (10.0 * self.exponent) * np.log10(
            clamped / d0
        )
        if visibility is not None:
            occluded = ~np.fromiter(
                visibility.line_of_sight_batch(tx, rxs), np.bool_, len(rxs)
            )
            if occluded.any():
                losses[occluded] += self.nlos_penalty_db
        return losses

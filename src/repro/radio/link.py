"""Link budgets: from path loss to achievable data rate and loss probability.

The :class:`LinkBudget` converts transmit power and path loss into SNR, an
achievable rate (a capped fraction of Shannon capacity), a packet error rate
and an effective range — all the quantities the mesh transport and the AirDnD
candidate scorer consume.

Two evaluation forms exist: the scalar :meth:`LinkBudget.quality` (one pair)
and the batched :meth:`LinkBudget.quality_batch` (one sender, all its
receivers in one pass — the radio environment's per-sender link rows are
filled this way).  The batch is **bit-identical** to the scalar path by
construction: numpy carries the exact IEEE arithmetic (subtraction, scaling,
thresholding) in the scalar association order, while the transcendentals
(``hypot``/``log10``/``log2``/``pow``/``exp``) run through the same
:mod:`math` C-library entry points — numpy's SIMD kernels for those round
differently in the last ulp, which would silently break the byte-identical
``use_batched_links=False`` reference contract asserted by benchmark E13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.los import VisibilityMap
from repro.geometry.vector import Vec2
from repro.radio.propagation import LogDistancePathLoss, PropagationModel

BOLTZMANN = 1.380649e-23


@dataclass(frozen=True, slots=True)
class LinkQuality:
    """Snapshot of one directed link's quality.

    Attributes
    ----------
    snr_db:
        Signal-to-noise ratio in dB.
    rate_bps:
        Achievable data rate in bits per second (0 when unusable).
    packet_error_rate:
        Probability a transmitted frame is lost.
    usable:
        Whether the link clears the minimum SNR threshold.
    distance:
        Transmitter–receiver distance in metres.
    """

    snr_db: float
    rate_bps: float
    packet_error_rate: float
    usable: bool
    distance: float


class LinkBudget:
    """Computes :class:`LinkQuality` between two positions.

    Parameters
    ----------
    propagation:
        Path-loss model (defaults to urban log-distance with NLOS penalty).
    tx_power_dbm:
        Transmit power (23 dBm is typical for V2X sidelink).
    bandwidth_hz:
        Channel bandwidth (10 MHz ITS channel by default).
    noise_figure_db:
        Receiver noise figure.
    min_snr_db:
        Below this SNR the link is unusable.
    max_rate_bps:
        Hardware cap on the achievable rate.
    efficiency:
        Fraction of Shannon capacity actually achieved.
    """

    def __init__(
        self,
        propagation: Optional[PropagationModel] = None,
        tx_power_dbm: float = 23.0,
        bandwidth_hz: float = 10e6,
        noise_figure_db: float = 9.0,
        min_snr_db: float = 3.0,
        max_rate_bps: float = 27e6,
        efficiency: float = 0.6,
        temperature_k: float = 290.0,
    ) -> None:
        self.propagation = propagation or LogDistancePathLoss()
        self.tx_power_dbm = tx_power_dbm
        self.bandwidth_hz = bandwidth_hz
        self.noise_figure_db = noise_figure_db
        self.min_snr_db = min_snr_db
        self.max_rate_bps = max_rate_bps
        self.efficiency = efficiency
        noise_w = BOLTZMANN * temperature_k * bandwidth_hz
        self.noise_dbm = 10.0 * math.log10(noise_w * 1e3) + noise_figure_db
        #: Transient extra noise figure (dB) on top of ``noise_dbm``; the
        #: fault injector raises it during radio-degradation bursts and
        #: restores it to exactly 0.0 afterwards.  At 0.0 the SNR arithmetic
        #: is bit-identical to a budget without the knob (``x + 0.0 == x``
        #: for every finite noise floor), so the injector-free reference
        #: contract of benchmarks E13/E14 is preserved.
        self.noise_penalty_db = 0.0

    # -------------------------------------------------------------- quality

    def snr_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """SNR of the link between two positions."""
        loss = self.propagation.path_loss_db(tx, rx, visibility)
        rx_power_dbm = self.tx_power_dbm - loss
        return rx_power_dbm - (self.noise_dbm + self.noise_penalty_db)

    def quality(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> LinkQuality:
        """Full :class:`LinkQuality` between two positions."""
        snr = self.snr_db(tx, rx, visibility)
        distance = tx.distance_to(rx)
        if snr < self.min_snr_db:
            return LinkQuality(snr, 0.0, 1.0, False, distance)
        capacity = self.bandwidth_hz * math.log2(1.0 + 10.0 ** (snr / 10.0))
        rate = min(self.max_rate_bps, self.efficiency * capacity)
        per = self.packet_error_rate(snr)
        return LinkQuality(snr, rate, per, True, distance)

    def packet_error_rate(self, snr_db: float) -> float:
        """Smooth SNR→PER curve: ~0.5 at threshold, →0 with 10+ dB margin."""
        margin = snr_db - self.min_snr_db
        return 1.0 / (1.0 + math.exp(0.9 * margin))

    def quality_batch(
        self,
        tx: Vec2,
        rxs: Sequence[Vec2],
        visibility: Optional[VisibilityMap] = None,
    ) -> List[LinkQuality]:
        """:class:`LinkQuality` from one sender to every receiver in ``rxs``.

        One vectorised pass: distances, path losses (with a single
        line-of-sight batch query), SNRs, rates and PERs are computed for
        the whole receiver list with all constants hoisted, instead of
        re-resolving them per pair.  Element ``i`` is bit-identical to
        ``quality(tx, rxs[i], visibility)`` (see the module docstring for
        why the transcendentals stay on the scalar :mod:`math` entry
        points).
        """
        count = len(rxs)
        if count == 0:
            return []
        tx_x = tx.x
        tx_y = tx.y
        hypot = math.hypot
        distances = [hypot(tx_x - rx.x, tx_y - rx.y) for rx in rxs]
        loss_batch = getattr(self.propagation, "path_loss_db_batch", None)
        if loss_batch is not None:
            losses = loss_batch(tx, rxs, distances, visibility)
        else:
            # External propagation models written against the pre-batch
            # Protocol (only ``path_loss_db``) still work — pairwise here,
            # so the result is identical by definition.
            loss = self.propagation.path_loss_db
            losses = np.fromiter(
                (loss(tx, rx, visibility) for rx in rxs), np.float64, count
            )
        snrs = (self.tx_power_dbm - losses) - (self.noise_dbm + self.noise_penalty_db)
        # Mirror the scalar branch condition exactly (`snr < min` selects the
        # unusable arm), not its negation, so NaN SNRs land on the same side.
        unusable = snrs < self.min_snr_db
        rates = np.zeros(count)
        pers = np.ones(count)
        snr_values = snrs.tolist()
        if not unusable.all():
            bandwidth = self.bandwidth_hz
            max_rate = self.max_rate_bps
            efficiency = self.efficiency
            min_snr = self.min_snr_db
            log2 = math.log2
            exp = math.exp
            for index in np.nonzero(~unusable)[0].tolist():
                snr = snr_values[index]
                capacity = bandwidth * log2(1.0 + 10.0 ** (snr / 10.0))
                rate = efficiency * capacity
                rates[index] = rate if rate < max_rate else max_rate
                pers[index] = 1.0 / (1.0 + exp(0.9 * (snr - min_snr)))
        rate_values = rates.tolist()
        per_values = pers.tolist()
        usable_values = (~unusable).tolist()
        return [
            LinkQuality(
                snr_values[index],
                rate_values[index],
                per_values[index],
                usable_values[index],
                distances[index],
            )
            for index in range(count)
        ]

    # ---------------------------------------------------------------- range

    def effective_range(
        self, visibility: Optional[VisibilityMap] = None, step: float = 5.0
    ) -> float:
        """Largest distance at which a line-of-sight link is still usable.

        Computed by stepping outward until the SNR drops below threshold; the
        mesh discovery layer uses this to size its spatial-index queries.
        """
        origin = Vec2(0.0, 0.0)
        distance = step
        last_usable = 0.0
        while distance < 10_000.0:
            snr = self.snr_db(origin, Vec2(distance, 0.0), None)
            if snr < self.min_snr_db:
                break
            last_usable = distance
            distance += step
        return last_usable

    def transfer_time(self, size_bits: float, rate_bps: float) -> float:
        """Seconds needed to move ``size_bits`` at ``rate_bps``."""
        if rate_bps <= 0:
            return math.inf
        return size_bits / rate_bps

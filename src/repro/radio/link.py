"""Link budgets: from path loss to achievable data rate and loss probability.

The :class:`LinkBudget` converts transmit power and path loss into SNR, an
achievable rate (a capped fraction of Shannon capacity), a packet error rate
and an effective range — all the quantities the mesh transport and the AirDnD
candidate scorer consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.geometry.los import VisibilityMap
from repro.geometry.vector import Vec2
from repro.radio.propagation import LogDistancePathLoss, PropagationModel

BOLTZMANN = 1.380649e-23


@dataclass(frozen=True)
class LinkQuality:
    """Snapshot of one directed link's quality.

    Attributes
    ----------
    snr_db:
        Signal-to-noise ratio in dB.
    rate_bps:
        Achievable data rate in bits per second (0 when unusable).
    packet_error_rate:
        Probability a transmitted frame is lost.
    usable:
        Whether the link clears the minimum SNR threshold.
    distance:
        Transmitter–receiver distance in metres.
    """

    snr_db: float
    rate_bps: float
    packet_error_rate: float
    usable: bool
    distance: float


class LinkBudget:
    """Computes :class:`LinkQuality` between two positions.

    Parameters
    ----------
    propagation:
        Path-loss model (defaults to urban log-distance with NLOS penalty).
    tx_power_dbm:
        Transmit power (23 dBm is typical for V2X sidelink).
    bandwidth_hz:
        Channel bandwidth (10 MHz ITS channel by default).
    noise_figure_db:
        Receiver noise figure.
    min_snr_db:
        Below this SNR the link is unusable.
    max_rate_bps:
        Hardware cap on the achievable rate.
    efficiency:
        Fraction of Shannon capacity actually achieved.
    """

    def __init__(
        self,
        propagation: Optional[PropagationModel] = None,
        tx_power_dbm: float = 23.0,
        bandwidth_hz: float = 10e6,
        noise_figure_db: float = 9.0,
        min_snr_db: float = 3.0,
        max_rate_bps: float = 27e6,
        efficiency: float = 0.6,
        temperature_k: float = 290.0,
    ) -> None:
        self.propagation = propagation or LogDistancePathLoss()
        self.tx_power_dbm = tx_power_dbm
        self.bandwidth_hz = bandwidth_hz
        self.noise_figure_db = noise_figure_db
        self.min_snr_db = min_snr_db
        self.max_rate_bps = max_rate_bps
        self.efficiency = efficiency
        noise_w = BOLTZMANN * temperature_k * bandwidth_hz
        self.noise_dbm = 10.0 * math.log10(noise_w * 1e3) + noise_figure_db

    # -------------------------------------------------------------- quality

    def snr_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """SNR of the link between two positions."""
        loss = self.propagation.path_loss_db(tx, rx, visibility)
        rx_power_dbm = self.tx_power_dbm - loss
        return rx_power_dbm - self.noise_dbm

    def quality(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> LinkQuality:
        """Full :class:`LinkQuality` between two positions."""
        snr = self.snr_db(tx, rx, visibility)
        distance = tx.distance_to(rx)
        if snr < self.min_snr_db:
            return LinkQuality(snr, 0.0, 1.0, False, distance)
        capacity = self.bandwidth_hz * math.log2(1.0 + 10.0 ** (snr / 10.0))
        rate = min(self.max_rate_bps, self.efficiency * capacity)
        per = self.packet_error_rate(snr)
        return LinkQuality(snr, rate, per, True, distance)

    def packet_error_rate(self, snr_db: float) -> float:
        """Smooth SNR→PER curve: ~0.5 at threshold, →0 with 10+ dB margin."""
        margin = snr_db - self.min_snr_db
        return 1.0 / (1.0 + math.exp(0.9 * margin))

    # ---------------------------------------------------------------- range

    def effective_range(
        self, visibility: Optional[VisibilityMap] = None, step: float = 5.0
    ) -> float:
        """Largest distance at which a line-of-sight link is still usable.

        Computed by stepping outward until the SNR drops below threshold; the
        mesh discovery layer uses this to size its spatial-index queries.
        """
        origin = Vec2(0.0, 0.0)
        distance = step
        last_usable = 0.0
        while distance < 10_000.0:
            snr = self.snr_db(origin, Vec2(distance, 0.0), None)
            if snr < self.min_snr_db:
                break
            last_usable = distance
            distance += step
        return last_usable

    def transfer_time(self, size_bits: float, rate_bps: float) -> float:
        """Seconds needed to move ``size_bits`` at ``rate_bps``."""
        if rate_bps <= 0:
            return math.inf
        return size_bits / rate_bps

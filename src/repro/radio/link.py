"""Link budgets: from path loss to achievable data rate and loss probability.

The :class:`LinkBudget` converts transmit power and path loss into SNR, an
achievable rate (a capped fraction of Shannon capacity), a packet error rate
and an effective range — all the quantities the mesh transport and the AirDnD
candidate scorer consume.

Two evaluation forms exist: the scalar :meth:`LinkBudget.quality` (one pair)
and the batched :meth:`LinkBudget.quality_batch` (one sender, all its
receivers in one pass — the radio environment's per-sender link rows are
filled this way).  On the default **exact** equivalence tier the batch is
**bit-identical** to the scalar path by construction: numpy carries the
exact IEEE arithmetic (subtraction, scaling, thresholding) in the scalar
association order, while the transcendentals
(``hypot``/``log10``/``log2``/``pow``/``exp``) run through the same
:mod:`math` C-library entry points — numpy's SIMD kernels for those round
differently in the last ulp, which would silently break the byte-identical
``use_batched_links=False`` reference contract asserted by benchmark E13.

``fast_math=True`` selects the **statistical** equivalence tier instead: a
fused path-loss→SNR→rate→PER kernel computes the whole receiver row with
numpy SIMD ``hypot``/``log10``/``log2``/``exp`` and no Python-level loop.
Its outputs differ from the exact tier in the last ulp, which is enough to
flip individual RNG loss comparisons — so the statistical tier promises
*distribution-level* agreement of per-run aggregate metrics (asserted over
a seed ensemble by ``tests/properties/test_property_statistical_equivalence
.py`` and benchmark E15), not byte-level frame identity.  The tier table
lives in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.los import VisibilityMap
from repro.geometry.vector import Vec2
from repro.radio.propagation import LogDistancePathLoss, PropagationModel

BOLTZMANN = 1.380649e-23


@dataclass(frozen=True, slots=True)
class LinkQuality:
    """Snapshot of one directed link's quality.

    Attributes
    ----------
    snr_db:
        Signal-to-noise ratio in dB.
    rate_bps:
        Achievable data rate in bits per second (0 when unusable).
    packet_error_rate:
        Probability a transmitted frame is lost.
    usable:
        Whether the link clears the minimum SNR threshold.
    distance:
        Transmitter–receiver distance in metres.
    """

    snr_db: float
    rate_bps: float
    packet_error_rate: float
    usable: bool
    distance: float


class LinkBudget:
    """Computes :class:`LinkQuality` between two positions.

    Parameters
    ----------
    propagation:
        Path-loss model (defaults to urban log-distance with NLOS penalty).
    tx_power_dbm:
        Transmit power (23 dBm is typical for V2X sidelink).
    bandwidth_hz:
        Channel bandwidth (10 MHz ITS channel by default).
    noise_figure_db:
        Receiver noise figure.
    min_snr_db:
        Below this SNR the link is unusable.
    max_rate_bps:
        Hardware cap on the achievable rate.
    efficiency:
        Fraction of Shannon capacity actually achieved.
    fast_math:
        Equivalence tier of the batch kernel.  ``False`` (default) is the
        *exact* tier: :meth:`quality_batch` is bit-identical to the scalar
        path.  ``True`` is the *statistical* tier: the fused numpy SIMD
        kernel, last-ulp different, distribution-level equivalent (see the
        module docstring).
    """

    def __init__(
        self,
        propagation: Optional[PropagationModel] = None,
        tx_power_dbm: float = 23.0,
        bandwidth_hz: float = 10e6,
        noise_figure_db: float = 9.0,
        min_snr_db: float = 3.0,
        max_rate_bps: float = 27e6,
        efficiency: float = 0.6,
        temperature_k: float = 290.0,
        fast_math: bool = False,
    ) -> None:
        if not isinstance(fast_math, bool):
            raise ValueError(
                "fast_math selects the equivalence tier and must be a bool "
                f"(False=exact, True=statistical), got {fast_math!r}"
            )
        self.propagation = propagation or LogDistancePathLoss()
        self.fast_math = fast_math
        self.tx_power_dbm = tx_power_dbm
        self.bandwidth_hz = bandwidth_hz
        self.noise_figure_db = noise_figure_db
        self.min_snr_db = min_snr_db
        self.max_rate_bps = max_rate_bps
        self.efficiency = efficiency
        noise_w = BOLTZMANN * temperature_k * bandwidth_hz
        self.noise_dbm = 10.0 * math.log10(noise_w * 1e3) + noise_figure_db
        #: Transient extra noise figure (dB) on top of ``noise_dbm``; the
        #: fault injector raises it during radio-degradation bursts and
        #: restores it to exactly 0.0 afterwards.  At 0.0 the SNR arithmetic
        #: is bit-identical to a budget without the knob (``x + 0.0 == x``
        #: for every finite noise floor), so the injector-free reference
        #: contract of benchmarks E13/E14 is preserved.
        self.noise_penalty_db = 0.0

    # -------------------------------------------------------------- quality

    def snr_db(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> float:
        """SNR of the link between two positions."""
        loss = self.propagation.path_loss_db(tx, rx, visibility)
        rx_power_dbm = self.tx_power_dbm - loss
        return rx_power_dbm - (self.noise_dbm + self.noise_penalty_db)

    def quality(
        self, tx: Vec2, rx: Vec2, visibility: Optional[VisibilityMap] = None
    ) -> LinkQuality:
        """Full :class:`LinkQuality` between two positions.

        On the statistical tier this routes through the fused batch kernel
        (as a one-element batch) so scalar probes and bulk row fills always
        agree with each other within one tier.
        """
        if self.fast_math:
            return self._quality_batch_fast(tx, (rx,), visibility)[0]
        snr = self.snr_db(tx, rx, visibility)
        distance = tx.distance_to(rx)
        if snr < self.min_snr_db:
            return LinkQuality(snr, 0.0, 1.0, False, distance)
        capacity = self.bandwidth_hz * math.log2(1.0 + 10.0 ** (snr / 10.0))
        rate = min(self.max_rate_bps, self.efficiency * capacity)
        per = self.packet_error_rate(snr)
        return LinkQuality(snr, rate, per, True, distance)

    def packet_error_rate(self, snr_db: float) -> float:
        """Smooth SNR→PER curve: ~0.5 at threshold, →0 with 10+ dB margin."""
        margin = snr_db - self.min_snr_db
        return 1.0 / (1.0 + math.exp(0.9 * margin))

    def quality_batch(
        self,
        tx: Vec2,
        rxs: Sequence[Vec2],
        visibility: Optional[VisibilityMap] = None,
    ) -> List[LinkQuality]:
        """:class:`LinkQuality` from one sender to every receiver in ``rxs``.

        One vectorised pass: distances, path losses (with a single
        line-of-sight batch query), SNRs, rates and PERs are computed for
        the whole receiver list with all constants hoisted, instead of
        re-resolving them per pair.  Element ``i`` is bit-identical to
        ``quality(tx, rxs[i], visibility)`` (see the module docstring for
        why the transcendentals stay on the scalar :mod:`math` entry
        points).
        """
        count = len(rxs)
        if count == 0:
            return []
        if self.fast_math:
            return self._quality_batch_fast(tx, rxs, visibility)
        tx_x = tx.x
        tx_y = tx.y
        hypot = math.hypot
        distances = [hypot(tx_x - rx.x, tx_y - rx.y) for rx in rxs]
        loss_batch = getattr(self.propagation, "path_loss_db_batch", None)
        if loss_batch is not None:
            losses = loss_batch(tx, rxs, distances, visibility)
        else:
            # External propagation models written against the pre-batch
            # Protocol (only ``path_loss_db``) still work — pairwise here,
            # so the result is identical by definition.
            loss = self.propagation.path_loss_db
            losses = np.fromiter(
                (loss(tx, rx, visibility) for rx in rxs), np.float64, count
            )
        snrs = (self.tx_power_dbm - losses) - (self.noise_dbm + self.noise_penalty_db)
        # Mirror the scalar branch condition exactly (`snr < min` selects the
        # unusable arm), not its negation, so NaN SNRs land on the same side.
        unusable = snrs < self.min_snr_db
        rates = np.zeros(count)
        pers = np.ones(count)
        snr_values = snrs.tolist()
        if not unusable.all():
            bandwidth = self.bandwidth_hz
            max_rate = self.max_rate_bps
            efficiency = self.efficiency
            min_snr = self.min_snr_db
            log2 = math.log2
            exp = math.exp
            for index in np.nonzero(~unusable)[0].tolist():
                snr = snr_values[index]
                capacity = bandwidth * log2(1.0 + 10.0 ** (snr / 10.0))
                rate = efficiency * capacity
                rates[index] = rate if rate < max_rate else max_rate
                pers[index] = 1.0 / (1.0 + exp(0.9 * (snr - min_snr)))
        rate_values = rates.tolist()
        per_values = pers.tolist()
        usable_values = (~unusable).tolist()
        return [
            LinkQuality(
                snr_values[index],
                rate_values[index],
                per_values[index],
                usable_values[index],
                distances[index],
            )
            for index in range(count)
        ]

    def quality_arrays(
        self,
        tx: Vec2,
        rxs: Sequence[Vec2],
        visibility: Optional[VisibilityMap] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The fused statistical-tier kernel: one numpy pass, no inner loop.

        Distance (``np.hypot``), path loss (the propagation model's
        ``path_loss_db_simd`` when it has one), SNR, Shannon rate
        (``np.log2``), the rate cap and the logistic PER (``np.exp``) are
        all computed on whole arrays.  Returns the raw columns
        ``(snrs, rates, pers, usable, distances)`` so bulk consumers — the
        radio medium's statistical-tier broadcast plan — can keep working in
        array form; :meth:`quality_batch` materialises them into
        :class:`LinkQuality` objects for everyone else.
        """
        count = len(rxs)
        xs = np.fromiter((rx.x for rx in rxs), np.float64, count)
        ys = np.fromiter((rx.y for rx in rxs), np.float64, count)
        return self.quality_arrays_xy(tx, xs, ys, visibility, rxs=rxs)

    def quality_arrays_xy(
        self,
        tx: Vec2,
        xs: np.ndarray,
        ys: np.ndarray,
        visibility: Optional[VisibilityMap] = None,
        *,
        rxs: Optional[Sequence[Vec2]] = None,
        distances: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`quality_arrays` on pre-assembled coordinate columns.

        Bulk callers that already hold receiver coordinates in array form
        (the radio medium keeps one position universe per epoch) skip the
        per-receiver gather entirely.  ``rxs`` only matters on the NLOS
        path: a SIMD propagation model needs the receiver :class:`Vec2`
        objects for its line-of-sight batch, so it is required whenever
        ``visibility`` is given and built lazily otherwise.  ``distances``
        may carry precomputed sender→receiver distances (skipping the
        ``np.hypot``); it must correspond to ``xs``/``ys``.
        """
        count = len(xs)
        if distances is None:
            distances = np.hypot(xs - tx.x, ys - tx.y)
        propagation = self.propagation
        loss_simd = getattr(propagation, "path_loss_db_simd", None)
        if loss_simd is not None:
            if rxs is None and visibility is not None:
                # SIMD models consult positions only for the LOS batch, so
                # the Vec2 view is rebuilt just-in-time on the NLOS path.
                rxs = [Vec2(x, y) for x, y in zip(xs.tolist(), ys.tolist())]
            losses = loss_simd(tx, rxs, distances, visibility)
        else:
            # Models without a SIMD kernel still serve the statistical tier
            # through their exact batch (or pairwise) path — the rest of the
            # fusion below stays vectorised either way.
            if rxs is None:
                rxs = [Vec2(x, y) for x, y in zip(xs.tolist(), ys.tolist())]
            loss_batch = getattr(propagation, "path_loss_db_batch", None)
            if loss_batch is not None:
                losses = np.asarray(
                    loss_batch(tx, rxs, distances.tolist(), visibility),
                    dtype=np.float64,
                )
            else:
                loss = propagation.path_loss_db
                losses = np.fromiter(
                    (loss(tx, rx, visibility) for rx in rxs), np.float64, count
                )
        snrs = (self.tx_power_dbm - losses) - (
            self.noise_dbm + self.noise_penalty_db
        )
        # Same branch sense as the exact kernel: `snr < min` selects the
        # unusable arm, so NaN SNRs land on the usable side there and here.
        unusable = snrs < self.min_snr_db
        margins = snrs - self.min_snr_db
        with np.errstate(over="ignore"):
            # exp overflows to inf for hopeless links (PER -> 1.0 exactly)
            # and the Shannon term overflows only for physically absurd SNRs.
            pers = 1.0 / (1.0 + np.exp(0.9 * margins))
            rates = np.minimum(
                self.max_rate_bps,
                (self.efficiency * self.bandwidth_hz)
                * np.log2(1.0 + 10.0 ** (snrs * 0.1)),
            )
        rates[unusable] = 0.0
        pers[unusable] = 1.0
        return snrs, rates, pers, ~unusable, distances

    def _quality_batch_fast(
        self,
        tx: Vec2,
        rxs: Sequence[Vec2],
        visibility: Optional[VisibilityMap] = None,
    ) -> List[LinkQuality]:
        """:meth:`quality_arrays` materialised into :class:`LinkQuality`
        objects (plain Python floats/bools, like the exact tier returns)."""
        snrs, rates, pers, usable, distances = self.quality_arrays(
            tx, rxs, visibility
        )
        snr_values = snrs.tolist()
        rate_values = rates.tolist()
        per_values = pers.tolist()
        usable_values = usable.tolist()
        distance_values = distances.tolist()
        return [
            LinkQuality(
                snr_values[index],
                rate_values[index],
                per_values[index],
                usable_values[index],
                distance_values[index],
            )
            for index in range(len(rxs))
        ]

    # ---------------------------------------------------------------- range

    def effective_range(
        self, visibility: Optional[VisibilityMap] = None, step: float = 5.0
    ) -> float:
        """Largest distance at which a line-of-sight link is still usable.

        Computed by stepping outward until the SNR drops below threshold; the
        mesh discovery layer uses this to size its spatial-index queries.
        """
        origin = Vec2(0.0, 0.0)
        distance = step
        last_usable = 0.0
        while distance < 10_000.0:
            snr = self.snr_db(origin, Vec2(distance, 0.0), None)
            if snr < self.min_snr_db:
                break
            last_usable = distance
            distance += step
        return last_usable

    def transfer_time(self, size_bits: float, rate_bps: float) -> float:
        """Seconds needed to move ``size_bits`` at ``rate_bps``."""
        if rate_bps <= 0:
            return math.inf
        return size_bits / rate_bps

"""Cellular (Uu) connectivity to a cloud endpoint.

The centralised baselines send raw sensor data to a cloud server over the
cellular network and receive results back.  The model is intentionally
simple: a per-node uplink/downlink rate, a core-network round-trip latency,
and a cloud compute capacity shared by all tenants.  These are exactly the
costs the AirDnD vision argues should be avoided by keeping data where it was
generated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.simcore.simulator import Simulator

_transfer_ids = itertools.count()


@dataclass
class CloudEndpoint:
    """The remote data centre reachable over cellular.

    Attributes
    ----------
    compute_rate_ops:
        Operations per second available to each offloaded task (the cloud is
        assumed to scale out, so tasks do not queue on each other unless
        ``shared_capacity`` is set).
    shared_capacity:
        Optional cap on concurrently executing tasks; extra tasks queue FIFO.
    """

    compute_rate_ops: float = 2e11
    shared_capacity: Optional[int] = None


class CellularNetwork:
    """Uplink/downlink transfers between nodes and a :class:`CloudEndpoint`.

    Parameters
    ----------
    sim:
        The simulator used for the virtual clock.
    uplink_bps / downlink_bps:
        Per-node radio-access rates.
    core_latency:
        One-way latency (seconds) through the radio access + core network to
        the cloud (typically 20–50 ms).
    """

    def __init__(
        self,
        sim: Simulator,
        cloud: Optional[CloudEndpoint] = None,
        uplink_bps: float = 20e6,
        downlink_bps: float = 60e6,
        core_latency: float = 0.035,
    ) -> None:
        self.sim = sim
        self.cloud = cloud or CloudEndpoint()
        self.uplink_bps = uplink_bps
        self.downlink_bps = downlink_bps
        self.core_latency = core_latency
        self.bytes_uplinked = 0
        self.bytes_downlinked = 0
        self._active_cloud_tasks = 0
        self._queue: list = []

    # ------------------------------------------------------------ transfers

    def uplink_time(self, size_bytes: float) -> float:
        """Seconds to push ``size_bytes`` to the cloud."""
        return self.core_latency + (size_bytes * 8) / self.uplink_bps

    def downlink_time(self, size_bytes: float) -> float:
        """Seconds to pull ``size_bytes`` from the cloud."""
        return self.core_latency + (size_bytes * 8) / self.downlink_bps

    def upload(
        self, size_bytes: float, on_complete: Callable[[], Any], kind: str = "data"
    ) -> int:
        """Start an uplink transfer; ``on_complete`` fires when it finishes."""
        transfer_id = next(_transfer_ids)
        self.bytes_uplinked += size_bytes
        monitor = self.sim.monitor
        monitor.counter("cellular.bytes_uplinked").add(size_bytes)
        monitor.counter(f"cellular.bytes.{kind}").add(size_bytes)
        self.sim.schedule(self.uplink_time(size_bytes), on_complete, name="cellular-up")
        return transfer_id

    def download(
        self, size_bytes: float, on_complete: Callable[[], Any], kind: str = "result"
    ) -> int:
        """Start a downlink transfer; ``on_complete`` fires when it finishes."""
        transfer_id = next(_transfer_ids)
        self.bytes_downlinked += size_bytes
        monitor = self.sim.monitor
        monitor.counter("cellular.bytes_downlinked").add(size_bytes)
        monitor.counter(f"cellular.bytes.{kind}").add(size_bytes)
        self.sim.schedule(
            self.downlink_time(size_bytes), on_complete, name="cellular-down"
        )
        return transfer_id

    # ---------------------------------------------------------- cloud tasks

    def execute_in_cloud(
        self, operations: float, on_complete: Callable[[], Any]
    ) -> None:
        """Run ``operations`` on the cloud endpoint, honouring its capacity."""
        duration = operations / self.cloud.compute_rate_ops

        def _finish() -> None:
            self._active_cloud_tasks -= 1
            self._drain_queue()
            on_complete()

        def _start() -> None:
            self._active_cloud_tasks += 1
            self.sim.schedule(duration, _finish, name="cloud-exec")

        if (
            self.cloud.shared_capacity is not None
            and self._active_cloud_tasks >= self.cloud.shared_capacity
        ):
            self._queue.append(_start)
        else:
            _start()

    def _drain_queue(self) -> None:
        while self._queue and (
            self.cloud.shared_capacity is None
            or self._active_cloud_tasks < self.cloud.shared_capacity
        ):
            start = self._queue.pop(0)
            start()

    # -------------------------------------------------------------- metrics

    def total_bytes(self) -> float:
        """Total bytes moved over the cellular network in either direction."""
        return self.bytes_uplinked + self.bytes_downlinked

"""Result collection and aggregation helpers.

Applications that fan one logical request out into several AirDnD tasks
(e.g. asking three neighbours for their view of the same corner) need to
gather the individual :class:`~repro.core.models.TaskResult` objects and fuse
them.  :class:`ResultAggregator` does the gathering; fusion is delegated to a
caller-supplied function (the perception layer provides
:func:`~repro.perception.objects.fuse_object_lists` and
:meth:`~repro.perception.occupancy.OccupancyGrid.fuse_all`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.models import TaskResult


@dataclass
class AggregationRound:
    """One fan-out round: several tasks contributing to one logical request."""

    round_id: int
    expected: int
    results: List[TaskResult] = field(default_factory=list)
    closed: bool = False

    def successes(self) -> List[TaskResult]:
        """The successful results gathered so far."""
        return [r for r in self.results if r.success]


class ResultAggregator:
    """Collects task results into rounds and triggers fusion when complete.

    Parameters
    ----------
    fuse:
        Callable mapping the list of successful result *values* to a fused
        value.  Called once per round when the round closes.
    on_round_complete:
        Callback receiving ``(round, fused_value_or_None)``.
    """

    def __init__(
        self,
        fuse: Callable[[List[Any]], Any],
        on_round_complete: Optional[Callable[[AggregationRound, Any], None]] = None,
    ) -> None:
        self.fuse = fuse
        self.on_round_complete = on_round_complete
        self._rounds: Dict[int, AggregationRound] = {}
        self._next_round_id = 0
        self.rounds_completed = 0
        self.rounds_with_results = 0

    def open_round(self, expected: int) -> AggregationRound:
        """Start a new fan-out round expecting ``expected`` results."""
        if expected < 1:
            raise ValueError("a round must expect at least one result")
        round_ = AggregationRound(round_id=self._next_round_id, expected=expected)
        self._rounds[round_.round_id] = round_
        self._next_round_id += 1
        return round_

    def add_result(self, round_id: int, result: TaskResult) -> Optional[Any]:
        """Record one result; returns the fused value if the round just closed."""
        round_ = self._rounds.get(round_id)
        if round_ is None or round_.closed:
            return None
        round_.results.append(result)
        if len(round_.results) >= round_.expected:
            return self._close(round_)
        return None

    def force_close(self, round_id: int) -> Optional[Any]:
        """Close a round early (e.g. on a deadline) with whatever arrived."""
        round_ = self._rounds.get(round_id)
        if round_ is None or round_.closed:
            return None
        return self._close(round_)

    def _close(self, round_: AggregationRound) -> Optional[Any]:
        round_.closed = True
        self.rounds_completed += 1
        successes = round_.successes()
        fused = None
        if successes:
            self.rounds_with_results += 1
            fused = self.fuse([r.value for r in successes])
        if self.on_round_complete is not None:
            self.on_round_complete(round_, fused)
        return fused

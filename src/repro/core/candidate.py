"""RQ1: candidate executor selection.

"What qualities and properties must be considered when selecting the
computing nodes?"  AirDnD answers with an explicit two-stage procedure:

1. **Hard filters** remove neighbours that cannot possibly execute the task:
   no advertised headroom, missing required data, a link too poor to carry
   the task and its result, or a predicted contact time shorter than the
   estimated round-trip.
2. **Weighted scoring** ranks the survivors on five normalised criteria —
   compute headroom, link quality, predicted contact time, data quality and
   trust — with weights that are public, tunable parameters (ablated in
   experiment E6).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.data_model import beacon_digest_matches, digest_quality_score
from repro.core.models import NeighborDescription, NetworkDescription, TaskDescription


@dataclass(frozen=True)
class ScoringWeights:
    """Relative importance of each selection criterion (need not sum to 1)."""

    compute: float = 0.3
    link: float = 0.2
    contact_time: float = 0.2
    data: float = 0.2
    trust: float = 0.1

    def __post_init__(self) -> None:
        for name, value in (
            ("compute", self.compute),
            ("link", self.link),
            ("contact_time", self.contact_time),
            ("data", self.data),
            ("trust", self.trust),
        ):
            if value < 0:
                raise ValueError(f"weight {name} cannot be negative")

    def total(self) -> float:
        """Sum of all weights (used for normalisation)."""
        return self.compute + self.link + self.contact_time + self.data + self.trust


@dataclass
class CandidateScore:
    """One neighbour's suitability for one task."""

    neighbor: NeighborDescription
    eligible: bool
    score: float
    estimated_completion_s: float
    rejection_reason: str = ""
    subscores: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Candidate node name."""
        return self.neighbor.name


class CandidateScorer:
    """Filters and ranks candidate executors for a task.

    Scoring is a pure function of the network view and a handful of task
    fields, and the view itself is already memoised upstream — the
    :class:`~repro.core.network_model.NetworkDescriptionBuilder` stamps each
    description with a ``freshness`` token covering ``(owner, time, position
    epoch, membership epoch, beacons heard)``.  The scorer therefore caches
    the per-neighbour score list keyed on ``(freshness, task signature)``:
    re-ranking the same task against the same view (retries, redundant
    replicas, repeated same-shape submissions within one event) costs a
    dictionary lookup instead of re-evaluating every filter and subscore.

    Because the freshness token is *owner-qualified*, one scorer instance
    can safely be shared by every node of a scenario — two owners' views can
    never collide on a key.  To make sharing actually pay off, the cache
    holds up to ``cache_capacity`` recent ``(freshness, task signature)``
    entries with LRU eviction, instead of flushing wholesale whenever a
    different owner (or a new epoch) shows up.  Eviction only ever costs
    recomputation; results stay byte-identical to the unmemoised path
    (``memoise=False``).

    Parameters
    ----------
    weights:
        The :class:`ScoringWeights` to use.
    min_trust:
        Candidates below this trust score are filtered out.
    contact_margin:
        Multiplier applied to the estimated round-trip when checking it fits
        in the predicted contact time (>1 keeps a safety margin).
    max_beacon_age_s:
        Beacons older than this are considered too stale to act on.
    reference_headroom_ops:
        Headroom at which the compute subscore saturates at 1.0.
    reference_rate_bps:
        Link rate at which the link subscore saturates at 1.0.
    reference_contact_s:
        Contact time at which the contact subscore saturates at 1.0.
    memoise:
        Cache score lists per ``(freshness, task signature)``.  ``False``
        keeps the always-recompute reference path (used by equivalence
        tests).
    cache_capacity:
        Maximum number of memoised score lists kept (LRU).  Sized so that a
        fleet sharing one scorer keeps every node's current view cached.
    """

    def __init__(
        self,
        weights: Optional[ScoringWeights] = None,
        min_trust: float = 0.3,
        contact_margin: float = 1.5,
        max_beacon_age_s: float = 2.0,
        reference_headroom_ops: float = 5e9,
        reference_rate_bps: float = 20e6,
        reference_contact_s: float = 20.0,
        memoise: bool = True,
        cache_capacity: int = 2048,
    ) -> None:
        self.weights = weights or ScoringWeights()
        self.min_trust = min_trust
        self.contact_margin = contact_margin
        self.max_beacon_age_s = max_beacon_age_s
        self.reference_headroom_ops = reference_headroom_ops
        self.reference_rate_bps = reference_rate_bps
        self.reference_contact_s = reference_contact_s
        self.memoise = memoise
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be at least 1")
        self.cache_capacity = cache_capacity
        #: Memoisation telemetry (counted only for memoisable views).
        self.cache_hits = 0
        self.cache_misses = 0
        self._score_cache: "OrderedDict[tuple, Tuple[CandidateScore, ...]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------ estimates

    def estimate_completion_time(
        self, neighbor: NeighborDescription, task: TaskDescription, result_size_hint: int = 50_000
    ) -> float:
        """Estimated seconds from offload to result arrival via ``neighbor``."""
        if neighbor.link_rate_bps <= 0:
            return math.inf
        transfer_out = (task.size_bytes * 8) / neighbor.link_rate_bps
        transfer_back = (result_size_hint * 8) / neighbor.link_rate_bps
        headroom = max(neighbor.compute_headroom_ops, 1e6)
        compute = task.operations / headroom
        queue_penalty = 0.05 * neighbor.queue_length
        return transfer_out + compute + transfer_back + queue_penalty

    # -------------------------------------------------------------- scoring

    def score_neighbor(
        self, neighbor: NeighborDescription, task: TaskDescription
    ) -> CandidateScore:
        """Filter and score one neighbour for one task."""
        completion = self.estimate_completion_time(neighbor, task)

        # ---- hard filters -------------------------------------------------
        if neighbor.beacon_age_s > self.max_beacon_age_s:
            return CandidateScore(neighbor, False, 0.0, completion, "beacon too stale")
        if neighbor.compute_headroom_ops <= 0:
            return CandidateScore(neighbor, False, 0.0, completion, "no compute headroom")
        if neighbor.link_rate_bps <= 0:
            return CandidateScore(neighbor, False, 0.0, completion, "link unusable")
        if neighbor.trust_score < self.min_trust:
            return CandidateScore(neighbor, False, 0.0, completion, "trust below threshold")
        if task.data is not None and not beacon_digest_matches(neighbor, task.data):
            return CandidateScore(neighbor, False, 0.0, completion, "required data not advertised")
        if task.deadline_s > 0 and completion > task.deadline_s:
            return CandidateScore(neighbor, False, 0.0, completion, "cannot meet deadline")
        required_window = completion * self.contact_margin
        if neighbor.predicted_contact_time_s < required_window:
            return CandidateScore(
                neighbor, False, 0.0, completion, "predicted contact time too short"
            )

        # ---- weighted scoring --------------------------------------------
        compute_score = min(1.0, neighbor.compute_headroom_ops / self.reference_headroom_ops)
        link_score = min(1.0, neighbor.link_rate_bps / self.reference_rate_bps)
        contact = neighbor.predicted_contact_time_s
        contact_score = 1.0 if math.isinf(contact) else min(1.0, contact / self.reference_contact_s)
        data_score = (
            digest_quality_score(neighbor, task.data) if task.data is not None else 1.0
        )
        trust_score = min(1.0, max(0.0, neighbor.trust_score))

        weights = self.weights
        total_weight = max(weights.total(), 1e-9)
        score = (
            weights.compute * compute_score
            + weights.link * link_score
            + weights.contact_time * contact_score
            + weights.data * data_score
            + weights.trust * trust_score
        ) / total_weight
        return CandidateScore(
            neighbor,
            True,
            score,
            completion,
            subscores={
                "compute": compute_score,
                "link": link_score,
                "contact_time": contact_score,
                "data": data_score,
                "trust": trust_score,
            },
        )

    # ---------------------------------------------------------- memoisation

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of memoisable score requests answered from cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def _task_signature(self, task: TaskDescription) -> tuple:
        """The task fields scoring actually reads.

        ``data`` is a frozen dataclass (hashable by value), so two
        same-shape tasks submitted within one view share a cache entry even
        when their ``task_id`` differs.
        """
        return (task.size_bytes, task.operations, task.deadline_s, task.data)

    def _scores_for(
        self, network: NetworkDescription, task: TaskDescription
    ) -> List[CandidateScore]:
        """Per-neighbour scores, memoised per ``(freshness, task signature)``.

        Views without a ``freshness`` token (hand-built descriptions) are
        scored directly — there is no safe key to cache them under.
        """
        freshness = getattr(network, "freshness", None)
        if not self.memoise or freshness is None:
            return [self.score_neighbor(neighbor, task) for neighbor in network.neighbors]
        cache = self._score_cache
        key = (freshness, self._task_signature(task))
        cached = cache.get(key)
        if cached is None:
            self.cache_misses += 1
            cached = tuple(
                self.score_neighbor(neighbor, task) for neighbor in network.neighbors
            )
            cache[key] = cached
            while len(cache) > self.cache_capacity:
                cache.popitem(last=False)
        else:
            self.cache_hits += 1
            cache.move_to_end(key)
        return list(cached)

    # -------------------------------------------------------------- ranking

    def rank(
        self, network: NetworkDescription, task: TaskDescription
    ) -> List[CandidateScore]:
        """Score every neighbour and return eligible ones sorted best-first.

        Callers must treat the returned scores as read-only: repeated calls
        under one freshness token share the cached :class:`CandidateScore`
        instances (mutating one would poison the cache for later callers).
        """
        eligible = [s for s in self._scores_for(network, task) if s.eligible]
        eligible.sort(key=lambda s: (-s.score, s.estimated_completion_s, s.name))
        return eligible

    def all_scores(
        self, network: NetworkDescription, task: TaskDescription
    ) -> List[CandidateScore]:
        """Scores for every neighbour, including filtered-out ones (for analysis).

        Read-only, like :meth:`rank` — cached instances are shared.
        """
        return self._scores_for(network, task)

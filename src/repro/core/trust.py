"""RQ3: trust, integrity and privacy mechanisms.

Three complementary, individually optional mechanisms:

* **Reputation** — every node keeps local scores for its peers, increased on
  correct results and decreased sharply on failures or detected lies.  The
  score rides in beacons (self-reported) but decisions always use the local
  score when one exists.
* **Attestation** — a lightweight challenge/response on first contact: the
  requester sends a nonce, the executor must echo a keyed digest.  Simulated
  faithfully (it costs one round-trip before the first offload to a new peer)
  without real cryptography.
* **Redundant execution** — a task may be sent to ``k`` executors; results
  are accepted only when a majority agree (byte-equal results, or the
  application's own comparator).  This is the integrity backstop against a
  malicious executor fabricating results.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TrustConfig:
    """Tunable knobs of the trust layer."""

    initial_score: float = 0.6
    success_reward: float = 0.05
    failure_penalty: float = 0.15
    lie_penalty: float = 0.5
    min_score: float = 0.0
    max_score: float = 1.0
    require_attestation: bool = False
    redundancy_quorum: float = 0.5


class TrustManager:
    """Per-node reputation store plus attestation bookkeeping."""

    def __init__(self, owner: str, config: Optional[TrustConfig] = None) -> None:
        self.owner = owner
        self.config = config or TrustConfig()
        self._scores: Dict[str, float] = {}
        self._attested: Dict[str, bool] = {}
        self.events: List[tuple] = []

    # ------------------------------------------------------------ reputation

    def score_of(self, peer: str) -> float:
        """Current reputation of ``peer`` (initial score when unknown)."""
        return self._scores.get(peer, self.config.initial_score)

    def _clamp(self, value: float) -> float:
        return min(self.config.max_score, max(self.config.min_score, value))

    def record_success(self, peer: str) -> float:
        """Reward a peer for a correct, timely result."""
        new = self._clamp(self.score_of(peer) + self.config.success_reward)
        self._scores[peer] = new
        self.events.append(("success", peer, new))
        return new

    def record_failure(self, peer: str) -> float:
        """Penalise a peer for a failed or timed-out task."""
        new = self._clamp(self.score_of(peer) - self.config.failure_penalty)
        self._scores[peer] = new
        self.events.append(("failure", peer, new))
        return new

    def record_lie(self, peer: str) -> float:
        """Heavily penalise a peer whose result lost a redundancy vote."""
        new = self._clamp(self.score_of(peer) - self.config.lie_penalty)
        self._scores[peer] = new
        self.events.append(("lie", peer, new))
        return new

    def trusted_peers(self, min_score: float = 0.3) -> List[str]:
        """Peers whose score is at or above ``min_score``."""
        return [peer for peer, score in self._scores.items() if score >= min_score]

    def recorded_scores(self) -> Dict[str, float]:
        """Peers this node has actually observed, with their current scores.

        Unlike :meth:`score_of` this never invents the initial score for
        unknown peers, which is what the honest-vs-malicious reputation-gap
        metric needs: only *evidence-backed* scores should enter the gap.
        """
        return dict(self._scores)

    def self_score(self) -> float:
        """The score this node advertises about itself in beacons.

        Self-reported scores are deliberately optimistic (a node never
        advertises distrust of itself); peers use their own records.
        """
        return self.config.max_score

    # ----------------------------------------------------------- attestation

    @staticmethod
    def attestation_response(node_name: str, nonce: str) -> str:
        """Deterministic keyed digest a genuine node produces for a nonce."""
        return hashlib.sha256(f"airdnd:{node_name}:{nonce}".encode("utf-8")).hexdigest()

    def needs_attestation(self, peer: str) -> bool:
        """Whether an attestation handshake is still required for ``peer``."""
        return self.config.require_attestation and not self._attested.get(peer, False)

    def verify_attestation(self, peer: str, nonce: str, response: str) -> bool:
        """Check a peer's attestation response and record the outcome."""
        expected = self.attestation_response(peer, nonce)
        ok = response == expected
        self._attested[peer] = ok
        self.events.append(("attestation", peer, ok))
        if not ok:
            self.record_lie(peer)
        return ok

    # ----------------------------------------------------------- redundancy

    def vote(
        self,
        results: Dict[str, Any],
        comparator: Optional[Callable[[Any, Any], bool]] = None,
        expected: Optional[int] = None,
    ) -> Optional[Any]:
        """Strict-majority vote over redundant results.

        ``results`` maps executor name → result value.  Returns the winning
        value, or ``None`` when no value reaches the quorum.  Executors whose
        value lost the vote are penalised as liars; winners are rewarded.

        The quorum is a *strict* majority — more than ``redundancy_quorum``
        of the vote base — computed over ``max(len(results), expected)``.
        Passing ``expected`` (the replica count the requester asked for)
        closes two integrity holes a plurality over the *collected* results
        left open: with one replica lost, a 1-vs-1 disagreement used to be
        won by whichever result arrived first, and a lone surviving replica
        used to be accepted unvetted.  Both now fail the vote instead, so a
        single corrupting executor can never get a fabricated value accepted
        under k ≥ 3 redundancy (benchmark E14's acceptance criterion).
        """
        if not results:
            return None
        comparator = comparator or (lambda a, b: a == b)
        names = list(results)
        # Group executors by agreement classes.
        groups: List[List[str]] = []
        for name in names:
            placed = False
            for group in groups:
                if comparator(results[group[0]], results[name]):
                    group.append(name)
                    placed = True
                    break
            if not placed:
                groups.append([name])
        groups.sort(key=len, reverse=True)
        winner_group = groups[0]
        base = max(len(names), expected or 0)
        quorum_size = min(
            base, math.floor(base * self.config.redundancy_quorum) + 1
        )
        if len(winner_group) < quorum_size:
            # Only penalise when results actually *disagree* (someone must be
            # lying, we just cannot tell who).  A unanimous set that is
            # merely short of quorum — e.g. the sole surviving replica of a
            # k=3 task whose peers were lost in transit — proves nothing
            # against its responders; the task still fails, unvetted.
            if len(groups) > 1:
                for name in names:
                    self.record_failure(name)
            return None
        for name in names:
            if name in winner_group:
                self.record_success(name)
            else:
                self.record_lie(name)
        return results[winner_group[0]]

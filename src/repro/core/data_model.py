"""Model 3 matching: which neighbours hold the data a task needs.

Matching happens twice:

* **Requester side, from beacons** — coarse: the beacon digest only carries
  (coverage, freshness, quality-score) per data type, so the requester can
  rule out neighbours that obviously lack the data but cannot be certain the
  match will hold.
* **Executor side, from the pond** — exact: before accepting a task the
  executor checks its actual :class:`~repro.data.catalog.DataCatalog` against
  the task's :class:`~repro.core.models.DataDescription`; a mismatch produces
  a rejection that sends the orchestrator to its next candidate.

This two-stage design keeps the protocol asynchronous (no probe round-trips
before offloading) while still guaranteeing the executor never runs a task on
inadequate data.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.models import DataDescription, NeighborDescription
from repro.data.catalog import DataCatalog
from repro.data.pond import DataPond
from repro.data.quality import DataQuality, quality_score
from repro.geometry.vector import Vec2


def beacon_digest_matches(
    neighbor: NeighborDescription,
    description: DataDescription,
    min_quality_score: float = 0.2,
) -> bool:
    """Coarse requester-side match against a neighbour's beacon digest.

    The digest gives ``(coverage_m, freshness_s, quality)`` per data type.
    A neighbour matches when it advertises the type, its advertised coverage
    plausibly reaches the region of interest and its quality score clears a
    low bar.
    """
    digest = neighbor.data_summary.get(description.data_type.value)
    if digest is None:
        return False
    coverage_m, freshness_s, quality = digest
    if quality < min_quality_score:
        return False
    if freshness_s > description.required_quality.freshness_s + description.max_result_staleness_s:
        return False
    if description.region_center is not None:
        distance = neighbor.position.distance_to(description.region_center)
        if distance > coverage_m + description.region_radius:
            return False
    return True


def digest_quality_score(
    neighbor: NeighborDescription, description: DataDescription
) -> float:
    """Scalar 0..1 data score of a neighbour for ranking (0 when no match)."""
    digest = neighbor.data_summary.get(description.data_type.value)
    if digest is None:
        return 0.0
    _coverage, _freshness, quality = digest
    return float(quality)


def pond_satisfies(
    pond: DataPond,
    description: Optional[DataDescription],
    now: float,
) -> Tuple[bool, str]:
    """Exact executor-side check of a pond against a data description.

    Returns ``(ok, reason)``; the reason string is sent back to the requester
    in rejections so experiments can attribute failures.
    """
    if description is None:
        return True, ""
    catalog = DataCatalog.from_pond(pond, now)
    if description.data_type not in catalog:
        return False, f"no {description.data_type.value} data available"
    ok = catalog.satisfies(
        description.data_type,
        description.required_quality,
        region_center=description.region_center,
        region_radius=description.region_radius,
    )
    if not ok:
        entry = catalog.entry(description.data_type)
        available = entry.quality if entry is not None else None
        return False, f"data quality insufficient (have {available}, need {description.required_quality})"
    return True, ""


def local_data_score(
    pond: DataPond, description: Optional[DataDescription], now: float
) -> float:
    """Quality score of the local pond for a data description (1 when no data needed)."""
    if description is None:
        return 1.0
    quality: Optional[DataQuality] = pond.quality_of(description.data_type, now)
    if quality is None:
        return 0.0
    score = quality_score(quality)
    if description.region_center is not None:
        center: Optional[Vec2] = pond.coverage_center(description.data_type, now)
        if center is None:
            return 0.0
        distance = center.distance_to(description.region_center)
        if distance > quality.coverage_radius_m + description.region_radius:
            return 0.0
    return score

"""The task lifecycle state machine.

Every task submitted to the orchestrator owns exactly one
:class:`TaskLifecycle`, which enforces the legal state transitions and
timestamps each of them.  The experiment harness reads completed lifecycles
to break latency into its decision / transfer / compute / return components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.models import TaskDescription, TaskResult


class TaskState(str, Enum):
    """States a task moves through."""

    CREATED = "created"
    SELECTING = "selecting"
    OFFLOADED = "offloaded"
    EXECUTING_LOCALLY = "executing_locally"
    COMPLETED = "completed"
    FAILED = "failed"


#: Legal transitions of the lifecycle state machine.
_TRANSITIONS: Dict[TaskState, List[TaskState]] = {
    TaskState.CREATED: [TaskState.SELECTING, TaskState.FAILED],
    TaskState.SELECTING: [
        TaskState.OFFLOADED,
        TaskState.EXECUTING_LOCALLY,
        TaskState.FAILED,
    ],
    TaskState.OFFLOADED: [
        TaskState.COMPLETED,
        TaskState.SELECTING,   # retry with another candidate
        TaskState.EXECUTING_LOCALLY,
        TaskState.FAILED,
    ],
    TaskState.EXECUTING_LOCALLY: [TaskState.COMPLETED, TaskState.FAILED],
    TaskState.COMPLETED: [],
    TaskState.FAILED: [],
}


class IllegalTransition(RuntimeError):
    """Raised on an attempt to move a lifecycle along a non-existent edge."""


@dataclass
class TaskLifecycle:
    """The full history of one task from submission to completion."""

    task: TaskDescription
    created_at: float
    state: TaskState = TaskState.CREATED
    history: List[tuple] = field(default_factory=list)
    attempts: int = 0
    executors_tried: List[str] = field(default_factory=list)
    result: Optional[TaskResult] = None
    completed_at: Optional[float] = None

    def __post_init__(self) -> None:
        self.history.append((self.created_at, TaskState.CREATED))

    # ----------------------------------------------------------- transitions

    def transition(self, new_state: TaskState, time: float) -> None:
        """Move to ``new_state`` at virtual ``time`` (validating the edge)."""
        if new_state not in _TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"task {self.task.task_id}: cannot go {self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        self.history.append((time, new_state))
        if new_state in (TaskState.COMPLETED, TaskState.FAILED):
            self.completed_at = time

    def record_attempt(self, executor: str) -> None:
        """Record one offload (or local execution) attempt."""
        self.attempts += 1
        self.executors_tried.append(executor)

    # -------------------------------------------------------------- queries

    @property
    def is_terminal(self) -> bool:
        """Whether the task has reached a final state."""
        return self.state in (TaskState.COMPLETED, TaskState.FAILED)

    @property
    def succeeded(self) -> bool:
        """Whether the task completed with a usable result."""
        return self.state == TaskState.COMPLETED and self.result is not None and self.result.success

    def total_latency(self) -> Optional[float]:
        """Submission-to-terminal latency (None while in flight)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    def time_in_state(self, state: TaskState) -> float:
        """Total seconds spent in ``state`` so far."""
        total = 0.0
        for (t0, s0), (t1, _s1) in zip(self.history, self.history[1:]):
            if s0 == state:
                total += t1 - t0
        if self.history and self.history[-1][1] == state and self.completed_at is None:
            # Still in this state; caller must add (now - last transition) if needed.
            pass
        return total

    def met_deadline(self) -> bool:
        """Whether the task finished within its deadline (True when no deadline)."""
        if self.task.deadline_s <= 0:
            return True
        latency = self.total_latency()
        return latency is not None and latency <= self.task.deadline_s

"""The three AirDnD description models (plus results).

The paper structures its contribution as three models in different layers:

* **Model 1 — Network Description** (:class:`NetworkDescription`): what one
  node knows, at one instant, about the spontaneously formed mesh around it —
  who is reachable, with what link quality, for how much longer, and with how
  much spare compute.
* **Model 2 — Task Description** (:class:`TaskDescription`): a formal,
  abstract description of a computation so that it "could work on the
  receiving node": a catalogue function name, parameters, resource needs, a
  deadline and the data it must be executed next to.
* **Model 3 — Data Description** (:class:`DataDescription`): the type and
  quality of data the task requires, and the region of interest it must
  cover.

All three are plain, serialisable dataclasses: they are what actually travels
over the mesh (tasks and results), or what the orchestrator materialises
locally from beacons (network descriptions).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.data.datatypes import DataType
from repro.data.quality import DataQuality
from repro.geometry.vector import Vec2

_task_ids = itertools.count()


# --------------------------------------------------------------------- Model 3


@dataclass(frozen=True)
class DataDescription:
    """Model 3: the data a task needs at its executor.

    Attributes
    ----------
    data_type:
        Which kind of data the executor must hold locally.
    required_quality:
        Minimum acceptable :class:`~repro.data.quality.DataQuality`.
    region_center / region_radius:
        Region of interest the data must cover (``None`` = anywhere).
    max_result_staleness_s:
        How old the result may be when it finally reaches the requester and
        still be useful; used for admission control against slow paths.
    """

    data_type: DataType = DataType.LIDAR_SCAN
    required_quality: DataQuality = field(default_factory=DataQuality)
    region_center: Optional[Vec2] = None
    region_radius: float = 30.0
    max_result_staleness_s: float = 2.0


# --------------------------------------------------------------------- Model 2


@dataclass
class TaskDescription:
    """Model 2: a formal, self-contained description of a computation.

    The task carries *what* to run (a shared-catalogue function name and its
    parameters), *what it needs* (operations, memory, data description) and
    *how urgent it is* (deadline) — never code and never data.

    Attributes
    ----------
    function_name:
        Name in the shared :class:`~repro.compute.faas.FunctionRegistry`.
    parameters:
        Keyword parameters passed to the function body.
    operations:
        Estimated compute cost in abstract operations.
    memory_mb:
        Working-set requirement.
    data:
        The Model 3 :class:`DataDescription` this task must be placed next to
        (``None`` for pure computation).
    deadline_s:
        Relative deadline from submission; 0 disables deadline checking.
    requester:
        Name of the node that created the task (filled in by the
        orchestrator).
    size_bytes:
        Serialized size of the description itself (small by construction).
    redundancy:
        Number of independent executors the orchestrator should try to use
        (>1 enables the trust layer's voting).
    """

    function_name: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    operations: float = 1e8
    memory_mb: float = 128.0
    data: Optional[DataDescription] = None
    deadline_s: float = 0.0
    requester: str = ""
    size_bytes: int = 600
    redundancy: int = 1
    task_id: int = field(default_factory=lambda: next(_task_ids))

    def __post_init__(self) -> None:
        if self.operations <= 0:
            raise ValueError("operations must be positive")
        if self.redundancy < 1:
            raise ValueError("redundancy must be at least 1")

    def with_requester(self, requester: str) -> "TaskDescription":
        """Copy of the task stamped with its requesting node."""
        clone = TaskDescription(
            function_name=self.function_name,
            parameters=dict(self.parameters),
            operations=self.operations,
            memory_mb=self.memory_mb,
            data=self.data,
            deadline_s=self.deadline_s,
            requester=requester,
            size_bytes=self.size_bytes,
            redundancy=self.redundancy,
        )
        # Preserve identity: a re-stamped task is the same task.
        clone.task_id = self.task_id
        return clone


# --------------------------------------------------------------------- Model 1


@dataclass(frozen=True)
class NeighborDescription:
    """One neighbour as seen inside a :class:`NetworkDescription`.

    All fields derive from the neighbour's most recent beacon and from the
    local link measurement made when that beacon was received — nothing here
    required an extra message exchange.
    """

    name: str
    position: Vec2
    velocity: Vec2
    distance_m: float
    link_rate_bps: float
    link_snr_db: float
    compute_headroom_ops: float
    queue_length: int
    data_summary: Dict[str, Tuple[float, float, float]]
    trust_score: float
    beacon_age_s: float
    predicted_contact_time_s: float

    def has_data(self, data_type: DataType) -> bool:
        """Whether the neighbour advertised any data of ``data_type``."""
        return data_type.value in self.data_summary


@dataclass
class NetworkDescription:
    """Model 1: one node's instantaneous view of its surrounding mesh.

    Attributes
    ----------
    owner:
        The node whose view this is.
    time:
        Virtual time the description was materialised.
    position:
        The owner's position at that time.
    neighbors:
        Every in-range neighbour with its derived properties.
    epoch:
        The owner's membership epoch (for diagnosing staleness).
    freshness:
        Opaque hashable token identifying the observation state this view
        was materialised from (owner, time, position epoch, membership
        epoch, beacons heard).  Two descriptions with equal ``freshness``
        are guaranteed identical, which is what lets the
        :class:`~repro.core.candidate.CandidateScorer` memoise per view;
        ``None`` (e.g. hand-built descriptions in tests) disables that
        memoisation.
    """

    owner: str
    time: float
    position: Vec2
    neighbors: List[NeighborDescription] = field(default_factory=list)
    epoch: int = 0
    freshness: Optional[tuple] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.neighbors)

    def neighbor(self, name: str) -> Optional[NeighborDescription]:
        """Look up one neighbour by name."""
        for neighbor in self.neighbors:
            if neighbor.name == name:
                return neighbor
        return None

    def names(self) -> List[str]:
        """Names of all neighbours in the view."""
        return [n.name for n in self.neighbors]

    def total_headroom_ops(self) -> float:
        """Aggregate advertised spare compute across the view."""
        return sum(n.compute_headroom_ops for n in self.neighbors)

    def with_data(self, data_type: DataType) -> List[NeighborDescription]:
        """Neighbours advertising data of ``data_type``."""
        return [n for n in self.neighbors if n.has_data(data_type)]


# --------------------------------------------------------------------- results


@dataclass
class TaskResult:
    """Outcome of one task execution, as returned to the requester.

    Attributes
    ----------
    task_id:
        Identity of the task this result answers.
    executor:
        Node that produced the result ("local" executions use the requester).
    success:
        Whether a usable result was produced.
    value:
        The function's return value (``None`` on failure).
    produced_at:
        Virtual time the executor finished computing.
    compute_time_s / transfer_time_s / total_latency_s:
        Timing breakdown filled in by the orchestrator.
    result_size_bytes:
        Serialized size of ``value``.
    failure_reason:
        Human-readable reason when ``success`` is ``False``.
    """

    task_id: int
    executor: str
    success: bool
    value: Any = None
    produced_at: float = 0.0
    compute_time_s: float = 0.0
    transfer_time_s: float = 0.0
    total_latency_s: float = 0.0
    result_size_bytes: int = 0
    failure_reason: str = ""

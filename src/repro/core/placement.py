"""Pluggable placement policies.

The candidate scorer produces a ranked list; a placement policy decides which
entries to actually use (and in what order when retrying).  AirDnD's default
is :class:`BestScorePlacement`; the alternatives exist for the ablation in
experiment E6 and for the baseline comparisons.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

import numpy as np

from repro.core.candidate import CandidateScore
from repro.core.models import TaskDescription


class PlacementPolicy(Protocol):
    """Interface of a placement policy."""

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Pick up to ``count`` candidates from an eligible, ranked list."""
        ...


class BestScorePlacement:
    """Take the top-scoring candidates (AirDnD's default)."""

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Return the first ``count`` candidates of the ranked list."""
        return candidates[:count]


class RoundRobinPlacement:
    """Rotate through candidates across successive tasks.

    Spreads load evenly regardless of score differences; used to show the
    utilisation/latency trade-off in E5/E6.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Return ``count`` candidates starting at a rotating cursor."""
        if not candidates:
            return []
        chosen = []
        for offset in range(min(count, len(candidates))):
            chosen.append(candidates[(self._cursor + offset) % len(candidates)])
        self._cursor = (self._cursor + count) % len(candidates)
        return chosen


class RandomPlacement:
    """Pick uniformly random eligible candidates (a weak baseline)."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng or np.random.default_rng(0)

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Return ``count`` candidates drawn without replacement."""
        if not candidates:
            return []
        count = min(count, len(candidates))
        indices = self._rng.choice(len(candidates), size=count, replace=False)
        return [candidates[int(i)] for i in indices]


class LoadAwarePlacement:
    """Prefer the emptiest queue among near-best candidates.

    Candidates within ``score_tolerance`` of the best score are considered
    equivalent; among them the one with the shortest advertised queue wins.
    """

    def __init__(self, score_tolerance: float = 0.1) -> None:
        if score_tolerance < 0:
            raise ValueError("score_tolerance cannot be negative")
        self.score_tolerance = score_tolerance

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Return ``count`` near-best candidates ordered by queue length."""
        if not candidates:
            return []
        best = candidates[0].score
        near_best = [c for c in candidates if best - c.score <= self.score_tolerance]
        near_best.sort(key=lambda c: (c.neighbor.queue_length, -c.score, c.name))
        remainder = [c for c in candidates if c not in near_best]
        ordered = near_best + remainder
        return ordered[:count]

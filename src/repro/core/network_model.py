"""Building Model 1 (NetworkDescription) from a node's local observations.

A node's network description is materialised *on demand* from the beacons it
has already heard — building it costs no messages and never blocks, which is
what makes the orchestrator asynchronous.  The one derived quantity that needs
real modelling is the **predicted contact time**: how long the neighbour is
expected to remain within communication range, computed in closed form from
both nodes' positions and velocities under a constant-velocity assumption.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.models import NeighborDescription, NetworkDescription
from repro.geometry.vector import Vec2
from repro.mesh.node import MeshNode
from repro.radio.interfaces import RadioEnvironment


def predict_contact_time(
    position_a: Vec2,
    velocity_a: Vec2,
    position_b: Vec2,
    velocity_b: Vec2,
    comm_range: float,
) -> float:
    """Seconds until two constant-velocity nodes drift out of ``comm_range``.

    Solves ``|p + v·t| = comm_range`` for the relative position ``p`` and
    relative velocity ``v``; returns ``inf`` when the nodes never separate
    (zero relative velocity inside range) and ``0`` when already out of range.
    """
    p = position_b - position_a
    v = velocity_b - velocity_a
    if p.length() > comm_range:
        return 0.0
    v_sq = v.length_squared()
    if v_sq < 1e-12:
        return math.inf
    # Solve |p + v t|^2 = R^2  ->  v_sq t^2 + 2 (p·v) t + (|p|^2 - R^2) = 0
    b = 2.0 * p.dot(v)
    c = p.length_squared() - comm_range * comm_range
    discriminant = b * b - 4.0 * v_sq * c
    if discriminant < 0:
        return math.inf
    root = (-b + math.sqrt(discriminant)) / (2.0 * v_sq)
    return max(0.0, root)


class NetworkDescriptionBuilder:
    """Materialises :class:`NetworkDescription` views for one mesh node.

    Parameters
    ----------
    mesh_node:
        The owning node's mesh stack (source of the neighbour table).
    environment:
        The radio environment, used for instantaneous link-quality estimates
        and for the nominal communication range used in contact prediction.
    """

    def __init__(self, mesh_node: MeshNode, environment: RadioEnvironment) -> None:
        self.mesh_node = mesh_node
        self.environment = environment
        self._cache_key: Optional[tuple] = None
        self._cache: Optional[NetworkDescription] = None

    def rebind_mesh(self, mesh_node: MeshNode) -> None:
        """Adopt a freshly built mesh stack (node recovery after a crash).

        The memoised view is dropped: its key was derived from the old
        stack's membership epoch and beacon count, which the new stack
        restarts from zero.
        """
        self.mesh_node = mesh_node
        self._cache_key = None
        self._cache = None

    def _current_key(self, now: float) -> tuple:
        """Cache key: the description only changes when the clock advances,
        positions move (radio position epoch), the membership epoch bumps,
        or another beacon is heard (a refresh from a known neighbour updates
        entry contents without an epoch bump, so the beacon count is part of
        the key)."""
        return (
            now,
            self.environment.position_epoch,
            self.mesh_node.membership.epoch,
            self.mesh_node.beacon_agent.beacons_heard,
        )

    def build(self, now: float) -> NetworkDescription:
        """Build the owner's current network description.

        Memoised on ``(now, position epoch, membership epoch, beacons
        heard)`` so repeated views within one event — e.g. a description
        immediately followed by a :meth:`reachable_headroom` check — do not
        rebuild the neighbour list.  Callers must treat the returned
        description as read-only.
        """
        key = self._current_key(now)
        if self._cache is not None and key == self._cache_key:
            return self._cache
        owner = self.mesh_node.name
        own_position = self.mesh_node.position
        own_velocity = getattr(self.mesh_node.mobile, "velocity", Vec2.zero())
        comm_range = self.environment.max_range

        neighbors = []
        for entry in self.mesh_node.neighbors.entries():
            beacon = entry.beacon
            predicted_position = beacon.predicted_position(now)
            distance = own_position.distance_to(predicted_position)
            link_quality = entry.link_quality
            rate = link_quality.rate_bps if link_quality is not None else 0.0
            snr = link_quality.snr_db if link_quality is not None else 0.0
            contact = predict_contact_time(
                own_position,
                own_velocity,
                predicted_position,
                beacon.velocity,
                comm_range,
            )
            neighbors.append(
                NeighborDescription(
                    name=beacon.sender,
                    position=predicted_position,
                    velocity=beacon.velocity,
                    distance_m=distance,
                    link_rate_bps=rate,
                    link_snr_db=snr,
                    compute_headroom_ops=beacon.compute_headroom_ops,
                    queue_length=beacon.queue_length,
                    data_summary=dict(beacon.data_summary),
                    trust_score=beacon.trust_score,
                    beacon_age_s=entry.age(now),
                    predicted_contact_time_s=contact,
                )
            )
        neighbors.sort(key=lambda n: n.name)
        description = NetworkDescription(
            owner=owner,
            time=now,
            position=own_position,
            neighbors=neighbors,
            epoch=self.mesh_node.membership.epoch,
            # Owner-qualified cache key: downstream consumers (the memoised
            # candidate scorer) may be shared across nodes, so the token must
            # never collide between two owners' views.
            freshness=(owner,) + key,
        )
        self._cache_key = key
        self._cache = description
        return description

    def reachable_headroom(self, now: float) -> float:
        """Total spare compute currently advertised by in-range neighbours."""
        return self.build(now).total_headroom_ops()

"""Model 2 helpers: building and validating task descriptions.

The orchestrator only ships :class:`~repro.core.models.TaskDescription`
objects whose ``function_name`` exists in the shared catalogue and whose
declared cost is consistent with the catalogue's cost model — otherwise a
misbehaving requester could trivially under-declare cost to jump queues.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.compute.faas import FunctionRegistry
from repro.compute.resources import ResourceRequirement
from repro.core.models import DataDescription, TaskDescription

#: Size in bytes of the fixed part of a serialized task description.
TASK_HEADER_BYTES = 200
#: Rough serialized size of one parameter entry.
PARAMETER_BYTES = 50


class TaskValidationError(ValueError):
    """Raised when a task description cannot be accepted."""


def estimate_description_size(parameters: Dict[str, Any]) -> int:
    """Approximate serialized size of a task description in bytes."""
    return TASK_HEADER_BYTES + PARAMETER_BYTES * max(1, len(parameters))


def build_task(
    registry: FunctionRegistry,
    function_name: str,
    parameters: Optional[Dict[str, Any]] = None,
    data: Optional[DataDescription] = None,
    deadline_s: float = 0.0,
    redundancy: int = 1,
) -> TaskDescription:
    """Build a :class:`TaskDescription` bound to a catalogue function.

    The operations and memory fields are filled in from the catalogue's cost
    model so that requester and executor agree on the declared cost.
    """
    if function_name not in registry:
        raise TaskValidationError(f"function {function_name!r} not in shared catalogue")
    parameters = dict(parameters or {})
    definition = registry.get(function_name)
    requirement = definition.requirement(parameters, deadline_s)
    return TaskDescription(
        function_name=function_name,
        parameters=parameters,
        operations=requirement.operations,
        memory_mb=definition.memory_mb,
        data=data,
        deadline_s=deadline_s,
        size_bytes=estimate_description_size(parameters),
        redundancy=redundancy,
    )


def validate_task(registry: FunctionRegistry, task: TaskDescription) -> None:
    """Check an incoming task against the local catalogue.

    Raises :class:`TaskValidationError` when the function is unknown or the
    declared cost is wildly inconsistent (more than 10x off) with the local
    cost model — the executor-side guard for RQ3's integrity concern.
    """
    if task.function_name not in registry:
        raise TaskValidationError(
            f"executor does not know function {task.function_name!r}"
        )
    definition = registry.get(task.function_name)
    expected = float(definition.cost_model(task.parameters))
    if expected > 0 and not (expected / 10.0 <= task.operations <= expected * 10.0):
        raise TaskValidationError(
            f"declared cost {task.operations:.2e} inconsistent with catalogue "
            f"estimate {expected:.2e} for {task.function_name!r}"
        )


def requirement_of(task: TaskDescription) -> ResourceRequirement:
    """Translate a task description into a compute resource requirement."""
    return ResourceRequirement(
        operations=task.operations,
        memory_mb=task.memory_mb,
        deadline=task.deadline_s,
    )

"""The AirDnD core: the paper's contribution.

Everything below ``repro.core`` implements what the paper itself proposes (as
opposed to the substrates it assumes):

* :mod:`repro.core.models` — the three description models.  Model 1
  (:class:`NetworkDescription`), Model 2 (:class:`TaskDescription`) and
  Model 3 (:class:`DataDescription`), plus :class:`TaskResult`.
* :mod:`repro.core.network_model` — builds Model 1 descriptions from a node's
  asynchronous beacon-derived view of its surroundings, including predicted
  contact times.
* :mod:`repro.core.task_model` — helpers for building and validating Model 2
  task descriptions against the shared function catalogue.
* :mod:`repro.core.data_model` — Model 3 matching: which neighbours hold data
  of the required type and quality for a task.
* :mod:`repro.core.candidate` — RQ1: multi-criteria scoring and filtering of
  candidate executor nodes.
* :mod:`repro.core.lifecycle` — the task lifecycle state machine.
* :mod:`repro.core.offloading` — RQ2: the wire protocol for offers, accepts,
  results and rejections over the mesh.
* :mod:`repro.core.trust` — RQ3: reputation, attestation and redundant
  execution with voting.
* :mod:`repro.core.placement` — pluggable placement policies.
* :mod:`repro.core.orchestrator` — the per-node asynchronous in-range
  orchestrator tying it all together.
* :mod:`repro.core.api` — the public facade (:class:`AirDnDNode`,
  :class:`AirDnDOrchestrator`, :class:`AirDnDConfig`).
"""

from repro.core.models import (
    DataDescription,
    NetworkDescription,
    NeighborDescription,
    TaskDescription,
    TaskResult,
)
from repro.core.candidate import CandidateScore, CandidateScorer, ScoringWeights
from repro.core.lifecycle import TaskLifecycle, TaskState
from repro.core.trust import TrustConfig, TrustManager
from repro.core.placement import (
    BestScorePlacement,
    LoadAwarePlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
)
from repro.core.api import AirDnDConfig, AirDnDNode, AirDnDOrchestrator

__all__ = [
    "NetworkDescription",
    "NeighborDescription",
    "TaskDescription",
    "DataDescription",
    "TaskResult",
    "CandidateScorer",
    "CandidateScore",
    "ScoringWeights",
    "TaskLifecycle",
    "TaskState",
    "TrustManager",
    "TrustConfig",
    "PlacementPolicy",
    "BestScorePlacement",
    "RoundRobinPlacement",
    "RandomPlacement",
    "LoadAwarePlacement",
    "AirDnDConfig",
    "AirDnDNode",
    "AirDnDOrchestrator",
]

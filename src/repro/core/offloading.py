"""RQ2: the offloading wire protocol and the executor-side agent.

The protocol is deliberately small — four message types carried over the
mesh transport:

* ``airdnd.offer``   — requester → executor: a :class:`TaskOffer` containing
  the full Model 2 task description.
* ``airdnd.reject``  — executor → requester: the executor cannot (or will
  not) run the task; carries a reason for attribution.
* ``airdnd.result``  — executor → requester: the task's result value plus its
  timing breakdown.
* ``airdnd.attest`` / ``airdnd.attest_reply`` — optional attestation
  challenge/response on first contact (RQ3).

There is no "accept" message: accepting is implicit in eventually sending a
result.  This halves the protocol's message count and keeps the requester's
state machine purely timeout-driven — the asynchronous style the paper calls
for.  The executor side is :class:`ExecutorAgent`; the requester side lives
in :mod:`repro.core.orchestrator`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.compute.faas import FaaSRuntime, InvocationResult
from repro.compute.node import ComputeNode
from repro.core.data_model import pond_satisfies
from repro.core.models import TaskDescription
from repro.core.task_model import TaskValidationError, validate_task
from repro.core.trust import TrustManager
from repro.data.pond import DataPond
from repro.mesh.node import MeshNode
from repro.simcore.simulator import Simulator

_offer_ids = itertools.count()

#: Serialized sizes (bytes) of the small protocol messages.
REJECT_SIZE_BYTES = 120
ATTEST_SIZE_BYTES = 150


@dataclass
class TaskOffer:
    """Requester → executor: please run this task next to your data."""

    task: TaskDescription
    requester: str
    sent_at: float
    offer_id: int = field(default_factory=lambda: next(_offer_ids))


@dataclass
class TaskReject:
    """Executor → requester: not running this one (with a reason)."""

    offer_id: int
    task_id: int
    executor: str
    reason: str


@dataclass
class TaskResultMessage:
    """Executor → requester: the result of an accepted offer."""

    offer_id: int
    task_id: int
    executor: str
    value: Any
    result_size_bytes: int
    compute_time_s: float
    produced_at: float
    success: bool = True


@dataclass
class AttestationChallenge:
    """Requester → executor: prove you are who your beacons claim."""

    nonce: str
    requester: str


@dataclass
class AttestationReply:
    """Executor → requester: keyed digest over the nonce."""

    nonce: str
    executor: str
    response: str


@dataclass
class ExecutorPolicy:
    """Local admission policy of an executor.

    Attributes
    ----------
    max_queue_length:
        Offers are rejected while the local queue is this long or longer.
    min_headroom_ops:
        Offers are rejected when advertised headroom falls below this.
    accept_probability:
        Probability of accepting an otherwise admissible offer (used by
        failure-injection tests; 1.0 in normal operation).
    """

    max_queue_length: int = 4
    min_headroom_ops: float = 0.0
    accept_probability: float = 1.0


class ExecutorAgent:
    """The executor side of the offloading protocol for one node."""

    def __init__(
        self,
        sim: Simulator,
        mesh_node: MeshNode,
        compute: ComputeNode,
        faas: FaaSRuntime,
        pond: DataPond,
        trust: TrustManager,
        policy: Optional[ExecutorPolicy] = None,
        result_corruptor: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.sim = sim
        self.mesh_node = mesh_node
        self.compute = compute
        self.faas = faas
        self.pond = pond
        self.trust = trust
        self.policy = policy or ExecutorPolicy()
        #: Optional hook used by integrity experiments to model a malicious
        #: executor returning fabricated results.
        self.result_corruptor = result_corruptor
        #: Free-rider switch (set by :mod:`repro.faults.adversary`): the
        #: agent accepts admissible offers — no reject is ever sent — but
        #: neither executes nor replies, so the requester burns a full offer
        #: timeout per attempt.
        self.silent = False
        self.offers_received = 0
        self.offers_accepted = 0
        self.offers_rejected = 0
        self.results_sent = 0
        mesh_node.on_receive(self._on_transfer)

    @property
    def name(self) -> str:
        """Name of the node this agent executes for."""
        return self.mesh_node.name

    def rebind_mesh(self, mesh_node: MeshNode) -> None:
        """Adopt a freshly built mesh stack (node recovery after a crash)."""
        self.mesh_node = mesh_node
        mesh_node.on_receive(self._on_transfer)

    # -------------------------------------------------------------- receive

    def _on_transfer(self, source: str, kind: str, payload: Any, _size: int) -> None:
        if kind == "airdnd.offer" and isinstance(payload, TaskOffer):
            self._handle_offer(source, payload)
        elif kind == "airdnd.attest" and isinstance(payload, AttestationChallenge):
            self._handle_attestation(source, payload)

    def _handle_attestation(self, source: str, challenge: AttestationChallenge) -> None:
        reply = AttestationReply(
            nonce=challenge.nonce,
            executor=self.name,
            response=TrustManager.attestation_response(self.name, challenge.nonce),
        )
        self.mesh_node.send_reliable(
            source, reply, ATTEST_SIZE_BYTES, kind="airdnd.attest_reply"
        )

    def _handle_offer(self, source: str, offer: TaskOffer) -> None:
        self.offers_received += 1
        self.sim.monitor.counter("airdnd.offers_received").add()
        task = offer.task

        reason = self._admission_reason(task)
        if reason is not None:
            self._reject(source, offer, reason)
            return

        self.offers_accepted += 1
        self.sim.monitor.counter("airdnd.offers_accepted").add()
        if self.silent:
            # Free-riding: the implicit accept stands, but no work happens
            # and no result (or reject) is ever sent back.
            return
        parameters = dict(task.parameters)
        parameters.setdefault("now", self.sim.now)
        self.faas.invoke(
            task.function_name,
            parameters,
            self.pond,
            on_complete=_ResultReply(self, source, offer),
            deadline=task.deadline_s,
        )

    def _send_result(
        self, source: str, offer: TaskOffer, invocation: InvocationResult
    ) -> None:
        """Wrap a finished invocation in a result message and send it back."""
        value = invocation.result
        if self.result_corruptor is not None:
            value = self.result_corruptor(value)
        message = TaskResultMessage(
            offer_id=offer.offer_id,
            task_id=offer.task.task_id,
            executor=self.name,
            value=value,
            result_size_bytes=invocation.result_size_bytes,
            compute_time_s=invocation.compute_time,
            produced_at=self.sim.now,
            success=value is not None,
        )
        self.results_sent += 1
        self.sim.monitor.counter("airdnd.results_sent").add()
        self.mesh_node.send_reliable(
            source,
            message,
            max(invocation.result_size_bytes, 200),
            kind="airdnd.result",
        )

    # ------------------------------------------------------------ admission

    def _admission_reason(self, task: TaskDescription) -> Optional[str]:
        """Why the task cannot be admitted (None when it can)."""
        try:
            validate_task(self.faas.registry, task)
        except TaskValidationError as error:
            return str(error)
        if self.compute.queue_length >= self.policy.max_queue_length:
            return "executor queue full"
        if self.compute.headroom_ops() < self.policy.min_headroom_ops:
            return "insufficient headroom"
        from repro.core.task_model import requirement_of

        if not self.compute.can_accept(requirement_of(task)):
            return "static resources insufficient"
        ok, data_reason = pond_satisfies(self.pond, task.data, self.sim.now)
        if not ok:
            return data_reason
        if self.policy.accept_probability < 1.0:
            rng = self.sim.streams.get(f"executor-accept:{self.name}")
            if rng.random() > self.policy.accept_probability:
                return "executor declined (policy)"
        return None

    def _reject(self, source: str, offer: TaskOffer, reason: str) -> None:
        self.offers_rejected += 1
        self.sim.monitor.counter("airdnd.offers_rejected").add()
        reject = TaskReject(
            offer_id=offer.offer_id,
            task_id=offer.task.task_id,
            executor=self.name,
            reason=reason,
        )
        self.mesh_node.send_reliable(
            source, reject, REJECT_SIZE_BYTES, kind="airdnd.reject"
        )


class _ResultReply:
    """FaaS completion callback replying to one accepted offer (picklable).

    Lives inside the FaaS runtime / compute queue while the task executes, so
    snapshots must be able to pickle it — the nested closure it replaces
    could not be.
    """

    __slots__ = ("agent", "source", "offer")

    def __init__(self, agent: ExecutorAgent, source: str, offer: TaskOffer) -> None:
        self.agent = agent
        self.source = source
        self.offer = offer

    def __call__(self, invocation: InvocationResult) -> None:
        self.agent._send_result(self.source, self.offer, invocation)

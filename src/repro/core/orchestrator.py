"""The asynchronous in-range orchestrator (requester side).

One :class:`Orchestrator` runs on every AirDnD node.  When the local
application submits a task the orchestrator:

1. materialises a fresh Model 1 :class:`~repro.core.models.NetworkDescription`
   from beacons already heard (no messages, no blocking);
2. filters and ranks candidates with the
   :class:`~repro.core.candidate.CandidateScorer` (RQ1);
3. picks executors with the configured placement policy and sends each a
   ``TaskOffer`` over the mesh (RQ2);
4. arms a per-offer timeout; on result it completes the task, on reject or
   timeout it moves to the next candidate, and when candidates run out it
   falls back to local execution (when allowed and possible) or fails;
5. updates the trust manager on every outcome, and — for redundant tasks —
   collects all replicas' results and majority-votes them (RQ3).

Everything is callback-driven on the simulator; the orchestrator never waits
for a round, a leader, or a membership agreement — "asynchronous, in-range".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.compute.faas import FaaSRuntime, InvocationResult
from repro.compute.node import ComputeNode
from repro.core.candidate import CandidateScore, CandidateScorer
from repro.core.data_model import pond_satisfies
from repro.core.lifecycle import TaskLifecycle, TaskState
from repro.core.models import NetworkDescription, TaskDescription, TaskResult
from repro.core.network_model import NetworkDescriptionBuilder
from repro.core.offloading import (
    TaskOffer,
    TaskReject,
    TaskResultMessage,
)
from repro.core.placement import BestScorePlacement, PlacementPolicy
from repro.core.trust import TrustManager
from repro.data.pond import DataPond
from repro.mesh.node import MeshNode
from repro.simcore.simulator import Simulator

ResultCallback = Callable[[TaskResult], None]


@dataclass
class _PendingTask:
    """Requester-side bookkeeping for one in-flight task."""

    lifecycle: TaskLifecycle
    on_result: Optional[ResultCallback]
    candidates: List[CandidateScore] = field(default_factory=list)
    next_candidate_index: int = 0
    outstanding_offers: Dict[int, str] = field(default_factory=dict)
    collected_results: Dict[str, TaskResultMessage] = field(default_factory=dict)
    replicas_wanted: int = 1
    timed_out_offers: set = field(default_factory=set)


class Orchestrator:
    """Per-node requester-side orchestration engine."""

    def __init__(
        self,
        sim: Simulator,
        mesh_node: MeshNode,
        network_builder: NetworkDescriptionBuilder,
        compute: ComputeNode,
        faas: FaaSRuntime,
        pond: DataPond,
        trust: TrustManager,
        scorer: Optional[CandidateScorer] = None,
        placement: Optional[PlacementPolicy] = None,
        offer_timeout: float = 2.0,
        max_attempts: int = 3,
        allow_local_fallback: bool = True,
    ) -> None:
        self.sim = sim
        self.mesh_node = mesh_node
        self.network_builder = network_builder
        self.compute = compute
        self.faas = faas
        self.pond = pond
        self.trust = trust
        self.scorer = scorer or CandidateScorer()
        self.placement = placement or BestScorePlacement()
        self.offer_timeout = offer_timeout
        self.max_attempts = max_attempts
        self.allow_local_fallback = allow_local_fallback
        #: Gate used by fault injection: a crashed node immediately fails new
        #: submissions instead of orchestrating (or locally executing) them.
        self.accepting = True
        self._pending: Dict[int, _PendingTask] = {}
        self.lifecycles: List[TaskLifecycle] = []
        mesh_node.on_receive(self._on_transfer)

    @property
    def name(self) -> str:
        """Name of the node this orchestrator serves."""
        return self.mesh_node.name

    def rebind_mesh(self, mesh_node: MeshNode) -> None:
        """Adopt a freshly built mesh stack (node recovery after a crash).

        The old stack's transport keeps its receive callbacks but its
        interface stays disabled and detached, so the only live wiring is the
        new one registered here.
        """
        self.mesh_node = mesh_node
        mesh_node.on_receive(self._on_transfer)

    def abort_all(self, reason: str) -> int:
        """Fail every in-flight task (the node crashed / went offline).

        Returns the number of tasks aborted.  Already-armed offer timeouts
        see a terminal lifecycle and become no-ops.
        """
        in_flight = [
            pending
            for pending in list(self._pending.values())
            if not pending.lifecycle.is_terminal
        ]
        for pending in in_flight:
            self._fail(pending, reason)
        return len(in_flight)

    # ------------------------------------------------------------ submission

    def network_description(self) -> NetworkDescription:
        """The node's current Model 1 view (built on demand, costs nothing)."""
        return self.network_builder.build(self.sim.now)

    def submit(
        self, task: TaskDescription, on_result: Optional[ResultCallback] = None
    ) -> TaskLifecycle:
        """Submit a task for orchestration; returns its lifecycle immediately."""
        task = task.with_requester(self.name)
        lifecycle = TaskLifecycle(task=task, created_at=self.sim.now)
        self.lifecycles.append(lifecycle)
        pending = _PendingTask(
            lifecycle=lifecycle,
            on_result=on_result,
            replicas_wanted=max(1, task.redundancy),
        )
        self._pending[task.task_id] = pending
        self.sim.monitor.counter("airdnd.tasks_submitted").add()
        lifecycle.transition(TaskState.SELECTING, self.sim.now)
        if not self.accepting:
            self._fail(pending, "node offline")
            return lifecycle
        self._select_and_dispatch(pending)
        return lifecycle

    # -------------------------------------------------------- candidate flow

    def _select_and_dispatch(self, pending: _PendingTask) -> None:
        task = pending.lifecycle.task
        if not pending.candidates:
            network = self.network_description()
            ranked = self.scorer.rank(network, task)
            pending.candidates = self.placement.choose(ranked, task, count=len(ranked))
        self._dispatch_next(pending)

    def _dispatch_next(self, pending: _PendingTask) -> None:
        task = pending.lifecycle.task
        wanted = pending.replicas_wanted - len(pending.outstanding_offers) - len(
            pending.collected_results
        )
        dispatched = 0
        while dispatched < wanted:
            if pending.lifecycle.attempts >= self.max_attempts + pending.replicas_wanted - 1:
                break
            candidate = self._next_candidate(pending)
            if candidate is None:
                break
            self._send_offer(pending, candidate)
            dispatched += 1
        if dispatched == 0 and not pending.outstanding_offers:
            # No remote options left: local fallback or failure.
            if not pending.collected_results:
                self._execute_locally_or_fail(pending)

    def _next_candidate(self, pending: _PendingTask) -> Optional[CandidateScore]:
        while pending.next_candidate_index < len(pending.candidates):
            candidate = pending.candidates[pending.next_candidate_index]
            pending.next_candidate_index += 1
            if candidate.name not in pending.lifecycle.executors_tried:
                return candidate
        return None

    # --------------------------------------------------------------- offers

    def _send_offer(self, pending: _PendingTask, candidate: CandidateScore) -> None:
        task = pending.lifecycle.task
        offer = TaskOffer(task=task, requester=self.name, sent_at=self.sim.now)
        pending.outstanding_offers[offer.offer_id] = candidate.name
        pending.lifecycle.record_attempt(candidate.name)
        if pending.lifecycle.state == TaskState.SELECTING:
            pending.lifecycle.transition(TaskState.OFFLOADED, self.sim.now)
        self.sim.monitor.counter("airdnd.offers_sent").add()
        self.mesh_node.send_reliable(
            candidate.name,
            offer,
            task.size_bytes,
            kind="airdnd.offer",
            on_complete=_OfferDelivery(self, pending, offer, candidate),
        )
        self.sim.schedule(
            self.offer_timeout,
            _OfferTimeout(self, pending, offer.offer_id),
            name=f"offer-timeout:{task.task_id}",
        )

    def _on_offer_delivery(
        self, delivered: bool, pending: _PendingTask, offer: TaskOffer, candidate: CandidateScore
    ) -> None:
        if delivered:
            return
        # The transport gave up: treat like an immediate timeout for this offer.
        self._handle_offer_failure(pending, offer.offer_id, candidate.name, "transfer failed")

    def _on_offer_timeout(self, pending: _PendingTask, offer_id: int) -> None:
        if pending.lifecycle.is_terminal:
            return
        executor = pending.outstanding_offers.get(offer_id)
        if executor is None:
            return
        self._handle_offer_failure(pending, offer_id, executor, "offer timed out")

    def _handle_offer_failure(
        self, pending: _PendingTask, offer_id: int, executor: str, reason: str
    ) -> None:
        if offer_id in pending.timed_out_offers:
            return
        pending.timed_out_offers.add(offer_id)
        pending.outstanding_offers.pop(offer_id, None)
        self.trust.record_failure(executor)
        self.sim.monitor.counter("airdnd.offer_failures").add()
        if pending.lifecycle.is_terminal:
            return
        if pending.collected_results and not pending.outstanding_offers:
            self._finalize(pending)
            return
        if pending.lifecycle.state == TaskState.OFFLOADED and not pending.outstanding_offers:
            pending.lifecycle.transition(TaskState.SELECTING, self.sim.now)
        if pending.lifecycle.state == TaskState.SELECTING or pending.outstanding_offers:
            self._dispatch_next(pending)

    # -------------------------------------------------------------- receive

    def _on_transfer(self, source: str, kind: str, payload: Any, _size: int) -> None:
        if kind == "airdnd.result" and isinstance(payload, TaskResultMessage):
            self._on_result(source, payload)
        elif kind == "airdnd.reject" and isinstance(payload, TaskReject):
            self._on_reject(source, payload)

    def _on_reject(self, source: str, reject: TaskReject) -> None:
        pending = self._pending.get(reject.task_id)
        if pending is None or pending.lifecycle.is_terminal:
            return
        self.sim.monitor.counter("airdnd.rejects_received").add()
        pending.outstanding_offers.pop(reject.offer_id, None)
        self.trust.record_failure(reject.executor)
        if pending.collected_results and not pending.outstanding_offers:
            self._finalize(pending)
            return
        if pending.lifecycle.state == TaskState.OFFLOADED and not pending.outstanding_offers:
            pending.lifecycle.transition(TaskState.SELECTING, self.sim.now)
        self._dispatch_next(pending)

    def _on_result(self, source: str, message: TaskResultMessage) -> None:
        pending = self._pending.get(message.task_id)
        if pending is None or pending.lifecycle.is_terminal:
            return
        pending.outstanding_offers.pop(message.offer_id, None)
        pending.collected_results[message.executor] = message
        self.sim.monitor.counter("airdnd.results_received").add()
        enough = len(pending.collected_results) >= pending.replicas_wanted
        none_outstanding = not pending.outstanding_offers
        if enough or none_outstanding:
            self._finalize(pending)

    # ------------------------------------------------------------- finishing

    def _finalize(self, pending: _PendingTask) -> None:
        if pending.lifecycle.is_terminal:
            return
        task = pending.lifecycle.task
        results = pending.collected_results
        if not results:
            self._fail(pending, "no results collected")
            return
        if pending.replicas_wanted > 1:
            votes = {name: msg.value for name, msg in results.items()}
            # The vote base is the number of replicas actually solicited
            # (capped at k): a lone surviving result of a k=3 task must not
            # be accepted unvetted, but a fleet too small to supply k
            # replicas still degrades gracefully to voting over what exists.
            solicited = min(
                pending.replicas_wanted, len(set(pending.lifecycle.executors_tried))
            )
            winner_value = self.trust.vote(votes, expected=solicited)
            if winner_value is None:
                self._fail(pending, "redundant executors disagreed")
                return
            winner_name = next(
                name for name, msg in results.items() if msg.value is winner_value
                or msg.value == winner_value
            )
            message = results[winner_name]
        else:
            message = next(iter(results.values()))
            if message.success:
                self.trust.record_success(message.executor)
            else:
                self.trust.record_failure(message.executor)
        if not message.success:
            self._fail(pending, "executor reported failure")
            return
        latency = self.sim.now - pending.lifecycle.created_at
        result = TaskResult(
            task_id=task.task_id,
            executor=message.executor,
            success=True,
            value=message.value,
            produced_at=message.produced_at,
            compute_time_s=message.compute_time_s,
            transfer_time_s=max(0.0, latency - message.compute_time_s),
            total_latency_s=latency,
            result_size_bytes=message.result_size_bytes,
        )
        self._complete(pending, result)

    def _complete(self, pending: _PendingTask, result: TaskResult) -> None:
        lifecycle = pending.lifecycle
        lifecycle.result = result
        lifecycle.transition(TaskState.COMPLETED, self.sim.now)
        self._pending.pop(lifecycle.task.task_id, None)
        self.sim.monitor.counter("airdnd.tasks_completed").add()
        self.sim.monitor.sample("airdnd.task_latency").add(result.total_latency_s)
        if pending.on_result is not None:
            pending.on_result(result)

    def _fail(self, pending: _PendingTask, reason: str) -> None:
        lifecycle = pending.lifecycle
        result = TaskResult(
            task_id=lifecycle.task.task_id,
            executor="",
            success=False,
            failure_reason=reason,
            total_latency_s=self.sim.now - lifecycle.created_at,
        )
        lifecycle.result = result
        lifecycle.transition(TaskState.FAILED, self.sim.now)
        self._pending.pop(lifecycle.task.task_id, None)
        self.sim.monitor.counter("airdnd.tasks_failed").add()
        if pending.on_result is not None:
            pending.on_result(result)

    # --------------------------------------------------------- local fallback

    def _execute_locally_or_fail(self, pending: _PendingTask) -> None:
        task = pending.lifecycle.task
        if not self.allow_local_fallback:
            self._fail(pending, "no eligible candidates and local fallback disabled")
            return
        ok, reason = pond_satisfies(self.pond, task.data, self.sim.now)
        if not ok:
            self._fail(pending, f"no eligible candidates; local data inadequate: {reason}")
            return
        if pending.lifecycle.state in (TaskState.SELECTING, TaskState.OFFLOADED):
            pending.lifecycle.transition(TaskState.EXECUTING_LOCALLY, self.sim.now)
        pending.lifecycle.record_attempt(self.name)
        self.sim.monitor.counter("airdnd.local_executions").add()
        parameters = dict(task.parameters)
        parameters.setdefault("now", self.sim.now)
        self.faas.invoke(
            task.function_name,
            parameters,
            self.pond,
            on_complete=_LocalInvocationDone(self, pending),
            deadline=task.deadline_s,
        )

    def _on_local_invocation(
        self, pending: _PendingTask, invocation: InvocationResult
    ) -> None:
        task = pending.lifecycle.task
        if pending.lifecycle.is_terminal:
            return
        if invocation.result is None:
            self._fail(pending, "local execution rejected by compute node")
            return
        latency = self.sim.now - pending.lifecycle.created_at
        result = TaskResult(
            task_id=task.task_id,
            executor=self.name,
            success=True,
            value=invocation.result,
            produced_at=self.sim.now,
            compute_time_s=invocation.compute_time,
            transfer_time_s=0.0,
            total_latency_s=latency,
            result_size_bytes=invocation.result_size_bytes,
        )
        self._complete(pending, result)

    # ------------------------------------------------------------- reporting

    def completed_lifecycles(self) -> List[TaskLifecycle]:
        """All lifecycles that reached a terminal state."""
        return [l for l in self.lifecycles if l.is_terminal]

    def success_rate(self) -> float:
        """Fraction of terminal tasks that completed successfully."""
        terminal = self.completed_lifecycles()
        if not terminal:
            return 0.0
        return sum(1 for l in terminal if l.succeeded) / len(terminal)


# Long-lived callbacks as picklable classes: these land in the event queue
# (offer timeouts), on transfers (delivery notifications) and in the FaaS
# runtime (local-fallback completion), so the snapshot subsystem must be able
# to pickle them — inline lambdas/closures would break the round-trip.


class _OfferDelivery:
    """Transfer-completion callback of one offer (picklable)."""

    __slots__ = ("orchestrator", "pending", "offer", "candidate")

    def __init__(
        self,
        orchestrator: Orchestrator,
        pending: _PendingTask,
        offer: TaskOffer,
        candidate: CandidateScore,
    ) -> None:
        self.orchestrator = orchestrator
        self.pending = pending
        self.offer = offer
        self.candidate = candidate

    def __call__(self, delivered: bool, _transfer) -> None:
        self.orchestrator._on_offer_delivery(
            delivered, self.pending, self.offer, self.candidate
        )


class _OfferTimeout:
    """Queued offer-timeout callback (picklable)."""

    __slots__ = ("orchestrator", "pending", "offer_id")

    def __init__(
        self, orchestrator: Orchestrator, pending: _PendingTask, offer_id: int
    ) -> None:
        self.orchestrator = orchestrator
        self.pending = pending
        self.offer_id = offer_id

    def __call__(self) -> None:
        self.orchestrator._on_offer_timeout(self.pending, self.offer_id)


class _LocalInvocationDone:
    """FaaS completion callback of a local-fallback execution (picklable)."""

    __slots__ = ("orchestrator", "pending")

    def __init__(self, orchestrator: Orchestrator, pending: _PendingTask) -> None:
        self.orchestrator = orchestrator
        self.pending = pending

    def __call__(self, invocation: InvocationResult) -> None:
        self.orchestrator._on_local_invocation(self.pending, invocation)

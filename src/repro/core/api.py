"""Public facade of the AirDnD framework.

A downstream user needs exactly three things:

* :class:`AirDnDConfig` — every tunable of the framework in one dataclass.
* :class:`AirDnDNode` — attach one to a mobile object (vehicle, roadside
  unit, ...) and it becomes a full AirDnD participant: it beacons, maintains
  its mesh view, lends out its spare compute, stores its sensor data in a
  pond, and can submit tasks of its own.
* :class:`AirDnDOrchestrator` — the requester-side engine inside every node
  (exposed for direct use and for baselines that want to reuse parts of it).

Example
-------

>>> from repro.simcore import Simulator
>>> from repro.radio import RadioEnvironment
>>> from repro.mobility import StaticNode
>>> from repro.geometry import Vec2
>>> from repro.compute import FunctionRegistry, FunctionDefinition
>>> from repro.core.api import AirDnDNode, AirDnDConfig
>>> sim = Simulator(seed=3)
>>> env = RadioEnvironment(sim)
>>> registry = FunctionRegistry()
>>> registry.register(FunctionDefinition("noop", lambda p, d: 42, lambda p: 1e7))
>>> nodes = [AirDnDNode(sim, env, StaticNode(sim, Vec2(float(i * 30), 0.0)), registry)
...          for i in range(2)]
>>> sim.run(until=2.0)   # let beacons flow
>>> from repro.core.task_model import build_task
>>> lifecycle = nodes[0].submit_task(build_task(registry, "noop"))
>>> sim.run(until=10.0)
>>> lifecycle.succeeded
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.compute.faas import FaaSRuntime, FunctionRegistry
from repro.compute.node import ComputeNode
from repro.compute.resources import ResourceSpec
from repro.core.candidate import CandidateScorer, ScoringWeights
from repro.core.lifecycle import TaskLifecycle
from repro.core.models import DataDescription, NetworkDescription, TaskDescription, TaskResult
from repro.core.network_model import NetworkDescriptionBuilder
from repro.core.offloading import ExecutorAgent, ExecutorPolicy
from repro.core.orchestrator import Orchestrator
from repro.core.placement import BestScorePlacement, PlacementPolicy
from repro.core.task_model import build_task
from repro.core.trust import TrustConfig, TrustManager
from repro.data.pond import DataPond
from repro.mesh.messages import Beacon
from repro.mesh.node import MeshNode
from repro.radio.interfaces import RadioEnvironment
from repro.simcore.simulator import Simulator

#: Re-exported requester-side engine; the public name mirrors the paper.
AirDnDOrchestrator = Orchestrator


@dataclass
class AirDnDConfig:
    """All tunables of one AirDnD node.

    The defaults reproduce the configuration used throughout the evaluation;
    benchmarks vary individual fields.
    """

    # --- mesh / discovery ---------------------------------------------------
    beacon_period: float = 0.5
    neighbor_lifetime: float = 3.0
    mtu: int = 2000
    ack_timeout: float = 1.0
    transfer_attempts: int = 3

    # --- candidate selection (RQ1) ------------------------------------------
    scoring_weights: ScoringWeights = field(default_factory=ScoringWeights)
    min_trust: float = 0.3
    contact_margin: float = 1.5
    max_beacon_age_s: float = 2.0

    # --- orchestration (RQ2) -------------------------------------------------
    offer_timeout: float = 2.0
    max_attempts: int = 3
    allow_local_fallback: bool = True

    # --- executor admission ---------------------------------------------------
    executor_max_queue: int = 4
    executor_min_headroom_ops: float = 0.0
    executor_accept_probability: float = 1.0

    # --- compute --------------------------------------------------------------
    compute_spec: ResourceSpec = field(default_factory=ResourceSpec)
    reserve_fraction: float = 0.2
    cold_start_latency: float = 0.25
    warm_start_latency: float = 0.01

    # --- data ------------------------------------------------------------------
    pond_retention_s: float = 5.0

    # --- trust (RQ3) -----------------------------------------------------------
    trust: TrustConfig = field(default_factory=TrustConfig)

    def __post_init__(self) -> None:
        """Fail fast on nonsensical knob values.

        These knobs are swept from the CLI (``repro sweep --set``); a typo
        like ``beacon_period=0`` must raise here, at config construction,
        not hours later as a hung or degenerate simulation.
        """
        if self.beacon_period <= 0:
            raise ValueError(f"beacon_period must be positive, got {self.beacon_period}")
        if self.neighbor_lifetime <= 0:
            raise ValueError(
                f"neighbor_lifetime must be positive, got {self.neighbor_lifetime}"
            )
        if not 0.0 <= self.min_trust <= 1.0:
            raise ValueError(f"min_trust must be in [0, 1], got {self.min_trust}")
        if self.max_beacon_age_s <= 0:
            raise ValueError(
                f"max_beacon_age_s must be positive, got {self.max_beacon_age_s}"
            )
        if self.offer_timeout <= 0:
            raise ValueError(f"offer_timeout must be positive, got {self.offer_timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.transfer_attempts < 1:
            raise ValueError(
                f"transfer_attempts must be at least 1, got {self.transfer_attempts}"
            )

    def scorer(self) -> CandidateScorer:
        """Build a candidate scorer from this configuration."""
        return CandidateScorer(
            weights=self.scoring_weights,
            min_trust=self.min_trust,
            contact_margin=self.contact_margin,
            max_beacon_age_s=self.max_beacon_age_s,
        )


class AirDnDNode:
    """One full AirDnD participant.

    Parameters
    ----------
    sim:
        The simulator.
    environment:
        Shared radio environment.
    mobile:
        Mobility object providing ``name``, ``position`` and (optionally)
        ``velocity``.
    registry:
        The shared function catalogue (must be the same object — or an equal
        catalogue — on every node).
    config:
        Node configuration; defaults reproduce the paper's setup.
    placement:
        Optional placement policy override (defaults to best-score).
    result_corruptor:
        Optional hook making this node a *malicious executor* for integrity
        experiments.
    scorer:
        Optional :class:`~repro.core.candidate.CandidateScorer` to use —
        pass the same instance to every node of a fleet to share one score
        cache (safe because the network view's freshness token is
        owner-qualified; see :class:`CandidateScorer`).  Defaults to a
        private scorer built from ``config``.
    """

    def __init__(
        self,
        sim: Simulator,
        environment: RadioEnvironment,
        mobile: Any,
        registry: FunctionRegistry,
        config: Optional[AirDnDConfig] = None,
        placement: Optional[PlacementPolicy] = None,
        result_corruptor: Optional[Callable[[Any], Any]] = None,
        scorer: Optional[CandidateScorer] = None,
    ) -> None:
        self.sim = sim
        self.environment = environment
        self.config = config or AirDnDConfig()
        self.mobile = mobile
        self.name = mobile.name
        self.registry = registry
        self._crashed = False

        # --- substrates -------------------------------------------------------
        self.mesh = self._build_mesh()
        self.compute = ComputeNode(
            sim,
            spec=self.config.compute_spec,
            owner=self.name,
            reserve_fraction=self.config.reserve_fraction,
        )
        self.faas = FaaSRuntime(
            sim,
            self.compute,
            registry,
            cold_start_latency=self.config.cold_start_latency,
            warm_start_latency=self.config.warm_start_latency,
        )
        self.pond = DataPond(self.name, retention_s=self.config.pond_retention_s)
        self.trust = TrustManager(self.name, self.config.trust)

        # --- AirDnD core -------------------------------------------------------
        self.network_builder = NetworkDescriptionBuilder(self.mesh, environment)
        self.executor = ExecutorAgent(
            sim,
            self.mesh,
            self.compute,
            self.faas,
            self.pond,
            self.trust,
            policy=ExecutorPolicy(
                max_queue_length=self.config.executor_max_queue,
                min_headroom_ops=self.config.executor_min_headroom_ops,
                accept_probability=self.config.executor_accept_probability,
            ),
            result_corruptor=result_corruptor,
        )
        self.orchestrator = Orchestrator(
            sim,
            self.mesh,
            self.network_builder,
            self.compute,
            self.faas,
            self.pond,
            self.trust,
            scorer=scorer or self.config.scorer(),
            placement=placement or BestScorePlacement(),
            offer_timeout=self.config.offer_timeout,
            max_attempts=self.config.max_attempts,
            allow_local_fallback=self.config.allow_local_fallback,
        )
        self.mesh.beacon_agent.add_enricher(self._enrich_beacon)

    def _build_mesh(self) -> MeshNode:
        """One full mesh stack configured from this node's knobs.

        Called at construction and again on :meth:`recover`, where a fresh
        stack is exactly what rejoining demands: empty neighbour table, new
        membership view, clean transport state.
        """
        return MeshNode(
            self.sim,
            self.environment,
            self.mobile,
            beacon_period=self.config.beacon_period,
            neighbor_lifetime=self.config.neighbor_lifetime,
            mtu=self.config.mtu,
            ack_timeout=self.config.ack_timeout,
            max_attempts=self.config.transfer_attempts,
        )

    # ----------------------------------------------------------------- state

    def _enrich_beacon(self, beacon: Beacon) -> Beacon:
        """Attach compute headroom, queue length, data digest and trust."""
        return replace(
            beacon,
            compute_headroom_ops=self.compute.headroom_ops(),
            queue_length=self.compute.queue_length,
            data_summary=self.pond.summary(self.sim.now),
            trust_score=self.trust.self_score(),
            epoch=self.mesh.membership.epoch,
        )

    @property
    def position(self):
        """Current position of the underlying mobile object."""
        return self.mobile.position

    # ------------------------------------------------------------------- API

    def network_description(self) -> NetworkDescription:
        """This node's current Model 1 view."""
        return self.orchestrator.network_description()

    def submit_task(
        self, task: TaskDescription, on_result: Optional[Callable[[TaskResult], None]] = None
    ) -> TaskLifecycle:
        """Submit a Model 2 task for asynchronous in-range orchestration."""
        return self.orchestrator.submit(task, on_result)

    def submit_function(
        self,
        function_name: str,
        parameters: Optional[Dict[str, Any]] = None,
        data: Optional[DataDescription] = None,
        deadline_s: float = 0.0,
        redundancy: int = 1,
        on_result: Optional[Callable[[TaskResult], None]] = None,
    ) -> TaskLifecycle:
        """Convenience wrapper: build a task from the catalogue and submit it."""
        task = build_task(
            self.registry,
            function_name,
            parameters=parameters,
            data=data,
            deadline_s=deadline_s,
            redundancy=redundancy,
        )
        return self.submit_task(task, on_result)

    # -------------------------------------------------------------- lifecycle

    def shutdown(self) -> None:
        """Withdraw the node from the mesh (it stops beaconing and receiving)."""
        self.mesh.shutdown()

    @property
    def crashed(self) -> bool:
        """Whether the node is currently down (see :meth:`crash`)."""
        return self._crashed

    def crash(self) -> None:
        """Take the node down hard, as the fault injector's crash event does.

        Beaconing and neighbour expiry stop, the radio interface is disabled
        *and detached* from the environment (the node is no longer a
        broadcast receiver candidate at all), every in-flight task this node
        submitted fails immediately — a crashed device loses its requester
        state and must not fall back to "local" execution — and new
        submissions fail until :meth:`recover`.  Results an already-running
        local invocation produces later are silently dropped by the disabled
        interface.  Compute, pond and trust state survive, modelling a
        reboot rather than a replacement device.  Idempotent.
        """
        if self._crashed:
            return
        self._crashed = True
        self.mesh.shutdown()
        self.environment.detach(self.name)
        self.orchestrator.accepting = False
        self.orchestrator.abort_all("node crashed")

    def recover(self) -> None:
        """Bring a crashed node back with *fresh* neighbour state.

        A brand-new mesh stack is built (empty neighbour table, membership
        epoch restarted, clean transport) and the executor, orchestrator and
        network-description builder are rebound to it; the beacon enricher is
        re-registered so the node advertises its compute/data/trust state
        again.  The node rejoins the mesh the same way it joined originally:
        by beaconing and hearing beacons.  Idempotent.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.mesh = self._build_mesh()
        self.network_builder.rebind_mesh(self.mesh)
        self.executor.rebind_mesh(self.mesh)
        self.orchestrator.rebind_mesh(self.mesh)
        self.orchestrator.accepting = True
        self.mesh.beacon_agent.add_enricher(self._enrich_beacon)

    # -------------------------------------------------------------- snapshot

    def capture_state(self) -> dict:
        """One node's durable state across every layer, as plain data.

        Aggregates the mesh stack, compute accounting, trust scores and the
        orchestrator's in-flight task set — the per-node half of the
        snapshot protocol.  A crashed node has no mesh attachment, so its
        mesh entry is ``None``.
        """
        return {
            "name": self.name,
            "crashed": self._crashed,
            "mesh": None if self._crashed else self.mesh.capture_state(),
            "compute": self.compute.capture_state(),
            "trust": {
                "scores": dict(sorted(self.trust.recorded_scores().items())),
                "events": len(self.trust.events),
            },
            # Task ids come from a process-global counter whose offset is
            # not observable state; capture the in-flight count only.
            "orchestrator": {
                "accepting": self.orchestrator.accepting,
                "pending_tasks": len(self.orchestrator._pending),
                "lifecycles": len(self.orchestrator.lifecycles),
            },
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply a capture onto this (unpickled) node, layer by layer."""
        if state["name"] != self.name:
            raise ValueError(
                f"node snapshot is for {state['name']!r}, not {self.name!r}"
            )
        if bool(state["crashed"]) != self._crashed:
            raise ValueError(
                f"node {self.name!r}: snapshot crashed={state['crashed']} "
                f"but live node crashed={self._crashed}"
            )
        if state["mesh"] is not None:
            self.mesh.restore_state(state["mesh"])
        self.compute.restore_state(state["compute"])
        self.orchestrator.accepting = bool(state["orchestrator"]["accepting"])

    # --------------------------------------------------------------- metrics

    def completed_tasks(self) -> List[TaskLifecycle]:
        """Terminal lifecycles of tasks this node submitted."""
        return self.orchestrator.completed_lifecycles()

    def bytes_sent(self) -> int:
        """Total bytes this node transmitted over the mesh radio."""
        return self.mesh.interface.bytes_sent

    def bytes_received(self) -> int:
        """Total bytes this node received over the mesh radio."""
        return self.mesh.interface.bytes_received

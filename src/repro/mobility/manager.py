"""The mobility manager: one clock tick moves every mobile node.

The manager owns the list of mobile nodes (anything with ``position`` and an
``advance(dt)`` method), advances them on a fixed period, mirrors their
positions into a :class:`~repro.geometry.spatial_index.SpatialGrid` for range
queries, and optionally records trajectories.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.vector import Vec2
from repro.simcore.simulator import Simulator
from repro.mobility.traces import TrajectoryTrace


class MobilityManager:
    """Advances all registered mobile nodes on a fixed tick.

    Parameters
    ----------
    sim:
        The simulation to schedule ticks on.
    tick:
        Seconds of virtual time between mobility updates.
    cell_size:
        Cell size of the spatial index (metres); pick ~ the radio range.
    record_traces:
        Whether to keep a :class:`TrajectoryTrace` per node.
    """

    def __init__(
        self,
        sim: Simulator,
        tick: float = 0.1,
        cell_size: float = 150.0,
        record_traces: bool = False,
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.sim = sim
        self.tick = tick
        self.grid: SpatialGrid = SpatialGrid(cell_size=cell_size)
        self.record_traces = record_traces
        self.traces: Dict[str, TrajectoryTrace] = {}
        self._nodes: Dict[str, object] = {}
        self._listeners: List[Callable[[float], None]] = []
        #: Bumped whenever node positions may have changed (each tick and on
        #: membership changes); consumers such as the radio environment use
        #: it to invalidate per-epoch caches.
        self.position_epoch = 0
        self._active_nodes_series = sim.monitor.timeseries("mobility.active_nodes")
        self._task = sim.schedule_periodic(
            tick, self._on_tick, start_delay=tick, name="mobility-tick"
        )

    # ---------------------------------------------------------- membership

    def add_node(self, node) -> None:
        """Register a mobile node (must expose ``name``, ``position``, ``advance``)."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate mobile node name {node.name!r}")
        self._nodes[node.name] = node
        self.grid.update(node.name, node.position)
        self.position_epoch += 1
        if self.record_traces:
            trace = TrajectoryTrace(node.name)
            trace.record(self.sim.now, node.position, getattr(node, "speed", 0.0))
            self.traces[node.name] = trace

    def remove_node(self, name: str) -> None:
        """Deregister a node (e.g. a vehicle leaving the simulated area)."""
        self._nodes.pop(name, None)
        self.grid.remove(name)
        self.position_epoch += 1

    @property
    def nodes(self) -> List[object]:
        """All registered mobile nodes."""
        return list(self._nodes.values())

    def node(self, name: str):
        """Look up a node by name."""
        return self._nodes[name]

    def position_of(self, name: str) -> Vec2:
        """Current position of a node."""
        return self._nodes[name].position

    # ------------------------------------------------------------ listeners

    def on_tick(self, callback: Callable[[float], None]) -> None:
        """Register a callback invoked after every mobility update."""
        self._listeners.append(callback)

    # -------------------------------------------------------------- queries

    def neighbors_within(self, name: str, radius: float) -> List[str]:
        """Names of nodes within ``radius`` metres of node ``name``."""
        return self.grid.neighbors_of(name, radius)

    def nodes_within(self, center: Vec2, radius: float) -> List[str]:
        """Names of nodes within ``radius`` metres of an arbitrary point."""
        return self.grid.query_range(center, radius)

    def stop(self) -> None:
        """Stop advancing nodes (used when tearing a scenario down)."""
        self._task.cancel()

    # ---------------------------------------------------------------- tick

    def _on_tick(self) -> None:
        now = self.sim.now
        for node in self._nodes.values():
            node.advance(self.tick)
            self.grid.update(node.name, node.position)
            if self.record_traces:
                self.traces[node.name].record(
                    now, node.position, getattr(node, "speed", 0.0)
                )
        self.position_epoch += 1
        self._active_nodes_series.record(now, float(len(self._nodes)))
        for listener in self._listeners:
            listener(now)

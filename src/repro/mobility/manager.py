"""The mobility manager: one clock tick moves every mobile node.

The manager owns the list of mobile nodes (anything with ``position`` and an
``advance(dt)`` method), advances them on a fixed period, writes their
positions into a shared :class:`~repro.geometry.substrate.SpatialSubstrate`
for range queries, and optionally records trajectories.

The substrate is the *single* spatial structure for the whole simulation:
binding this manager to a :class:`~repro.radio.interfaces.RadioEnvironment`
makes the radio layer query the same grid read-only, so the per-tick
position sync here serves both mobility neighbour queries and radio
broadcast candidate lookup — there is no second mirror pass.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.geometry.spatial_index import SpatialGrid
from repro.geometry.substrate import SpatialSubstrate
from repro.geometry.vector import Vec2
from repro.simcore.simulator import Simulator
from repro.mobility.traces import TrajectoryTrace


class MobilityManager:
    """Advances all registered mobile nodes on a fixed tick.

    Parameters
    ----------
    sim:
        The simulation to schedule ticks on.
    tick:
        Seconds of virtual time between mobility updates.
    cell_size:
        Cell size of the spatial index (metres); pick ~ the radio range.
    record_traces:
        Whether to keep a :class:`TrajectoryTrace` per node.
    """

    def __init__(
        self,
        sim: Simulator,
        tick: float = 0.1,
        cell_size: float = 150.0,
        record_traces: bool = False,
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.sim = sim
        self.tick = tick
        #: The shared spatial substrate this manager writes.  Consumers (the
        #: radio environment, scenario logic) query it read-only and key
        #: their caches on its ``position_epoch``.
        self.substrate: SpatialSubstrate = SpatialSubstrate(cell_size=cell_size)
        self.record_traces = record_traces
        self.traces: Dict[str, TrajectoryTrace] = {}
        self._nodes: Dict[str, object] = {}
        self._listeners: List[Callable[[float], None]] = []
        self._active_nodes_series = sim.monitor.timeseries("mobility.active_nodes")
        self._task = sim.schedule_periodic(
            tick, self._on_tick, start_delay=tick, name="mobility-tick"
        )

    # ----------------------------------------------------- substrate facade

    @property
    def grid(self) -> SpatialGrid:
        """The substrate's underlying grid (kept for backwards compatibility)."""
        return self.substrate.grid

    @property
    def position_epoch(self) -> int:
        """Monotonic counter bumped whenever node positions may have changed.

        Delegates to the substrate, which is the single invalidation source:
        each tick commits one bump, and membership changes bump immediately.
        """
        return self.substrate.position_epoch

    # ---------------------------------------------------------- membership

    def add_node(self, node) -> None:
        """Register a mobile node (must expose ``name``, ``position``, ``advance``)."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate mobile node name {node.name!r}")
        self._nodes[node.name] = node
        self.substrate.update(node.name, node.position)
        if self.record_traces:
            trace = TrajectoryTrace(node.name)
            trace.record(self.sim.now, node.position, getattr(node, "speed", 0.0))
            self.traces[node.name] = trace

    def remove_node(self, name: str) -> None:
        """Deregister a node (e.g. a vehicle leaving the simulated area)."""
        self._nodes.pop(name, None)
        self.substrate.remove(name)

    @property
    def nodes(self) -> List[object]:
        """All registered mobile nodes."""
        return list(self._nodes.values())

    def node(self, name: str):
        """Look up a node by name."""
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        """Whether a node of that name is currently registered.

        Used by the fault injector to decide whether a crash must also pull
        the node out of the mobility substrate (and a recovery put it back).
        """
        return name in self._nodes

    def position_of(self, name: str) -> Vec2:
        """Current position of a node."""
        return self._nodes[name].position

    # ------------------------------------------------------------ listeners

    def on_tick(self, callback: Callable[[float], None]) -> None:
        """Register a callback invoked after every mobility update."""
        self._listeners.append(callback)

    # -------------------------------------------------------------- queries

    def neighbors_within(self, name: str, radius: float) -> List[str]:
        """Names of nodes within ``radius`` metres of node ``name``."""
        return self.substrate.neighbors_of(name, radius)

    def nodes_within(self, center: Vec2, radius: float) -> List[str]:
        """Names of nodes within ``radius`` metres of an arbitrary point."""
        return self.substrate.query_range(center, radius)

    def stop(self) -> None:
        """Stop advancing nodes (used when tearing a scenario down)."""
        self._task.cancel()

    # ---------------------------------------------------------------- tick

    def _on_tick(self) -> None:
        now = self.sim.now
        substrate = self.substrate
        for node in self._nodes.values():
            node.advance(self.tick)
            substrate.update(node.name, node.position)
            if self.record_traces:
                self.traces[node.name].record(
                    now, node.position, getattr(node, "speed", 0.0)
                )
        substrate.commit()
        self._active_nodes_series.record(now, float(len(self._nodes)))
        for listener in self._listeners:
            listener(now)

"""Picklable position providers.

Several layers hold a zero-argument "where is this node right now?"
callable (radio interface bindings, geo routing, sensors).  Historically
those were inline lambdas, which cannot be pickled — and the snapshot
subsystem (:mod:`repro.snapshot`) serialises the whole simulation graph, so
every callback that lives on a long-lived object must survive a pickle
round-trip.  :class:`PositionOf` is the module-level, ``__slots__`` callable
that replaces them: it holds the mobile object and returns its current
position when called, exactly like ``lambda: mobile.position`` did.
"""

from __future__ import annotations

from repro.geometry.vector import Vec2


class PositionOf:
    """Callable returning ``mobile.position`` — a picklable position lambda."""

    __slots__ = ("mobile",)

    def __init__(self, mobile) -> None:
        self.mobile = mobile

    def __call__(self) -> Vec2:
        return self.mobile.position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PositionOf({getattr(self.mobile, 'name', self.mobile)!r})"

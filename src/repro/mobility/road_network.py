"""Road networks as directed graphs with geometry.

A :class:`RoadNetwork` wraps a ``networkx.DiGraph`` whose nodes are named
junctions with 2-D positions and whose edges are road segments with lengths
and speed limits.  Vehicles plan routes over this graph and then follow the
resulting polyline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.geometry.vector import Vec2


class RoadNetwork:
    """A directed road graph with junction positions and speed limits."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    # ------------------------------------------------------------ building

    def add_junction(self, name: str, position: Vec2) -> None:
        """Add a named junction at ``position``."""
        self.graph.add_node(name, position=position)

    def add_road(
        self,
        src: str,
        dst: str,
        speed_limit: float = 13.9,
        bidirectional: bool = True,
    ) -> None:
        """Add a road between two existing junctions.

        ``speed_limit`` is in m/s (13.9 m/s ≈ 50 km/h).  By default roads are
        added in both directions.
        """
        if src not in self.graph or dst not in self.graph:
            raise KeyError(f"both junctions must exist before adding road {src}->{dst}")
        length = self.position_of(src).distance_to(self.position_of(dst))
        self.graph.add_edge(src, dst, length=length, speed_limit=speed_limit)
        if bidirectional:
            self.graph.add_edge(dst, src, length=length, speed_limit=speed_limit)

    # ------------------------------------------------------------- queries

    def position_of(self, junction: str) -> Vec2:
        """Position of a junction."""
        return self.graph.nodes[junction]["position"]

    @property
    def junctions(self) -> List[str]:
        """All junction names."""
        return list(self.graph.nodes)

    def road_length(self, src: str, dst: str) -> float:
        """Length of the road from ``src`` to ``dst`` in metres."""
        return self.graph.edges[src, dst]["length"]

    def speed_limit(self, src: str, dst: str) -> float:
        """Speed limit of the road from ``src`` to ``dst`` in m/s."""
        return self.graph.edges[src, dst]["speed_limit"]

    def neighbors(self, junction: str) -> List[str]:
        """Junctions reachable by one road from ``junction``."""
        return list(self.graph.successors(junction))

    # -------------------------------------------------------------- routing

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Shortest path (by road length) between two junctions."""
        return nx.shortest_path(self.graph, src, dst, weight="length")

    def path_to_polyline(self, path: Sequence[str]) -> List[Vec2]:
        """Convert a junction path to the sequence of waypoint positions."""
        return [self.position_of(junction) for junction in path]

    def random_route(
        self,
        rng: np.random.Generator,
        min_hops: int = 2,
        start: Optional[str] = None,
    ) -> List[str]:
        """Pick a random origin/destination pair and return the path.

        Retries until a path with at least ``min_hops`` edges is found (or
        gives up after a bounded number of attempts and returns the best
        found).
        """
        junctions = self.junctions
        if len(junctions) < 2:
            raise ValueError("need at least two junctions to build a route")
        best: List[str] = []
        for _ in range(64):
            origin = start if start is not None else junctions[int(rng.integers(len(junctions)))]
            dest = junctions[int(rng.integers(len(junctions)))]
            if dest == origin:
                continue
            try:
                path = self.shortest_path(origin, dest)
            except nx.NetworkXNoPath:
                continue
            if len(path) - 1 >= min_hops:
                return path
            if len(path) > len(best):
                best = path
        if not best:
            raise ValueError("could not find any route in the road network")
        return best

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` over all junction positions."""
        xs = [self.position_of(j).x for j in self.junctions]
        ys = [self.position_of(j).y for j in self.junctions]
        return (min(xs), min(ys), max(xs), max(ys))


def manhattan_grid(
    rows: int = 4,
    cols: int = 4,
    spacing: float = 200.0,
    speed_limit: float = 13.9,
) -> RoadNetwork:
    """Build a Manhattan-style grid of ``rows`` x ``cols`` junctions.

    Junctions are named ``"r{i}c{j}"`` and connected to their 4-neighbours by
    bidirectional roads of length ``spacing`` metres.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2 rows and 2 columns")
    network = RoadNetwork()
    for i in range(rows):
        for j in range(cols):
            network.add_junction(f"r{i}c{j}", Vec2(j * spacing, i * spacing))
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                network.add_road(f"r{i}c{j}", f"r{i}c{j + 1}", speed_limit)
            if i + 1 < rows:
                network.add_road(f"r{i}c{j}", f"r{i + 1}c{j}", speed_limit)
    return network


def single_intersection(
    arm_length: float = 200.0,
    speed_limit: float = 13.9,
) -> RoadNetwork:
    """Build a single four-way intersection centred at the origin.

    Junction names: ``center``, ``north``, ``south``, ``east``, ``west``.
    This is the road layout of the "looking around the corner" scenario: an
    occluding building sits in one quadrant so vehicles on crossing arms
    cannot see each other directly.
    """
    network = RoadNetwork()
    network.add_junction("center", Vec2(0.0, 0.0))
    network.add_junction("north", Vec2(0.0, arm_length))
    network.add_junction("south", Vec2(0.0, -arm_length))
    network.add_junction("east", Vec2(arm_length, 0.0))
    network.add_junction("west", Vec2(-arm_length, 0.0))
    for arm in ("north", "south", "east", "west"):
        network.add_road("center", arm, speed_limit)
    return network

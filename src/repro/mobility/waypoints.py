"""Non-vehicular mobile and static edge devices.

Besides vehicles, the AirDnD vision covers generic geographically distributed
edge devices.  Two simple mobility models cover them:

* :class:`StaticNode` — roadside units, parked vehicles, fixed IoT devices.
* :class:`RandomWaypointNode` — the classic random waypoint model: pick a
  uniformly random destination inside a bounding box, move there at a random
  speed, pause, repeat.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry.vector import Vec2
from repro.simcore.entity import SimEntity
from repro.simcore.simulator import Simulator


class StaticNode(SimEntity):
    """An edge device that never moves (e.g. a roadside unit)."""

    def __init__(self, sim: Simulator, position: Vec2, name: Optional[str] = None) -> None:
        super().__init__(sim, name)
        self.position = position
        self.speed = 0.0
        self.heading = Vec2(1.0, 0.0)
        self.finished = False

    @property
    def velocity(self) -> Vec2:
        """Always the zero vector."""
        return Vec2.zero()

    def predicted_position(self, horizon: float) -> Vec2:
        """Static nodes stay where they are."""
        return self.position

    def advance(self, dt: float) -> None:
        """No-op; static nodes do not move."""


class RandomWaypointNode(SimEntity):
    """A device following the random waypoint mobility model."""

    def __init__(
        self,
        sim: Simulator,
        bounds: Tuple[float, float, float, float],
        rng: np.random.Generator,
        speed_range: Tuple[float, float] = (0.5, 2.0),
        pause_range: Tuple[float, float] = (0.0, 5.0),
        name: Optional[str] = None,
        start: Optional[Vec2] = None,
    ) -> None:
        super().__init__(sim, name)
        x_min, y_min, x_max, y_max = bounds
        if x_max <= x_min or y_max <= y_min:
            raise ValueError("bounds must describe a non-empty box")
        self.bounds = bounds
        self._rng = rng
        self.speed_range = speed_range
        self.pause_range = pause_range
        self.position = start if start is not None else self._random_point()
        self.heading = Vec2(1.0, 0.0)
        self.speed = 0.0
        self.finished = False
        self._target = self._random_point()
        self._target_speed = self._random_speed()
        self._pause_remaining = 0.0

    def _random_point(self) -> Vec2:
        x_min, y_min, x_max, y_max = self.bounds
        return Vec2(
            float(self._rng.uniform(x_min, x_max)),
            float(self._rng.uniform(y_min, y_max)),
        )

    def _random_speed(self) -> float:
        low, high = self.speed_range
        return float(self._rng.uniform(low, high))

    def _random_pause(self) -> float:
        low, high = self.pause_range
        return float(self._rng.uniform(low, high))

    @property
    def velocity(self) -> Vec2:
        """Current velocity vector."""
        return self.heading * self.speed

    def predicted_position(self, horizon: float) -> Vec2:
        """Constant-velocity extrapolation (same contract as vehicles)."""
        return self.position + self.velocity * horizon

    def advance(self, dt: float) -> None:
        """Move toward the current waypoint, pausing at arrival."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if self._pause_remaining > 0:
            self._pause_remaining = max(0.0, self._pause_remaining - dt)
            self.speed = 0.0
            return
        to_target = self._target - self.position
        distance = to_target.length()
        step = self._target_speed * dt
        if distance <= step or distance < 1e-9:
            self.position = self._target
            self._target = self._random_point()
            self._target_speed = self._random_speed()
            self._pause_remaining = self._random_pause()
            self.speed = 0.0
            return
        self.heading = to_target.normalized()
        self.speed = self._target_speed
        self.position = self.position + self.heading * step

"""Mobility substrate: road networks and moving nodes.

The paper's evaluation plan relies on vehicles approaching an intersection and
on geographically distributed edge devices in general.  This package supplies
that substrate:

* :class:`~repro.mobility.road_network.RoadNetwork` — a directed graph of
  roads with positions, speed limits and shortest-path routing (built on
  ``networkx``).
* :func:`~repro.mobility.road_network.manhattan_grid` and
  :func:`~repro.mobility.road_network.single_intersection` — generators for
  the two road layouts used in the evaluation.
* :class:`~repro.mobility.vehicle.Vehicle` — a kinematic vehicle following a
  route along the road network with an Intelligent-Driver-Model-style
  car-following law.
* :class:`~repro.mobility.waypoints.RandomWaypointNode` — the classic random
  waypoint model for non-vehicular edge devices.
* :class:`~repro.mobility.manager.MobilityManager` — advances every mobile
  node on a fixed tick and keeps a :class:`~repro.geometry.spatial_index.SpatialGrid`
  up to date for range queries.
* :class:`~repro.mobility.traces.TrajectoryTrace` — per-node position history.
"""

from repro.mobility.road_network import (
    RoadNetwork,
    manhattan_grid,
    single_intersection,
)
from repro.mobility.vehicle import Vehicle, VehicleParameters
from repro.mobility.waypoints import RandomWaypointNode, StaticNode
from repro.mobility.manager import MobilityManager
from repro.mobility.traces import TrajectoryTrace

__all__ = [
    "RoadNetwork",
    "manhattan_grid",
    "single_intersection",
    "Vehicle",
    "VehicleParameters",
    "RandomWaypointNode",
    "StaticNode",
    "MobilityManager",
    "TrajectoryTrace",
]

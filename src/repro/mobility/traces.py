"""Per-node trajectory traces.

Traces support post-hoc analysis (contact-time ground truth, encounter
statistics) and can be exported to a plain CSV-like row format for external
plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geometry.vector import Vec2


@dataclass(frozen=True)
class TracePoint:
    """Position and speed of one node at one instant."""

    time: float
    position: Vec2
    speed: float


class TrajectoryTrace:
    """The time-ordered trajectory of a single node."""

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name
        self.points: List[TracePoint] = []

    def record(self, time: float, position: Vec2, speed: float = 0.0) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.points and time < self.points[-1].time:
            raise ValueError("trace times must be non-decreasing")
        self.points.append(TracePoint(time, position, speed))

    def __len__(self) -> int:
        return len(self.points)

    def position_at(self, time: float) -> Optional[Vec2]:
        """Linearly interpolated position at ``time`` (None outside range)."""
        if not self.points:
            return None
        if time <= self.points[0].time:
            return self.points[0].position
        if time >= self.points[-1].time:
            return self.points[-1].position
        for earlier, later in zip(self.points, self.points[1:]):
            if earlier.time <= time <= later.time:
                span = later.time - earlier.time
                if span <= 0:
                    return later.position
                t = (time - earlier.time) / span
                return earlier.position.lerp(later.position, t)
        return self.points[-1].position

    def total_distance(self) -> float:
        """Total path length travelled."""
        return sum(
            a.position.distance_to(b.position)
            for a, b in zip(self.points, self.points[1:])
        )

    def duration(self) -> float:
        """Seconds between first and last sample."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].time - self.points[0].time

    def mean_speed(self) -> float:
        """Average speed derived from distance over duration."""
        duration = self.duration()
        if duration <= 0:
            return 0.0
        return self.total_distance() / duration

    def to_rows(self) -> List[Tuple[float, float, float, float]]:
        """Export as ``(time, x, y, speed)`` rows."""
        return [(p.time, p.position.x, p.position.y, p.speed) for p in self.points]


def contact_intervals(
    trace_a: TrajectoryTrace,
    trace_b: TrajectoryTrace,
    radius: float,
) -> List[Tuple[float, float]]:
    """Time intervals during which two traced nodes were within ``radius``.

    Samples are compared at the union of both traces' sample times; adjacent
    in-range samples are merged into intervals.  Used as ground truth when
    validating the candidate scorer's contact-time predictions.
    """
    times = sorted(
        {p.time for p in trace_a.points} | {p.time for p in trace_b.points}
    )
    intervals: List[Tuple[float, float]] = []
    start: Optional[float] = None
    for t in times:
        pa = trace_a.position_at(t)
        pb = trace_b.position_at(t)
        in_range = (
            pa is not None and pb is not None and pa.distance_to(pb) <= radius
        )
        if in_range and start is None:
            start = t
        elif not in_range and start is not None:
            intervals.append((start, t))
            start = None
    if start is not None and times:
        intervals.append((start, times[-1]))
    return intervals

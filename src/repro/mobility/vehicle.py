"""Kinematic vehicles following routes over a road network.

Vehicles move along a polyline of waypoints with an Intelligent-Driver-Model
(IDM)-style speed law: they accelerate toward the road's speed limit and
brake smoothly when approaching the end of their route or a leading vehicle
registered as an obstacle.  The model is deliberately simple — the
orchestration layer only consumes positions and velocities — but it produces
realistic approach/depart dynamics at the intersection, which is what drives
contact-time prediction in the AirDnD candidate scorer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry.vector import Vec2
from repro.simcore.entity import SimEntity
from repro.simcore.simulator import Simulator


@dataclass
class VehicleParameters:
    """Tunable parameters of the car-following behaviour.

    Attributes
    ----------
    max_speed:
        Desired cruise speed in m/s (capped by each road's speed limit).
    max_acceleration:
        Comfortable acceleration in m/s².
    max_deceleration:
        Comfortable braking in m/s² (positive number).
    length:
        Vehicle length in metres (used for stopping distance margins).
    """

    max_speed: float = 13.9
    max_acceleration: float = 2.5
    max_deceleration: float = 4.0
    length: float = 4.5


class Vehicle(SimEntity):
    """A vehicle that follows a waypoint route with smooth speed control."""

    def __init__(
        self,
        sim: Simulator,
        route: Sequence[Vec2],
        params: Optional[VehicleParameters] = None,
        name: Optional[str] = None,
        initial_speed: float = 0.0,
        loop_route: bool = False,
    ) -> None:
        super().__init__(sim, name)
        if len(route) < 1:
            raise ValueError("a vehicle needs at least one waypoint")
        self.params = params or VehicleParameters()
        self.route: List[Vec2] = list(route)
        self.loop_route = loop_route
        self.position: Vec2 = self.route[0]
        self.speed: float = float(initial_speed)
        self.heading: Vec2 = Vec2(1.0, 0.0)
        self._waypoint_index = 1 if len(self.route) > 1 else 0
        self.finished = len(self.route) <= 1
        self.distance_travelled = 0.0

    # -------------------------------------------------------------- queries

    @property
    def velocity(self) -> Vec2:
        """Velocity vector (heading scaled by speed)."""
        return self.heading * self.speed

    @property
    def current_target(self) -> Optional[Vec2]:
        """The waypoint the vehicle is currently driving toward."""
        if self.finished:
            return None
        return self.route[self._waypoint_index]

    def remaining_route_length(self) -> float:
        """Metres left to drive along the remaining waypoints."""
        if self.finished:
            return 0.0
        total = self.position.distance_to(self.route[self._waypoint_index])
        for a, b in zip(
            self.route[self._waypoint_index :], self.route[self._waypoint_index + 1 :]
        ):
            total += a.distance_to(b)
        return total

    def predicted_position(self, horizon: float) -> Vec2:
        """Dead-reckoned position ``horizon`` seconds into the future.

        This is exactly the prediction the AirDnD candidate scorer performs on
        remote nodes from their last beacon: constant-velocity extrapolation.
        """
        return self.position + self.velocity * horizon

    # -------------------------------------------------------------- update

    def advance(self, dt: float) -> None:
        """Move the vehicle forward by ``dt`` seconds."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if self.finished:
            self.speed = 0.0
            return

        target = self.route[self._waypoint_index]
        to_target = target - self.position
        distance = to_target.length()

        if distance > 1e-9:
            self.heading = to_target.normalized()

        # Speed control: accelerate toward max_speed, brake for route end.
        remaining = self.remaining_route_length()
        braking_distance = (self.speed ** 2) / (2.0 * self.params.max_deceleration)
        if not self.loop_route and remaining <= braking_distance + self.params.length:
            accel = -self.params.max_deceleration
        else:
            accel = self.params.max_acceleration
        self.speed = max(0.0, min(self.params.max_speed, self.speed + accel * dt))
        if accel < 0 and remaining > 1e-6:
            # Keep a crawl speed while braking so the vehicle still reaches
            # the end of its route instead of stalling short of it.
            self.speed = max(self.speed, min(1.0, self.params.max_speed))

        step = self.speed * dt
        self.distance_travelled += min(step, distance) if distance > 0 else 0.0

        # Consume waypoints, carrying over leftover distance.
        while step >= distance and not self.finished:
            self.position = target
            step -= distance
            self._waypoint_index += 1
            if self._waypoint_index >= len(self.route):
                if self.loop_route:
                    self._waypoint_index = 0
                else:
                    self.finished = True
                    self.speed = 0.0
                    return
            target = self.route[self._waypoint_index]
            to_target = target - self.position
            distance = to_target.length()
            if distance > 1e-9:
                self.heading = to_target.normalized()

        if step > 0 and distance > 1e-9:
            self.position = self.position + self.heading * step

"""Capture/restore of module-level id generators.

Several layers hand out monotonically increasing ids from module-global
``itertools.count`` objects (frame ids, task ids, transfer ids, ...).  Those
counters are *process* state, not object-graph state: unpickling a scenario
does not move them, so a restored run would re-issue ids already used before
the snapshot.  None of the ids leak into reports or delivered-frame logs, so
replay stays byte-identical either way — but in-process bookkeeping (e.g.
dictionaries keyed by transfer id in a scenario that keeps running next to a
restored one) relies on ids never colliding.

Snapshots therefore record every registered counter's next value, and restore
advances each counter to ``max(current, captured)`` — never backwards, so a
restore can never cause an id collision in the restoring process.
"""

from __future__ import annotations

import importlib
import itertools
from typing import Dict

#: label -> (module, attribute) for every module-global id generator.
GLOBAL_COUNTERS = {
    "radio.frame_ids": ("repro.radio.interfaces", "_frame_ids"),
    "radio.cellular_transfer_ids": ("repro.radio.cellular", "_transfer_ids"),
    "mesh.message_ids": ("repro.mesh.messages", "_message_ids"),
    "mesh.transfer_ids": ("repro.mesh.transport", "_transfer_ids"),
    "compute.execution_ids": ("repro.compute.node", "_execution_ids"),
    "core.task_ids": ("repro.core.models", "_task_ids"),
    "core.offer_ids": ("repro.core.offloading", "_offer_ids"),
}


def _next_value(counter: "itertools.count") -> int:
    # itertools.count exposes its next value only through __reduce__.
    return int(counter.__reduce__()[1][0])


def capture_global_counters() -> Dict[str, int]:
    """Next value of every registered id generator, by label."""
    captured: Dict[str, int] = {}
    for label, (module_name, attribute) in GLOBAL_COUNTERS.items():
        module = importlib.import_module(module_name)
        captured[label] = _next_value(getattr(module, attribute))
    return captured


def restore_global_counters(captured: Dict[str, int]) -> None:
    """Advance each registered generator to at least its captured value.

    Counters unknown to this build are ignored (they can only come from a
    newer registry and carry no replay-visible state); registered counters
    missing from ``captured`` are left untouched.
    """
    for label, value in captured.items():
        target = GLOBAL_COUNTERS.get(label)
        if target is None:
            continue
        module_name, attribute = target
        module = importlib.import_module(module_name)
        current = _next_value(getattr(module, attribute))
        setattr(module, attribute, itertools.count(max(current, int(value))))

"""Deterministic checkpoint/restore of full simulation state.

The snapshot subsystem serialises a *running* simulation — clock, event
queue, RNG streams, node state, radio environment, fault timelines — into a
versioned, hash-stamped artifact, and restores it such that continuing the
run is byte-identical to never having stopped (delivered-frame sequences,
reports and RNG draws all match).  See ``docs/SNAPSHOTS.md``.
"""

from repro.snapshot.codec import (
    PICKLE_PROTOCOL,
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotCodec,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)
from repro.snapshot.counters import (
    GLOBAL_COUNTERS,
    capture_global_counters,
    restore_global_counters,
)
from repro.snapshot.scenario import (
    load_snapshot,
    restore_scenario,
    save_snapshot,
    snapshot_scenario,
)
from repro.snapshot.verify import (
    DeliveredFrameLog,
    scenario_fingerprint,
)

__all__ = [
    "PICKLE_PROTOCOL",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotCodec",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "GLOBAL_COUNTERS",
    "capture_global_counters",
    "restore_global_counters",
    "load_snapshot",
    "restore_scenario",
    "save_snapshot",
    "snapshot_scenario",
    "DeliveredFrameLog",
    "scenario_fingerprint",
]

"""Scenario-level snapshot orchestration.

A snapshot payload is the scenario's whole object graph (simulator, event
queue, RNG streams, nodes, radio environment, fault injector, mobility)
plus the process-global id counters.  Ephemeral derived structures — radio
link/fast-plan caches, spatial-grid cell sets — are dropped at capture time
by the layers' ``__getstate__`` hooks and rebuilt on demand after restore;
``docs/SNAPSHOTS.md`` tabulates what is captured versus rebuilt.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from repro.snapshot.codec import SnapshotCodec
from repro.snapshot.counters import capture_global_counters, restore_global_counters
from repro.telemetry.trace import current_tracer

_PAYLOAD_KEYS = ("scenario", "counters")


def snapshot_scenario(
    scenario: Any, metadata: Optional[Dict[str, Any]] = None
) -> bytes:
    """Serialise ``scenario`` (mid-run or idle) into one snapshot artifact."""
    tracer = current_tracer()
    trace_start = tracer.clock() if tracer is not None else 0.0
    codec = SnapshotCodec()
    payload = {
        "scenario": scenario,
        "counters": capture_global_counters(),
    }
    header_metadata: Dict[str, Any] = {
        "scenario": scenario.name,
        "time": scenario.sim.now,
        "seed": getattr(getattr(scenario, "config", None), "seed", None),
        "node_count": len(scenario.nodes),
        "pending_events": scenario.sim.pending_events,
    }
    if metadata:
        header_metadata.update(metadata)
    blob = codec.encode(payload, header_metadata)
    if tracer is not None:
        tracer.span(
            "snapshot_capture",
            "snapshot",
            trace_start,
            sim_time=scenario.sim.now,
            args={"scenario": scenario.name, "bytes": len(blob)},
        )
    return blob


def restore_scenario(blob: bytes) -> Tuple[Any, Dict[str, Any]]:
    """Rebuild a scenario from a snapshot artifact.

    Returns ``(scenario, header)``.  The global id counters are advanced to
    at least their captured values so the restored run never re-issues ids.
    """
    tracer = current_tracer()
    trace_start = tracer.clock() if tracer is not None else 0.0
    payload, header = SnapshotCodec().decode(blob)
    if not isinstance(payload, dict) or any(k not in payload for k in _PAYLOAD_KEYS):
        raise ValueError(
            "snapshot payload is not a scenario snapshot (missing "
            f"{_PAYLOAD_KEYS}); was this artifact written by snapshot_scenario?"
        )
    restore_global_counters(payload["counters"])
    scenario = payload["scenario"]
    if tracer is not None:
        tracer.span(
            "snapshot_restore",
            "snapshot",
            trace_start,
            sim_time=scenario.sim.now,
            args={"scenario": header.get("scenario"), "bytes": len(blob)},
        )
    return scenario, header


def save_snapshot(
    scenario: Any, path: str, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Snapshot ``scenario`` to ``path``; returns the written header."""
    blob = snapshot_scenario(scenario, metadata)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(blob)
    return SnapshotCodec().read_header(blob)


def load_snapshot(path: str) -> Tuple[Any, Dict[str, Any]]:
    """Restore a scenario from the artifact at ``path``."""
    with open(path, "rb") as handle:
        blob = handle.read()
    return restore_scenario(blob)

"""The snapshot wire format: versioned, hash-stamped, loudly validated.

A snapshot artifact has three parts::

    MAGIC (10 bytes) | header length (4 bytes, big-endian) | JSON header | payload

The header carries the format version, the payload's SHA-256 and byte
length, and free-form metadata (scenario name, virtual time, seed, ...)
readable without touching the payload.  The payload is a pickle (fixed
protocol, so the same state always serialises the same way) of the
simulation's object graph.

Every failure mode is a distinct, loud error:

* :class:`SnapshotFormatError` — not a snapshot at all, or truncated;
* :class:`SnapshotVersionError` — a snapshot from an incompatible format
  version (never silently reinterpreted);
* :class:`SnapshotIntegrityError` — the payload does not hash to the value
  stamped in the header (bit rot, truncation, tampering).
"""

from __future__ import annotations

import hashlib
import json
import pickle
from typing import Any, Dict, Optional, Tuple

#: Leading bytes of every snapshot artifact.
SNAPSHOT_MAGIC = b"REPROSNAP\x01"

#: Current format version; bumped on any incompatible layout change.
SNAPSHOT_VERSION = 1

#: Pickle protocol pinned so identical state yields identical payload bytes
#: regardless of the writing interpreter's default.
PICKLE_PROTOCOL = 4

_LENGTH_BYTES = 4


class SnapshotError(Exception):
    """Base class of every snapshot codec failure."""


class SnapshotFormatError(SnapshotError):
    """The bytes are not a snapshot artifact (bad magic, truncation, ...)."""


class SnapshotVersionError(SnapshotError):
    """The snapshot uses a format version this codec does not understand."""


class SnapshotIntegrityError(SnapshotError):
    """The payload does not match the hash stamped in the header."""


class SnapshotCodec:
    """Encodes/decodes snapshot artifacts in the versioned wire format."""

    version = SNAPSHOT_VERSION

    def encode(self, payload_obj: Any, metadata: Optional[Dict[str, Any]] = None) -> bytes:
        """Serialise ``payload_obj`` into one self-validating artifact."""
        payload = pickle.dumps(payload_obj, protocol=PICKLE_PROTOCOL)
        # Canonicalise: the unpickler interns instance-__dict__ keys, so a
        # freshly built graph and its restored twin have different string
        # identity patterns and pickle to different bytes.  dumps(loads(...))
        # rounds map both onto the same fixed point, making
        # snapshot-of-restored bit-identical to the original artifact
        # (asserted by tests/snapshot/test_format_stability.py).  One round
        # is *usually* enough, but a set whose colliding members re-enter in
        # iteration order can need another round to settle its slot layout,
        # so iterate until the bytes stop changing.
        for _ in range(8):
            canonical = pickle.dumps(pickle.loads(payload), protocol=PICKLE_PROTOCOL)
            if canonical == payload:
                break
            payload = canonical
        header = {
            "version": self.version,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "metadata": dict(metadata or {}),
        }
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return (
            SNAPSHOT_MAGIC
            + len(header_bytes).to_bytes(_LENGTH_BYTES, "big")
            + header_bytes
            + payload
        )

    # ------------------------------------------------------------- reading

    def read_header(self, blob: bytes) -> Dict[str, Any]:
        """Parse and validate the header without deserialising the payload."""
        header, _ = self._split(blob)
        return header

    def decode(self, blob: bytes) -> Tuple[Any, Dict[str, Any]]:
        """Validate ``blob`` end to end and return ``(payload, header)``."""
        header, payload = self._split(blob)
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header["payload_sha256"]:
            raise SnapshotIntegrityError(
                "snapshot payload hash mismatch: header says "
                f"{header['payload_sha256']}, payload hashes to {digest} — "
                "the artifact is corrupt or was modified"
            )
        return pickle.loads(payload), header

    # ------------------------------------------------------------- internal

    def _split(self, blob: bytes) -> Tuple[Dict[str, Any], bytes]:
        if not isinstance(blob, (bytes, bytearray)):
            raise SnapshotFormatError(
                f"snapshot must be bytes, got {type(blob).__name__}"
            )
        blob = bytes(blob)
        if not blob.startswith(SNAPSHOT_MAGIC):
            raise SnapshotFormatError(
                "not a snapshot artifact (bad magic bytes); expected a file "
                "written by repro.snapshot"
            )
        offset = len(SNAPSHOT_MAGIC)
        if len(blob) < offset + _LENGTH_BYTES:
            raise SnapshotFormatError("snapshot truncated inside header length")
        header_len = int.from_bytes(blob[offset : offset + _LENGTH_BYTES], "big")
        offset += _LENGTH_BYTES
        if len(blob) < offset + header_len:
            raise SnapshotFormatError("snapshot truncated inside header")
        try:
            header = json.loads(blob[offset : offset + header_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotFormatError(f"snapshot header is not valid JSON: {exc}")
        for key in ("version", "payload_sha256", "payload_bytes", "metadata"):
            if key not in header:
                raise SnapshotFormatError(f"snapshot header missing {key!r}")
        if header["version"] != self.version:
            raise SnapshotVersionError(
                f"snapshot format version {header['version']} is not supported "
                f"by this codec (version {self.version}); re-create the "
                "snapshot with the current code"
            )
        payload = blob[offset + header_len :]
        if len(payload) != header["payload_bytes"]:
            raise SnapshotFormatError(
                f"snapshot payload truncated: header says "
                f"{header['payload_bytes']} bytes, artifact holds {len(payload)}"
            )
        return header, payload

"""Byte-identity verification helpers.

Two tools certify that a restored simulation is *the same* simulation:

* :class:`DeliveredFrameLog` — a picklable fleet-wide recorder of every
  delivered frame.  Attached before a run, it travels with snapshots, so a
  restored run keeps appending to the same log; an uninterrupted run and a
  snapshot/restore run must produce equal records.
* :func:`scenario_fingerprint` — one nested, ``==``-comparable plain-data
  dict aggregating every layer's ``capture_state()``.  Equal fingerprints
  mean equal clocks, RNG stream states, queue bookkeeping, caches-excluded
  radio state, fault stacks and per-node mesh/compute/trust state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

#: One delivered frame: (time, sender, receiver, snr_db, rate_bps).
#: Frame ids are deliberately excluded — they come from a process-global
#: counter whose offset is not part of the simulation's observable state.
FrameRecord = Tuple[float, str, str, float, float]


class _InterfaceTap:
    """Picklable per-interface receive callback feeding one shared log."""

    __slots__ = ("log", "sim", "receiver")

    def __init__(self, log: "DeliveredFrameLog", sim: Any, receiver: str) -> None:
        self.log = log
        self.sim = sim
        self.receiver = receiver

    def __call__(self, frame: Any, quality: Any) -> None:
        self.log.records.append(
            (self.sim.now, frame.sender, self.receiver, quality.snr_db, quality.rate_bps)
        )


class DeliveredFrameLog:
    """Fleet-wide delivered-frame recorder that survives snapshots."""

    def __init__(self) -> None:
        self.records: List[FrameRecord] = []

    def attach(self, scenario: Any) -> "DeliveredFrameLog":
        """Tap every node's radio interface in ``scenario``; returns self."""
        for node in scenario.nodes:
            interface = node.mesh.interface
            interface.on_receive(_InterfaceTap(self, scenario.sim, node.name))
        return self

    @staticmethod
    def find(scenario: Any) -> "DeliveredFrameLog":
        """Locate the log attached to a (possibly restored) scenario."""
        for node in scenario.nodes:
            for callback in node.mesh.interface._receive_callbacks:
                if isinstance(callback, _InterfaceTap):
                    return callback.log
        raise LookupError("scenario has no attached DeliveredFrameLog")


def scenario_fingerprint(scenario: Any) -> Dict[str, Any]:
    """Aggregate every layer's ``capture_state()`` into one comparable dict."""
    fingerprint: Dict[str, Any] = {
        "sim": scenario.sim.capture_state(),
        "radio": scenario.environment.capture_state(),
        "nodes": [node.capture_state() for node in scenario.nodes],
    }
    injector = getattr(scenario, "faults", None)
    if injector is not None:
        fingerprint["faults"] = injector.capture_state()
    substrate = getattr(getattr(scenario, "mobility", None), "substrate", None)
    if substrate is not None:
        fingerprint["substrate"] = substrate.capture_state()
    return fingerprint

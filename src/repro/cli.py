"""Command-line interface for running the packaged scenarios.

Usage::

    repro intersection --vehicles 6 --duration 25 --seed 7
    repro urban-grid   --vehicles 20 --duration 30
    repro highway      --vehicles 8  --duration 25
    repro sweep --scenario urban-grid --n 10 20 40 --repetitions 3

(``repro`` is the installed console script; ``python -m repro.cli`` works
identically from a source checkout.)

The scenario commands build the corresponding scenario, run it, and print
the scenario report as an aligned table — the quickest way to poke at the
system without writing any code.  ``sweep`` drives one scenario at several
fleet sizes with seeded repetitions through the
:mod:`~repro.experiments.runner` harness and prints mean/stddev per metric
per point.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.experiments.runner import sweep_scenario
from repro.metrics.report import ResultTable
from repro.scenarios import SCENARIO_BUILDERS, build_scenario as build_named_scenario

#: Metrics shown by ``repro sweep`` unless ``--metrics`` selects others.
DEFAULT_SWEEP_METRICS = [
    "tasks_submitted",
    "tasks_completed",
    "success_rate",
    "mean_task_latency_s",
    "p95_task_latency_s",
    "mesh_bytes",
    "offloaded_tasks",
]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run AirDnD evaluation scenarios from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--duration", type=float, default=20.0,
                        help="virtual seconds to simulate (default: 20)")
    common.add_argument("--seed", type=int, default=0, help="experiment seed (default: 0)")

    intersection = subparsers.add_parser(
        "intersection", parents=[common],
        help="the 'looking around the corner' use case",
    )
    intersection.add_argument("--vehicles", type=int, default=6,
                              help="number of vehicles (default: 6)")

    grid = subparsers.add_parser(
        "urban-grid", parents=[common],
        help="Manhattan grid with a generic compute workload",
    )
    grid.add_argument("--vehicles", type=int, default=20,
                      help="number of vehicles (default: 20)")

    highway = subparsers.add_parser(
        "highway", parents=[common], help="two opposing platoons on a highway"
    )
    highway.add_argument("--vehicles", type=int, default=8,
                         help="vehicles per direction (default: 8)")

    sweep = subparsers.add_parser(
        "sweep", parents=[common],
        help="run one scenario at several fleet sizes with repetitions",
    )
    sweep.add_argument("--scenario", required=True, choices=sorted(SCENARIO_BUILDERS),
                       help="which scenario to sweep")
    sweep.add_argument("--n", type=int, nargs="+", required=True,
                       help="fleet sizes to sweep (e.g. --n 10 20 40)")
    sweep.add_argument("--repetitions", type=int, default=3,
                       help="independent seeded runs per fleet size (default: 3)")
    sweep.add_argument("--metrics", nargs="+", default=None, metavar="METRIC",
                       help="report metrics to tabulate ('all' for every one; "
                            f"default: {' '.join(DEFAULT_SWEEP_METRICS)})")
    return parser


def build_scenario(args: argparse.Namespace):
    """Instantiate the scenario selected on the command line."""
    return build_named_scenario(args.command, n=args.vehicles, seed=args.seed)


def report_table(scenario_name: str, report) -> ResultTable:
    """Render a scenario report as a two-column table."""
    table = ResultTable(f"AirDnD scenario report: {scenario_name}", ["metric", "value"])
    for key, value in report.as_dict().items():
        table.add_row(key, value)
    return table


def sweep_table(args: argparse.Namespace) -> ResultTable:
    """Run the requested sweep and tabulate mean/stddev per metric per size.

    Seeds derive from ``--seed`` the same way single runs do, so two sweeps
    with the same arguments are byte-identical.
    """
    results = sweep_scenario(
        args.scenario,
        fleet_sizes=args.n,
        duration=args.duration,
        repetitions=args.repetitions,
        base_seed=1000 + args.seed,
    )
    collected: dict = {}
    for result in results:
        for run in result.runs:
            collected.update(dict.fromkeys(run))
    if args.metrics is None:
        # Defaults may include metrics a scenario doesn't report; those rows
        # are simply omitted below.
        metrics = DEFAULT_SWEEP_METRICS
    elif args.metrics == ["all"]:
        metrics = list(collected)
    else:
        unknown = [metric for metric in args.metrics if metric not in collected]
        if unknown:
            raise SystemExit(
                f"unknown metric(s): {', '.join(unknown)} "
                f"(available: {', '.join(sorted(collected))})"
            )
        metrics = args.metrics
    table = ResultTable(
        f"AirDnD sweep: {args.scenario} × n={args.n} "
        f"({args.repetitions} reps, {args.duration:g} sim-s)",
        ["n", "metric", "mean", "stddev"],
    )
    for result in results:
        size = result.point.as_dict()["n"]
        for metric in metrics:
            if not result.metric_values(metric):
                continue
            table.add_row(size, metric, result.mean(metric), result.stddev(metric))
    return table


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "sweep":
        print(sweep_table(args).render())
        return 0
    scenario = build_scenario(args)
    report = scenario.run(duration=args.duration)
    print(report_table(args.command, report).render())
    return 0


if __name__ == "__main__":   # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())

"""Command-line interface for running the packaged scenarios.

Usage::

    repro intersection --vehicles 6 --duration 25 --seed 7
    repro urban-grid   --vehicles 20 --duration 30
    repro highway      --vehicles 8  --duration 25
    repro sweep --scenario urban-grid --set n=10,20,40 --repetitions 3
    repro sweep --scenario highway --set n=8,16 --set beacon_period=0.2,0.5 \\
                --jobs 4 --out results.json --out results.csv
    repro serve --port 8517 --snapshot-dir /tmp/evictions

(``repro`` is the installed console script; ``python -m repro.cli`` works
identically from a source checkout.)

The scenario commands build the corresponding scenario, run it, and print
the scenario report as an aligned table — the quickest way to poke at the
system without writing any code.  ``sweep`` drives one scenario over the
cartesian grid of every ``--set`` knob (``--n A B C`` is an alias for
``--set n=A,B,C``) with seeded repetitions through the
:mod:`~repro.experiments.runner` harness, prints mean/stddev per metric per
grid point, optionally fans repetitions out over ``--jobs`` worker processes
(same seeds, byte-identical output), and exports raw runs + aggregates with
``--out results.json`` / ``--out results.csv``.  ``--resume earlier.json``
reuses every (scenario, point params, seed) cell already present in an
earlier JSON export and runs only the missing ones — extend a grid, crash
halfway, or add repetitions without re-simulating what is already on disk.
``--profile`` wraps the sweep in :mod:`cProfile` and prints the top
cumulative hot spots afterwards (``--profile-out stats.prof`` keeps the raw
stats), so performance PRs start from measured data instead of guesses.

Fault & adversary knobs (``crash_rate``, ``mean_downtime``,
``radio_degradation``, ``malicious_fraction``, ``adversary_profile``,
``loss_burst_rate``, ``task_redundancy`` — see ``docs/FAULTS.md``) are
ordinary scenario config knobs, so churn/trust studies sweep like anything
else::

    repro sweep --scenario urban-grid --set malicious_fraction=0,0.1,0.3 \\
                --set crash_rate=0,0.05 --jobs 2 --out faults.json
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional

from repro.experiments.export import export_results, load_sweep_cache
from repro.experiments.runner import (
    SweepGrid,
    run_scenario_once,
    sweep_scenario_grid,
    sweep_scenario_grid_warm,
)
from repro.metrics.report import ResultTable
from repro.scenarios import SCENARIO_BUILDERS, build_scenario as build_named_scenario

#: Metrics shown by ``repro sweep`` unless ``--metrics`` selects others.
DEFAULT_SWEEP_METRICS = [
    "tasks_submitted",
    "tasks_completed",
    "success_rate",
    "mean_task_latency_s",
    "p95_task_latency_s",
    "mesh_bytes",
    "offloaded_tasks",
]

#: Virtual-time cap of the single-repetition probe run that validates
#: ``--metrics`` names *before* the sweep starts.
PROBE_DURATION_S = 2.0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run AirDnD evaluation scenarios from the command line.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--duration", type=float, default=20.0,
                        help="virtual seconds to simulate (default: 20)")
    common.add_argument("--seed", type=int, default=0, help="experiment seed (default: 0)")

    intersection = subparsers.add_parser(
        "intersection", parents=[common],
        help="the 'looking around the corner' use case",
    )
    intersection.add_argument("--vehicles", type=int, default=6,
                              help="number of vehicles (default: 6)")

    grid = subparsers.add_parser(
        "urban-grid", parents=[common],
        help="Manhattan grid with a generic compute workload",
    )
    grid.add_argument("--vehicles", type=int, default=20,
                      help="number of vehicles (default: 20)")

    highway = subparsers.add_parser(
        "highway", parents=[common], help="two opposing platoons on a highway"
    )
    highway.add_argument("--vehicles", type=int, default=8,
                         help="vehicles per direction (default: 8)")

    run_cmd = subparsers.add_parser(
        "run",
        help="run one scenario with optional checkpoint/restore "
             "(see docs/SNAPSHOTS.md)",
    )
    run_cmd.add_argument("--scenario", default=None,
                         type=lambda name: name.replace("_", "-"),
                         choices=sorted(SCENARIO_BUILDERS),
                         help="scenario to run (required unless --from-snapshot)")
    run_cmd.add_argument("--vehicles", type=int, default=None,
                         help="fleet size (scenario default when omitted)")
    run_cmd.add_argument("--duration", type=float, default=None,
                         help="virtual seconds to simulate (default: 20; with "
                              "--from-snapshot: finish the interrupted window, "
                              "or resume to this offset from the window start)")
    run_cmd.add_argument("--seed", type=int, default=0,
                         help="experiment seed (default: 0)")
    run_cmd.add_argument("--snapshot-at", type=float, default=None, metavar="T",
                         help="write a snapshot T virtual seconds into the run, "
                              "then keep running; the pause is byte-neutral")
    run_cmd.add_argument("--snapshot-out", default=None, metavar="PATH",
                         help="path the --snapshot-at artifact is written to")
    run_cmd.add_argument("--from-snapshot", default=None, metavar="PATH",
                         help="restore a snapshot and resume it instead of "
                              "building a scenario")
    run_cmd.add_argument("--trace", default=None, metavar="PATH",
                         help="record a Chrome trace-event JSON of the run "
                              "(open in Perfetto; see docs/OBSERVABILITY.md)")
    run_cmd.add_argument("--trace-sample", type=int, default=1, metavar="K",
                         help="with --trace: keep every K-th span per "
                              "category (default: 1 = keep all)")

    serve = subparsers.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP/WebSocket facade "
             "(see docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8517,
                       help="TCP port to listen on (default: 8517)")
    serve.add_argument("--step-slice", type=int, default=2000, metavar="N",
                       help="events per scheduler slice per session "
                            "(default: 2000)")
    serve.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="directory eviction artifacts are written to "
                            "(default: kept in memory)")
    serve.add_argument("--no-auto-drive", action="store_true",
                       help="do not advance running sessions in the "
                            "background; every slice must be requested "
                            "via POST /sessions/{id}/step")
    serve.add_argument("--server", choices=("auto", "uvicorn", "stdlib"),
                       default="auto",
                       help="ASGI server: uvicorn when installed (the "
                            "[service] extra), else the bundled stdlib "
                            "server (default: auto)")

    sweep = subparsers.add_parser(
        "sweep", parents=[common],
        help="sweep one scenario over a grid of config knobs with repetitions",
    )
    sweep.add_argument("--scenario", required=True,
                       type=lambda name: name.replace("_", "-"),
                       choices=sorted(SCENARIO_BUILDERS),
                       help="which scenario to sweep (underscores accepted: "
                            "urban_grid == urban-grid)")
    sweep.add_argument("--set", dest="sets", action="append", default=None,
                       metavar="KNOB=V1,V2,...",
                       help="one sweep dimension: a scenario config knob and its "
                            "comma-separated values (e.g. --set beacon_period=0.2,0.5); "
                            "repeat for a multi-dimensional cartesian grid")
    sweep.add_argument("--n", type=int, nargs="+", default=None,
                       help="fleet sizes to sweep; alias for --set n=... "
                            "(kept as the first grid dimension)")
    sweep.add_argument("--repetitions", type=int, default=3,
                       help="independent seeded runs per grid point (default: 3)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the (point, repetition) cells; "
                            "seeds and output are identical to --jobs 1 (default: 1)")
    sweep.add_argument("--out", dest="out", action="append", default=None,
                       metavar="PATH",
                       help="export raw runs + aggregates; format from the suffix "
                            "(.json or .csv); repeat for both formats")
    sweep.add_argument("--resume", default=None, metavar="PATH",
                       help="reuse cells already present in an earlier --out "
                            "JSON export, keyed on (scenario, point params, "
                            "seed); only the missing cells run")
    sweep.add_argument("--metrics", nargs="+", default=None, metavar="METRIC",
                       help="report metrics to tabulate ('all' for every one; "
                            f"default: {' '.join(DEFAULT_SWEEP_METRICS)})")
    sweep.add_argument("--profile", action="store_true",
                       help="run the sweep under cProfile and print the top "
                            "cumulative-time hot spots afterwards")
    sweep.add_argument("--profile-top", type=int, default=25, metavar="N",
                       help="number of profile rows to print (default: 25)")
    sweep.add_argument("--profile-out", default=None, metavar="PATH",
                       help="also dump the raw cProfile stats to PATH "
                            "(loadable with pstats / snakeviz)")
    sweep.add_argument("--warm-start", action="store_true",
                       help="for sweeps with a duration dimension: simulate "
                            "one trajectory per (other knobs, repetition), "
                            "snapshot the shortest horizon and warm-start "
                            "every longer cell from it; cells share their "
                            "group's seed across durations by construction")
    sweep.add_argument("--fabric", default=None, metavar="STORE",
                       help="do not run the sweep here: create a durable job "
                            "store at STORE with one pending cell per (point, "
                            "repetition) and exit; drain it with any number "
                            "of `repro worker --store STORE` processes and "
                            "collect with `repro fabric export` "
                            "(see docs/FABRIC.md)")
    sweep.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                       help="with --fabric: seconds a worker lease lasts "
                            "between heartbeats before the cell is "
                            "presumed abandoned (default: 30)")
    sweep.add_argument("--max-attempts", type=int, default=None, metavar="N",
                       help="with --fabric: lease acquisitions a cell gets "
                            "before poison-cell quarantine (default: 5)")
    sweep.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="write one Chrome trace-event JSON per sweep "
                            "cell under DIR (requires --jobs 1; see "
                            "docs/OBSERVABILITY.md)")

    worker = subparsers.add_parser(
        "worker",
        help="drain a fabric job store: claim leased cells, heartbeat, run, "
             "commit results (see docs/FABRIC.md)",
    )
    worker.add_argument("--store", required=True, metavar="PATH",
                        help="the job store created by `repro sweep --fabric`")
    worker.add_argument("--id", dest="worker_id", default=None,
                        help="worker identity recorded on leases "
                             "(default: host:pid)")
    worker.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="exit after completing N cells (default: drain)")
    worker.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="sleep between claim attempts when nothing is "
                             "claimable (default: 0.2)")
    worker.add_argument("--heartbeat", type=float, default=None, metavar="S",
                        help="lease renewal period (default: lease TTL / 4)")
    worker.add_argument("--keep-polling", action="store_true",
                        help="keep polling after the store drains instead of "
                             "exiting (daemon mode; SIGTERM drains cleanly)")
    worker.add_argument("--metrics-port", type=int, default=None, metavar="N",
                        help="serve Prometheus metrics on 127.0.0.1:N for the "
                             "worker's lifetime (0 = any free port)")

    fabric = subparsers.add_parser(
        "fabric",
        help="query and drain fabric job stores (see docs/FABRIC.md)",
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)
    fabric_status = fabric_sub.add_parser(
        "status", help="per-state cell counts and quarantined cells"
    )
    fabric_status.add_argument("--store", required=True, metavar="PATH")
    fabric_status.add_argument("--json", action="store_true",
                               help="print the full status document as JSON")
    fabric_status.add_argument("--prometheus", action="store_true",
                               help="print the store's gauges in Prometheus "
                                    "text exposition format instead")
    fabric_requeue = fabric_sub.add_parser(
        "requeue", help="put failed/quarantined cells back to pending"
    )
    fabric_requeue.add_argument("--store", required=True, metavar="PATH")
    fabric_requeue.add_argument("--states", default="failed,quarantined",
                                metavar="S1,S2",
                                help="states to requeue (default: "
                                     "failed,quarantined)")
    fabric_requeue.add_argument("--expired", action="store_true",
                                help="also requeue leased cells whose "
                                     "deadline already passed")
    fabric_export = fabric_sub.add_parser(
        "export",
        help="reassemble a completed store into the sweep export "
             "(byte-identical to `repro sweep --jobs 1 --out`)",
    )
    fabric_export.add_argument("--store", required=True, metavar="PATH")
    fabric_export.add_argument("--out", dest="out", action="append",
                               required=True, metavar="PATH",
                               help="export path (.json or .csv); repeat "
                                    "for both formats")
    fabric_export.add_argument("--partial", action="store_true",
                               help="export only fully-completed grid points "
                                    "of a still-running store")
    return parser


def build_scenario(args: argparse.Namespace):
    """Instantiate the scenario selected on the command line."""
    return build_named_scenario(args.command, n=args.vehicles, seed=args.seed)


def report_table(scenario_name: str, report) -> ResultTable:
    """Render a scenario report as a two-column table."""
    table = ResultTable(f"AirDnD scenario report: {scenario_name}", ["metric", "value"])
    for key, value in report.as_dict().items():
        table.add_row(key, value)
    return table


# ------------------------------------------------------------------ sweeps


def _parse_knob_value(token: str):
    """One ``--set`` value: int, then float, then bool, else raw string."""
    for caster in (int, float):
        try:
            return caster(token)
        except ValueError:
            pass
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return token


#: Scenario-specific fleet-size field names, normalised to the uniform ``n``
#: (passing them through verbatim would collide with the builder's own
#: ``n`` forwarding).
FLEET_KNOB_ALIASES = ("num_vehicles", "vehicles_per_direction")


def parse_sweep_dimensions(args: argparse.Namespace) -> Dict[str, List[object]]:
    """The ordered grid dimensions requested by ``--n`` / ``--set``."""
    dimensions: Dict[str, List[object]] = {}
    if args.n is not None:
        dimensions["n"] = list(args.n)
    for assignment in args.sets or ():
        knob, separator, values = assignment.partition("=")
        knob = knob.strip()
        if not separator or not knob:
            raise SystemExit(f"--set expects KNOB=V1,V2,..., got {assignment!r}")
        if knob == "seed":
            raise SystemExit(
                "the sweep seed is set by --seed (every repetition derives its "
                "own seed from it), not by --set seed=..."
            )
        if knob in FLEET_KNOB_ALIASES:
            knob = "n"
        if knob in dimensions:
            raise SystemExit(f"duplicate sweep dimension {knob!r}")
        tokens = [token.strip() for token in values.split(",") if token.strip()]
        if not tokens:
            raise SystemExit(f"--set {knob}= needs at least one value")
        dimensions[knob] = [_parse_knob_value(token) for token in tokens]
    if not dimensions:
        raise SystemExit("sweep needs at least one dimension (--set KNOB=... or --n ...)")
    return dimensions


def validate_sweep_metrics(args: argparse.Namespace, dimensions) -> Optional[List[str]]:
    """Fail fast on unknown ``--metrics`` names, before the sweep runs.

    A typo used to surface only *after* the entire sweep had finished.  A
    single cheap probe repetition (first grid point, duration capped at
    :data:`PROBE_DURATION_S`) now collects the scenario's metric names up
    front — the report's key set does not depend on duration or knob values,
    so the probe is authoritative.  Returns the metric list to tabulate, or
    ``None`` when it must be derived from the sweep results (``all``).
    """
    if args.metrics is None:
        # Defaults may include metrics a scenario doesn't report; those rows
        # are simply omitted from the table.
        return DEFAULT_SWEEP_METRICS
    if args.metrics == ["all"]:
        return None
    probe_params = {knob: values[0] for knob, values in dimensions.items()}
    probe_params.setdefault("duration", min(args.duration, PROBE_DURATION_S))
    probe_params["duration"] = min(float(probe_params["duration"]), PROBE_DURATION_S)
    available = run_scenario_once(args.scenario, seed=1000 + args.seed, **probe_params)
    unknown = [metric for metric in args.metrics if metric not in available]
    if unknown:
        raise SystemExit(
            f"unknown metric(s): {', '.join(unknown)} "
            f"(available: {', '.join(sorted(available))})"
        )
    return args.metrics


def load_resume_cache(args: argparse.Namespace):
    """Load and sanity-check the ``--resume`` cache (None when not asked for).

    A resume file written for a different scenario would silently satisfy
    zero cells (seeds/params would not match anyway), but failing loudly
    catches the much likelier operator mistake of pointing at the wrong
    export.
    """
    if args.resume is None:
        return None
    try:
        cache = load_sweep_cache(args.resume)
    except FileNotFoundError:
        raise SystemExit(f"--resume: no such file: {args.resume!r}")
    except (ValueError, OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"--resume: cannot use {args.resume!r}: {error}")
    if cache.scenario is not None and cache.scenario != args.scenario:
        raise SystemExit(
            f"--resume: {args.resume!r} holds a {cache.scenario!r} sweep, "
            f"not {args.scenario!r}"
        )
    if cache.duration is not None and cache.duration != args.duration:
        # A cell's metrics are only valid for the duration they were
        # simulated at; silently reusing them would mislabel the export.
        raise SystemExit(
            f"--resume: {args.resume!r} was swept at --duration "
            f"{cache.duration:g}, not {args.duration:g}"
        )
    return cache


def sweep_table(
    args: argparse.Namespace, profile_worker_stats: Optional[str] = None
) -> ResultTable:
    """Run the requested sweep and tabulate mean/stddev per metric per point.

    Seeds derive from ``--seed`` the same way single runs do, so two sweeps
    with the same arguments are byte-identical — including across ``--jobs``
    settings, and against the historical ``--n``-only command line.
    """
    dimensions = parse_sweep_dimensions(args)
    for path in args.out or ():   # fail on a bad suffix before, not after, the sweep
        if not path.lower().endswith((".json", ".csv")):
            raise SystemExit(
                f"cannot infer export format from {path!r} (use .json or .csv)"
            )
    cache = load_resume_cache(args)
    metrics = validate_sweep_metrics(args, dimensions)
    grid = SweepGrid(dimensions)
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is not None and args.jobs != 1:
        raise SystemExit(
            "--trace-dir records per-cell traces sequentially; drop --jobs"
        )
    if args.warm_start:
        if trace_dir is not None:
            raise SystemExit("--trace-dir does not support --warm-start")
        if "duration" not in grid.dimensions:
            raise SystemExit(
                "--warm-start needs a duration dimension "
                "(e.g. --set duration=10,30,60)"
            )
        if args.jobs != 1:
            raise SystemExit(
                "--warm-start simulates each trajectory sequentially; "
                "drop --jobs"
            )
        if cache is not None:
            raise SystemExit("--warm-start does not support --resume")
        results = sweep_scenario_grid_warm(
            args.scenario,
            grid,
            repetitions=args.repetitions,
            base_seed=1000 + args.seed,
        )
    else:
        results = sweep_scenario_grid(
            args.scenario,
            grid,
            duration=args.duration,
            repetitions=args.repetitions,
            base_seed=1000 + args.seed,
            jobs=args.jobs,
            cache=cache,
            profile_worker_stats=profile_worker_stats,
            trace_dir=trace_dir,
        )
    if trace_dir is not None:
        print(f"traces: one Chrome trace-event file per fresh cell in {trace_dir}")
    if cache is not None:
        total = len(grid) * args.repetitions
        print(
            f"resume: reused {cache.hits} of {total} cells from {args.resume} "
            f"({total - cache.hits} run fresh)"
        )
    if metrics is None:   # --metrics all
        collected: dict = {}
        for result in results:
            for run in result.runs:
                collected.update(dict.fromkeys(run))
        metrics = list(collected)
    for path in args.out or ():
        export_results(
            path,
            results,
            dimensions=grid.dimension_names,
            scenario=args.scenario,
            grid=dict(dimensions),
            duration=args.duration,
            repetitions=args.repetitions,
            base_seed=1000 + args.seed,
            jobs=args.jobs,
        )
    grid_label = " × ".join(f"{name}={values}" for name, values in dimensions.items())
    table = ResultTable(
        f"AirDnD sweep: {args.scenario} × {grid_label} "
        f"({args.repetitions} reps, {args.duration:g} sim-s)",
        [*grid.dimension_names, "metric", "mean", "stddev"],
    )
    for result in results:
        params = result.point.as_dict()
        prefix = [params[name] for name in grid.dimension_names]
        for metric in metrics:
            if not result.metric_values(metric):
                continue
            table.add_row(*prefix, metric, result.mean(metric), result.stddev(metric))
    return table


def run_profiled_sweep(args: argparse.Namespace) -> None:
    """Run the sweep under :mod:`cProfile` and print the hot spots after it.

    Perf work starts from data: the sweep table prints first, then the
    top-``--profile-top`` functions by cumulative time; ``--profile-out``
    dumps the raw stats for offline tooling.  cProfile is per-process, so a
    ``--jobs > 1`` sweep additionally profiles one representative cell in a
    worker and merges its stats into the report (``pstats.Stats.add``);
    the merge samples a single cell, so a warning still points at
    ``--jobs 1`` for exact numbers.
    """
    import cProfile
    import os
    import pstats
    import sys
    import tempfile

    worker_stats_path: Optional[str] = None
    if args.jobs > 1:
        handle, worker_stats_path = tempfile.mkstemp(suffix=".prof")
        os.close(handle)
        print(
            "warning: --profile instruments this process plus one sampled "
            f"cell from the --jobs {args.jobs} workers doing the actual "
            "simulation work. Re-run with --jobs 1 to profile every cell.",
            file=sys.stderr,
        )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        table = sweep_table(args, profile_worker_stats=worker_stats_path)
    finally:
        profiler.disable()
    print(table.render())
    stats = pstats.Stats(profiler)
    if worker_stats_path is not None:
        # The file only exists when at least one fresh cell actually ran
        # (a fully --resume-cached sweep never profiles a worker).
        if os.path.getsize(worker_stats_path) > 0:
            stats.add(worker_stats_path)
        os.unlink(worker_stats_path)
    if args.profile_out:
        stats.dump_stats(args.profile_out)
    stats.sort_stats("cumulative")
    print(f"profile: top {args.profile_top} functions by cumulative time")
    stats.print_stats(args.profile_top)


# ------------------------------------------------------------------ fabric


def submit_fabric_sweep(args: argparse.Namespace) -> int:
    """``repro sweep --fabric STORE``: populate a job store, run nothing.

    The store records the same grid/seed/duration metadata a sequential
    sweep would export, so after workers drain it ``repro fabric export``
    reproduces the ``--jobs 1 --out`` files byte for byte.
    """
    from repro.fabric import DEFAULT_LEASE_TTL, DEFAULT_MAX_ATTEMPTS, submit_grid
    from repro.fabric.store import FabricError

    for flag, name in (
        (args.warm_start, "--warm-start"),
        (args.profile, "--profile"),
        (args.out, "--out"),
        (getattr(args, "trace_dir", None), "--trace-dir"),
    ):
        if flag:
            raise SystemExit(
                f"--fabric submits cells for workers to run; {name} belongs "
                "to the in-process sweep (export later with "
                "`repro fabric export`)"
            )
    if args.jobs != 1:
        raise SystemExit(
            "--fabric replaces --jobs: parallelism comes from running "
            "`repro worker` processes against the store"
        )
    dimensions = parse_sweep_dimensions(args)
    cache = load_resume_cache(args)
    grid = SweepGrid(dimensions)
    try:
        store = submit_grid(
            args.fabric,
            args.scenario,
            grid,
            duration=args.duration,
            repetitions=args.repetitions,
            base_seed=1000 + args.seed,
            resume_cache=cache,
            lease_ttl=(
                DEFAULT_LEASE_TTL if args.lease_ttl is None else args.lease_ttl
            ),
            max_attempts=(
                DEFAULT_MAX_ATTEMPTS
                if args.max_attempts is None
                else args.max_attempts
            ),
        )
    except (FabricError, FileExistsError, OSError, ValueError) as error:
        raise SystemExit(f"--fabric: {error}")
    counts = store.counts()
    total = sum(counts.values())
    print(
        f"fabric: submitted {total} cells "
        f"({counts['done']} preloaded from --resume, "
        f"{counts['pending']} pending) to {args.fabric}"
    )
    print(
        f"drain with: repro worker --store {args.fabric}   (any number of "
        f"processes); then: repro fabric export --store {args.fabric} "
        f"--out results.json"
    )
    store.close()
    return 0


def worker_command(args: argparse.Namespace) -> int:
    """The ``repro worker`` subcommand: one pull-based fabric worker."""
    from repro.fabric import FabricWorker
    from repro.fabric.store import FabricError
    from repro.fabric.worker import worker_metrics_render

    try:
        worker = FabricWorker(
            args.store,
            worker_id=args.worker_id,
            heartbeat_interval=args.heartbeat,
            poll_interval=args.poll,
            max_cells=args.max_cells,
            exit_when_idle=not args.keep_polling,
            install_signal_handlers=True,
        )
        if args.metrics_port is not None:
            from repro.telemetry import MetricsServer

            with MetricsServer(
                worker_metrics_render(worker), port=args.metrics_port
            ) as server:
                print(
                    f"metrics: http://{server.host}:{server.port}/metrics",
                    flush=True,
                )
                completed = worker.run()
        else:
            completed = worker.run()
    except FileNotFoundError:
        raise SystemExit(f"worker: no such store: {args.store!r}")
    except FabricError as error:
        raise SystemExit(f"worker: {error}")
    print(
        f"worker {worker.worker_id}: {completed} completed, "
        f"{worker.failed} failed, {worker.abandoned} abandoned"
    )
    return 0


def fabric_command(args: argparse.Namespace) -> int:
    """The ``repro fabric`` subcommands: status / requeue / export."""
    from repro.fabric import JobStore, export_store
    from repro.fabric.store import FabricError

    try:
        store = JobStore(args.store)
    except FileNotFoundError:
        raise SystemExit(f"fabric: no such store: {args.store!r}")
    except FabricError as error:
        raise SystemExit(f"fabric: {error}")
    with store:
        if args.fabric_command == "status":
            if args.prometheus:
                from repro.telemetry import job_store_exposition

                print(job_store_exposition(store.observe()), end="")
                return 0
            status = store.status()
            if args.json:
                print(json.dumps(status, indent=2))
                return 0
            states = status["states"]
            print(f"fabric store {args.store}: {status['cells']} cells")
            for state, count in states.items():
                print(f"  {state:>11}: {count}")
            print(f"  lease acquisitions so far: {status['attempts']}")
            for cell in status["quarantined"]:
                print(
                    f"  quarantined {cell['name']} (rep {cell['repetition']}, "
                    f"{cell['attempts']} attempts): {cell['error']}"
                )
            return 0
        if args.fabric_command == "requeue":
            states = tuple(
                token.strip() for token in args.states.split(",") if token.strip()
            )
            try:
                count = store.requeue(states, expired_leases=args.expired)
            except ValueError as error:
                raise SystemExit(f"fabric requeue: {error}")
            print(f"fabric: requeued {count} cells in {args.store}")
            return 0
        # export
        for path in args.out:
            if not path.lower().endswith((".json", ".csv")):
                raise SystemExit(
                    f"cannot infer export format from {path!r} (use .json or .csv)"
                )
        try:
            results = export_store(store, args.out, partial=args.partial)
        except FabricError as error:
            raise SystemExit(f"fabric export: {error}")
        print(
            f"fabric: exported {len(results)} grid points from {args.store} "
            f"to {', '.join(args.out)}"
        )
        return 0


def run_command(args: argparse.Namespace) -> int:
    """The ``repro run`` subcommand: one scenario, optionally checkpointed.

    ``--trace PATH`` activates the telemetry tracer around the whole run and
    writes a Chrome trace-event JSON afterwards; the run's report stays
    byte-identical (the tracer only observes — see docs/OBSERVABILITY.md).
    """
    if args.trace is None:
        return _execute_run(args)
    from repro.telemetry import Tracer, activate

    try:
        tracer = Tracer(sample_every=args.trace_sample)
    except ValueError as error:
        raise SystemExit(f"--trace-sample: {error}")
    with activate(tracer):
        code = _execute_run(args)
    count = tracer.save(args.trace)
    print(f"trace: {count} events written to {args.trace}")
    return code


def _execute_run(args: argparse.Namespace) -> int:
    from repro.scenarios.base import Scenario
    from repro.snapshot import SnapshotCodec, SnapshotError

    if args.from_snapshot is not None:
        if (
            args.scenario is not None
            or args.vehicles is not None
            or args.snapshot_at is not None
            or args.snapshot_out is not None
        ):
            raise SystemExit(
                "--from-snapshot restores a saved run; it cannot be combined "
                "with --scenario/--vehicles/--snapshot-at/--snapshot-out"
            )
        try:
            with open(args.from_snapshot, "rb") as handle:
                blob = handle.read()
            header = SnapshotCodec().read_header(blob)
            scenario = Scenario.restore(blob)
        except FileNotFoundError:
            raise SystemExit(f"--from-snapshot: no such file: {args.from_snapshot!r}")
        except SnapshotError as error:
            raise SystemExit(f"--from-snapshot: {error}")
        meta = header["metadata"]
        print(
            f"restored {meta.get('scenario')!r} snapshot at t={meta.get('time'):g} "
            f"(seed {meta.get('seed')}, {meta.get('node_count')} nodes)"
        )
        try:
            if args.duration is None:
                report = scenario.resume()
            else:
                window_start = scenario._window_end - scenario._window_duration
                report = scenario.resume(until=window_start + args.duration)
        except (RuntimeError, ValueError, TypeError) as error:
            raise SystemExit(f"--from-snapshot: cannot resume: {error}")
        print(report_table(scenario.name, report).render())
        return 0
    if args.scenario is None:
        raise SystemExit("run needs --scenario NAME or --from-snapshot PATH")
    if (args.snapshot_at is None) != (args.snapshot_out is None):
        raise SystemExit("--snapshot-at and --snapshot-out must be given together")
    scenario = build_named_scenario(args.scenario, n=args.vehicles, seed=args.seed)
    duration = 20.0 if args.duration is None else args.duration
    report = scenario.run(
        duration=duration,
        snapshot_at=args.snapshot_at,
        snapshot_to=args.snapshot_out,
    )
    if args.snapshot_out is not None:
        print(f"snapshot written to {args.snapshot_out} at t={args.snapshot_at:g}")
    print(report_table(args.scenario, report).render())
    return 0


def serve_command(args: argparse.Namespace) -> int:
    """The ``repro serve`` subcommand: expose the session service over HTTP.

    Prefers uvicorn when it is installed (the ``[service]`` optional
    extra); otherwise serves through the bundled stdlib ASGI server in
    :mod:`repro.service.httpd` — same app, no extra dependency.
    """
    from repro.service import SessionRegistry, create_app

    registry = SessionRegistry(
        step_slice=args.step_slice, snapshot_dir=args.snapshot_dir
    )
    app = create_app(registry, auto_drive=not args.no_auto_drive)
    backend = args.server
    if backend == "auto":
        try:
            import uvicorn  # noqa: F401
            backend = "uvicorn"
        except ImportError:
            backend = "stdlib"
    print(
        f"repro service on http://{args.host}:{args.port} "
        f"({backend} server, step slice {args.step_slice}; Ctrl-C to stop)"
    )
    if backend == "uvicorn":
        try:
            import uvicorn
        except ImportError:
            raise SystemExit(
                "--server uvicorn: uvicorn is not installed "
                "(pip install 'repro[service]')"
            )
        uvicorn.run(app, host=args.host, port=args.port, log_level="info")
    else:
        from repro.service.httpd import run_server

        run_server(app, host=args.host, port=args.port)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return run_command(args)
    if args.command == "serve":
        return serve_command(args)
    if args.command == "sweep":
        if args.fabric is not None:
            return submit_fabric_sweep(args)
        if args.lease_ttl is not None or args.max_attempts is not None:
            raise SystemExit("--lease-ttl/--max-attempts only apply with --fabric")
        if args.profile:
            run_profiled_sweep(args)
        else:
            print(sweep_table(args).render())
        return 0
    if args.command == "worker":
        return worker_command(args)
    if args.command == "fabric":
        return fabric_command(args)
    scenario = build_scenario(args)
    report = scenario.run(duration=args.duration)
    print(report_table(args.command, report).render())
    return 0


if __name__ == "__main__":   # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())

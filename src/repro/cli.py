"""Command-line interface for running the packaged scenarios.

Usage::

    python -m repro.cli intersection --vehicles 6 --duration 25 --seed 7
    python -m repro.cli urban-grid   --vehicles 20 --duration 30
    python -m repro.cli highway      --vehicles 8  --duration 25

Each command builds the corresponding scenario, runs it, and prints the
scenario report as an aligned table — the quickest way to poke at the system
without writing any code.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.metrics.report import ResultTable
from repro.scenarios.highway import build_highway_scenario
from repro.scenarios.intersection import build_intersection_scenario
from repro.scenarios.urban_grid import build_urban_grid_scenario


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run AirDnD evaluation scenarios from the command line.",
    )
    subparsers = parser.add_subparsers(dest="scenario", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--duration", type=float, default=20.0,
                        help="virtual seconds to simulate (default: 20)")
    common.add_argument("--seed", type=int, default=0, help="experiment seed (default: 0)")

    intersection = subparsers.add_parser(
        "intersection", parents=[common],
        help="the 'looking around the corner' use case",
    )
    intersection.add_argument("--vehicles", type=int, default=6,
                              help="number of vehicles (default: 6)")

    grid = subparsers.add_parser(
        "urban-grid", parents=[common],
        help="Manhattan grid with a generic compute workload",
    )
    grid.add_argument("--vehicles", type=int, default=20,
                      help="number of vehicles (default: 20)")

    highway = subparsers.add_parser(
        "highway", parents=[common], help="two opposing platoons on a highway"
    )
    highway.add_argument("--vehicles", type=int, default=8,
                         help="vehicles per direction (default: 8)")
    return parser


def build_scenario(args: argparse.Namespace):
    """Instantiate the scenario selected on the command line."""
    if args.scenario == "intersection":
        return build_intersection_scenario(num_vehicles=args.vehicles, seed=args.seed)
    if args.scenario == "urban-grid":
        return build_urban_grid_scenario(num_vehicles=args.vehicles, seed=args.seed)
    if args.scenario == "highway":
        return build_highway_scenario(vehicles_per_direction=args.vehicles, seed=args.seed)
    raise ValueError(f"unknown scenario {args.scenario!r}")


def report_table(scenario_name: str, report) -> ResultTable:
    """Render a scenario report as a two-column table."""
    table = ResultTable(f"AirDnD scenario report: {scenario_name}", ["metric", "value"])
    for key, value in report.as_dict().items():
        table.add_row(key, value)
    return table


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    scenario = build_scenario(args)
    report = scenario.run(duration=args.duration)
    print(report_table(args.scenario, report).render())
    return 0


if __name__ == "__main__":   # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())

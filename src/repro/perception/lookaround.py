"""The "looking around the corner" perception task library.

This module defines the FaaS functions that AirDnD offloads in the driving
use case, plus the metrics used to evaluate the benefit.

The two shareable products are:

* ``perceive_objects`` — build an :class:`~repro.perception.objects.ObjectList`
  from the executor's local data pond, restricted to a region of interest.
  Tiny result, ideal for the corner use case.
* ``perceive_occupancy`` — build an
  :class:`~repro.perception.occupancy.OccupancyGrid` over a region of
  interest from local lidar frames.  Larger result, richer geometry.

Both read *only the executor's own pond*; the requesting vehicle never sees
raw frames — exactly the "tasks travel, data stays" inversion of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.geometry.vector import Vec2
from repro.perception.objects import FusedObject, ObjectList
from repro.perception.occupancy import GridSpec, OccupancyGrid

#: Approximate operations to process one lidar frame into an object list.
OBJECT_PIPELINE_OPS_PER_FRAME = 4e7
#: Approximate operations to rasterise one lidar frame into an occupancy grid.
OCCUPANCY_PIPELINE_OPS_PER_FRAME = 1.2e8


# --------------------------------------------------------------------- bodies


def build_local_object_list(parameters: Dict[str, Any], pond: DataPond) -> ObjectList:
    """Compute an object list from the executor's pond.

    Parameters (all optional):

    * ``now`` — current virtual time (defaults to newest frame's timestamp).
    * ``region_center`` / ``region_radius`` — restrict output to a region.
    * ``max_age`` — ignore frames older than this many seconds.
    """
    now = float(parameters.get("now", 0.0))
    max_age = float(parameters.get("max_age", 1.0))
    region_center: Optional[Vec2] = parameters.get("region_center")
    region_radius = float(parameters.get("region_radius", float("inf")))

    frames = pond.frames(DataType.LIDAR_SCAN, now, max_age=max_age)
    if not frames:
        return ObjectList(observer=pond.owner, timestamp=now, objects=[])
    latest = frames[-1]
    objects: List[FusedObject] = []
    for detection in latest.detections:
        if region_center is not None:
            if detection.position.distance_to(region_center) > region_radius:
                continue
        objects.append(
            FusedObject(
                label=detection.label,
                position=detection.position,
                confidence=detection.confidence,
            )
        )
    return ObjectList(observer=pond.owner, timestamp=latest.timestamp, objects=objects)


def build_local_occupancy(parameters: Dict[str, Any], pond: DataPond) -> OccupancyGrid:
    """Rasterise the executor's recent lidar frames into an occupancy grid.

    Required parameter: ``grid_spec`` (a :class:`GridSpec`).  Optional:
    ``now``, ``max_age``.
    """
    spec: GridSpec = parameters["grid_spec"]
    now = float(parameters.get("now", 0.0))
    max_age = float(parameters.get("max_age", 1.0))
    grid = OccupancyGrid(spec)
    for frame in pond.frames(DataType.LIDAR_SCAN, now, max_age=max_age):
        for detection in frame.detections:
            grid.mark_ray_free(frame.origin, detection.position)
            grid.mark_occupied(detection.position)
    return grid


# ----------------------------------------------------------------- cost model


def _object_list_cost(parameters: Dict[str, Any]) -> float:
    frames = float(parameters.get("frame_count_hint", 1))
    return OBJECT_PIPELINE_OPS_PER_FRAME * max(1.0, frames)


def _occupancy_cost(parameters: Dict[str, Any]) -> float:
    frames = float(parameters.get("frame_count_hint", 3))
    return OCCUPANCY_PIPELINE_OPS_PER_FRAME * max(1.0, frames)


def _result_size_bytes(result: Any) -> int:
    """Data-dependent result size (module-level so registries pickle)."""
    return result.size_bytes()


def register_perception_functions(registry: FunctionRegistry) -> None:
    """Register the standard perception functions into a shared registry."""
    registry.register(
        FunctionDefinition(
            name="perceive_objects",
            body=build_local_object_list,
            cost_model=_object_list_cost,
            memory_mb=128.0,
            result_size_bytes=_result_size_bytes,
        )
    )
    registry.register(
        FunctionDefinition(
            name="perceive_occupancy",
            body=build_local_occupancy,
            cost_model=_occupancy_cost,
            memory_mb=256.0,
            result_size_bytes=_result_size_bytes,
        )
    )


# -------------------------------------------------------------------- metrics


@dataclass
class LookAroundMetrics:
    """Evaluation metrics for the looking-around-the-corner experiment (E1).

    ``record_attempt`` is called once per perception round of the ego vehicle
    with the set of ground-truth occluded agents and the set of agents the
    ego ended up knowing about (after local perception or after fusion with
    remote AirDnD results).
    """

    attempts: int = 0
    occluded_present: int = 0
    occluded_detected: int = 0
    detection_latencies: List[float] = field(default_factory=list)
    first_detection_time: Dict[str, float] = field(default_factory=dict)

    def record_attempt(
        self,
        time: float,
        occluded_ground_truth: List[str],
        known_labels: List[str],
    ) -> None:
        """Record one perception round."""
        self.attempts += 1
        known = set(known_labels)
        for label in occluded_ground_truth:
            self.occluded_present += 1
            if label in known:
                self.occluded_detected += 1
                if label not in self.first_detection_time:
                    self.first_detection_time[label] = time

    def occluded_detection_rate(self) -> float:
        """Fraction of occluded-agent observations that were detected."""
        if self.occluded_present == 0:
            return 1.0
        return self.occluded_detected / self.occluded_present

    def detected_agent_count(self) -> int:
        """Number of distinct occluded agents detected at least once."""
        return len(self.first_detection_time)

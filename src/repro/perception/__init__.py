"""Perception substrate: occupancy grids and the look-around-the-corner task.

The paper's driving use case is an autonomous vehicle approaching an occluded
intersection and borrowing other vehicles' viewpoints.  This package provides
the perception machinery that turns data-pond contents into the shareable
artefacts the AirDnD tasks exchange:

* :mod:`repro.perception.occupancy` — 2-D occupancy grids with world↔cell
  transforms, ray-traced free-space marking and grid fusion.
* :mod:`repro.perception.objects` — object lists and list fusion.
* :mod:`repro.perception.visibility` — per-observer visibility statistics.
* :mod:`repro.perception.lookaround` — the perception functions registered
  into the FaaS catalogue and the metrics (occluded-agent detection,
  effective field of view) used by experiment E1.
"""

from repro.perception.occupancy import GridSpec, OccupancyGrid
from repro.perception.objects import FusedObject, ObjectList, fuse_object_lists
from repro.perception.visibility import observer_visibility
from repro.perception.lookaround import (
    LookAroundMetrics,
    build_local_object_list,
    build_local_occupancy,
    register_perception_functions,
)

__all__ = [
    "GridSpec",
    "OccupancyGrid",
    "ObjectList",
    "FusedObject",
    "fuse_object_lists",
    "observer_visibility",
    "register_perception_functions",
    "build_local_occupancy",
    "build_local_object_list",
    "LookAroundMetrics",
]

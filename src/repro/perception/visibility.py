"""Per-observer visibility statistics.

Thin helpers over :class:`~repro.geometry.los.VisibilityMap` used by the E1
experiment to quantify how much an observer can see on its own versus after
AirDnD collaboration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.geometry.los import VisibilityMap
from repro.geometry.vector import Vec2


@dataclass(frozen=True)
class VisibilityReport:
    """What one observer can see of a set of targets."""

    observer: str
    visible_labels: Tuple[str, ...]
    occluded_labels: Tuple[str, ...]
    out_of_range_labels: Tuple[str, ...]

    @property
    def visible_fraction(self) -> float:
        """Fraction of all targets that are visible."""
        total = (
            len(self.visible_labels)
            + len(self.occluded_labels)
            + len(self.out_of_range_labels)
        )
        if total == 0:
            return 1.0
        return len(self.visible_labels) / total


def observer_visibility(
    observer_name: str,
    observer_position: Vec2,
    targets: Sequence[Tuple[str, Vec2]],
    visibility: VisibilityMap,
    max_range: float = 80.0,
) -> VisibilityReport:
    """Classify each target as visible, occluded or out of range.

    Line of sight for every in-range target is resolved with one batched
    query against the (indexed) visibility map.
    """
    visible, occluded, out_of_range = [], [], []
    candidates = []
    for label, position in targets:
        if label == observer_name:
            continue
        if observer_position.distance_to(position) > max_range:
            out_of_range.append(label)
        else:
            candidates.append((label, position))
    flags = visibility.line_of_sight_batch(
        observer_position, [position for _, position in candidates]
    )
    for (label, _), seen in zip(candidates, flags):
        (visible if seen else occluded).append(label)
    return VisibilityReport(
        observer=observer_name,
        visible_labels=tuple(visible),
        occluded_labels=tuple(occluded),
        out_of_range_labels=tuple(out_of_range),
    )

"""Object lists: compact, fusable perception products.

Where occupancy grids answer "where is free space", object lists answer
"where are the road users".  They are tiny (tens of bytes per object), which
is why exchanging *object lists computed at the data* is so much cheaper than
exchanging the raw scans they were computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.geometry.vector import Vec2


@dataclass(frozen=True)
class FusedObject:
    """One road user as believed after fusing one or more viewpoints."""

    label: str
    position: Vec2
    confidence: float
    observers: int = 1


@dataclass
class ObjectList:
    """Objects perceived by one observer at one instant."""

    observer: str
    timestamp: float
    objects: List[FusedObject] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.objects)

    def labels(self) -> List[str]:
        """Labels of all contained objects."""
        return [obj.label for obj in self.objects]

    def contains_label(self, label: str) -> bool:
        """Whether an object with ``label`` is present."""
        return any(obj.label == label for obj in self.objects)

    def size_bytes(self) -> int:
        """Serialized size: ~50 bytes per object plus a header."""
        return 64 + 50 * len(self.objects)


def fuse_object_lists(lists: Sequence[ObjectList]) -> ObjectList:
    """Fuse several object lists into one.

    Objects with the same label are merged: positions are confidence-weighted
    averages, confidence follows a noisy-or combination, and the observer
    count is the number of contributing lists.  The fused list's timestamp is
    the oldest contributing timestamp (conservative freshness).
    """
    if not lists:
        raise ValueError("need at least one object list to fuse")
    by_label: Dict[str, List[FusedObject]] = {}
    for object_list in lists:
        for obj in object_list.objects:
            by_label.setdefault(obj.label, []).append(obj)

    fused_objects: List[FusedObject] = []
    for label, observations in by_label.items():
        total_conf = sum(o.confidence for o in observations)
        if total_conf <= 0:
            weight = [1.0 / len(observations)] * len(observations)
        else:
            weight = [o.confidence / total_conf for o in observations]
        x = sum(w * o.position.x for w, o in zip(weight, observations))
        y = sum(w * o.position.y for w, o in zip(weight, observations))
        miss = 1.0
        for o in observations:
            miss *= 1.0 - min(1.0, max(0.0, o.confidence))
        fused_objects.append(
            FusedObject(
                label=label,
                position=Vec2(x, y),
                confidence=1.0 - miss,
                observers=len(observations),
            )
        )
    fused_objects.sort(key=lambda o: o.label)
    return ObjectList(
        observer="+".join(sorted({l.observer for l in lists})),
        timestamp=min(l.timestamp for l in lists),
        objects=fused_objects,
    )

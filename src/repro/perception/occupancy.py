"""2-D occupancy grids.

An occupancy grid discretises a rectangular region into cells that are
*unknown*, *free* or *occupied*.  Grids are the shareable perception product
of the looking-around-the-corner task: each vehicle can compute one from its
own pond cheaply, the grids are small compared to raw scans, and grids from
several viewpoints fuse trivially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.geometry.vector import Vec2

#: Cell states.
UNKNOWN = 0
FREE = 1
OCCUPIED = 2


@dataclass(frozen=True)
class GridSpec:
    """Geometry of an occupancy grid.

    Attributes
    ----------
    origin:
        World coordinates of the grid's lower-left corner.
    width_m / height_m:
        Extent of the grid in metres.
    cell_size:
        Edge length of one square cell in metres.
    """

    origin: Vec2
    width_m: float
    height_m: float
    cell_size: float = 1.0

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("grid extent must be positive")
        if self.cell_size <= 0:
            raise ValueError("cell size must be positive")

    @property
    def cols(self) -> int:
        """Number of columns."""
        return max(1, int(round(self.width_m / self.cell_size)))

    @property
    def rows(self) -> int:
        """Number of rows."""
        return max(1, int(round(self.height_m / self.cell_size)))

    def to_cell(self, point: Vec2) -> Tuple[int, int]:
        """World point → (row, col); may be out of bounds."""
        col = int((point.x - self.origin.x) / self.cell_size)
        row = int((point.y - self.origin.y) / self.cell_size)
        return row, col

    def to_world(self, row: int, col: int) -> Vec2:
        """Cell centre in world coordinates."""
        return Vec2(
            self.origin.x + (col + 0.5) * self.cell_size,
            self.origin.y + (row + 0.5) * self.cell_size,
        )

    def contains_cell(self, row: int, col: int) -> bool:
        """Whether (row, col) lies inside the grid."""
        return 0 <= row < self.rows and 0 <= col < self.cols


class OccupancyGrid:
    """A grid of UNKNOWN/FREE/OCCUPIED cells over a :class:`GridSpec`."""

    def __init__(self, spec: GridSpec) -> None:
        self.spec = spec
        self.cells = np.full((spec.rows, spec.cols), UNKNOWN, dtype=np.uint8)

    # -------------------------------------------------------------- marking

    def mark(self, point: Vec2, state: int) -> bool:
        """Set the cell containing ``point``; returns False if out of bounds."""
        row, col = self.spec.to_cell(point)
        if not self.spec.contains_cell(row, col):
            return False
        self.cells[row, col] = state
        return True

    def mark_occupied(self, point: Vec2) -> bool:
        """Mark the cell containing ``point`` as occupied."""
        return self.mark(point, OCCUPIED)

    def mark_ray_free(self, origin: Vec2, target: Vec2) -> int:
        """Mark cells along the ray from origin to (just before) target as free.

        Occupied cells are never downgraded.  Returns the number of cells
        touched.
        """
        distance = origin.distance_to(target)
        if distance <= 0:
            return 0
        steps = max(1, int(distance / (self.spec.cell_size * 0.5)))
        touched = 0
        for i in range(steps):
            t = i / steps
            point = origin.lerp(target, t)
            row, col = self.spec.to_cell(point)
            if not self.spec.contains_cell(row, col):
                continue
            if self.cells[row, col] != OCCUPIED:
                self.cells[row, col] = FREE
                touched += 1
        return touched

    # -------------------------------------------------------------- queries

    def state_at(self, point: Vec2) -> int:
        """Cell state at ``point`` (UNKNOWN if out of bounds)."""
        row, col = self.spec.to_cell(point)
        if not self.spec.contains_cell(row, col):
            return UNKNOWN
        return int(self.cells[row, col])

    def known_fraction(self) -> float:
        """Fraction of cells that are not UNKNOWN."""
        return float(np.count_nonzero(self.cells != UNKNOWN)) / self.cells.size

    def occupied_cells(self) -> List[Tuple[int, int]]:
        """(row, col) of every occupied cell."""
        rows, cols = np.nonzero(self.cells == OCCUPIED)
        return list(zip(rows.tolist(), cols.tolist()))

    def size_bytes(self) -> int:
        """Serialized size: one byte per cell plus a small header."""
        return int(self.cells.size) + 64

    # --------------------------------------------------------------- fusion

    def fuse(self, other: "OccupancyGrid") -> "OccupancyGrid":
        """Fuse two grids over the same spec into a new grid.

        Occupied wins over free wins over unknown — a conservative policy
        appropriate for safety-oriented perception.
        """
        if other.spec != self.spec:
            raise ValueError("can only fuse grids with identical specs")
        fused = OccupancyGrid(self.spec)
        fused.cells = np.maximum(self.cells, other.cells)
        return fused

    @staticmethod
    def fuse_all(grids: List["OccupancyGrid"]) -> "OccupancyGrid":
        """Fuse any number of same-spec grids."""
        if not grids:
            raise ValueError("need at least one grid to fuse")
        result = grids[0]
        for grid in grids[1:]:
            result = result.fuse(grid)
        return result

"""Structured export of sweep results to JSON and CSV.

The CLI (``repro sweep --out``) and the benchmarks need the raw repetition
metrics *and* the aggregates in a machine-readable form, not just the printed
table.  Two formats, both dependency-free:

* **JSON** — one self-describing document: sweep metadata (scenario, grid
  dimensions, repetitions, seed), then per point its parameters, every raw
  run and the per-metric aggregates.  ``nan``/``inf`` values are exported as
  ``null`` so the file stays strict JSON.
* **CSV** — one row per (point, repetition) with a column per grid dimension
  and per metric, followed by ``mean`` / ``stddev`` aggregate rows (tagged in
  the ``repetition`` column).  ``nan`` cells are left empty.

:func:`export_results` dispatches on the output path's suffix.

:func:`load_sweep_cache` reads a previously exported JSON document back as a
:class:`SweepCache`, so a long grid can be resumed (``repro sweep --resume``)
without re-running cells that are already on disk.  Cells are keyed on
``(scenario, point parameters, seed)`` — the seed of every cached run is
reconstructed from the document's ``base_seed`` and the flat-index seed
convention, so a resumed sweep may reshape or extend the grid and still hit
every cell whose parameters and seed match.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import DEFAULT_SEED_STRIDE, ExperimentResult

#: JSON schema tag, bumped on incompatible layout changes.
SCHEMA = "repro.sweep/1"


class SweepCacheError(ValueError):
    """A resume file (``repro sweep --resume``) could not be used.

    Always names the offending ``path``; for malformed JSON, ``offset`` is
    the byte offset where decoding failed — on a truncated export that is
    the file's length, which makes "the copy died mid-transfer" diagnosable
    from the error alone.
    """

    def __init__(self, path: str, reason: str, *, offset: Optional[int] = None):
        location = f" (byte {offset})" if offset is not None else ""
        super().__init__(f"{path!r}{location}: {reason}")
        self.path = path
        self.offset = offset
        self.reason = reason


def _finite(value: float) -> Optional[float]:
    """A float fit for strict JSON (``None`` for nan/inf)."""
    return value if math.isfinite(value) else None


def _metric_union(results: Sequence[ExperimentResult]) -> List[str]:
    names = set()
    for result in results:
        names.update(result.metric_names())
    return sorted(names)


def sweep_payload(
    results: Sequence[ExperimentResult], **metadata
) -> Dict[str, object]:
    """The full JSON-serialisable document for one sweep.

    ``metadata`` (scenario name, dimension value lists, repetitions,
    base_seed, duration, ...) is stored verbatim under ``"sweep"``.
    """
    points = []
    for result in results:
        aggregates = {}
        for metric in result.metric_names():
            values = result.metric_values(metric)
            low, high = result.ci(metric)
            aggregates[metric] = {
                "count": len(values),
                "mean": _finite(result.mean(metric)),
                "stddev": _finite(result.stddev(metric)),
                "ci95": [_finite(low), _finite(high)],
            }
        points.append(
            {
                "name": result.point.name,
                "params": result.point.as_dict(),
                "runs": [
                    {name: _finite(value) for name, value in run.items()}
                    for run in result.runs
                ],
                "aggregates": aggregates,
            }
        )
    return {"schema": SCHEMA, "sweep": dict(metadata), "points": points}


def write_json(path: str, results: Sequence[ExperimentResult], **metadata) -> None:
    """Write the :func:`sweep_payload` document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sweep_payload(results, **metadata), handle, indent=2, allow_nan=False)
        handle.write("\n")


def _csv_cell(value: object) -> object:
    if isinstance(value, float) and not math.isfinite(value):
        return ""
    return value


def write_csv(
    path: str,
    results: Sequence[ExperimentResult],
    dimensions: Optional[Sequence[str]] = None,
) -> None:
    """Write raw runs plus aggregate rows to ``path``.

    ``dimensions`` fixes the parameter column order (defaults to the first
    point's parameter names); the ``repetition`` column holds the repetition
    index for raw rows and ``mean`` / ``stddev`` for aggregate rows.
    """
    if dimensions is None:
        dimensions = list(results[0].point.as_dict()) if results else []
    metrics = _metric_union(results)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*dimensions, "repetition", *metrics])
        for result in results:
            params = result.point.as_dict()
            prefix = [_csv_cell(params.get(dim, "")) for dim in dimensions]
            for repetition, run in enumerate(result.runs):
                writer.writerow(
                    [*prefix, repetition, *(_csv_cell(run.get(m, "")) for m in metrics)]
                )
            for aggregate in ("mean", "stddev"):
                values = [
                    _csv_cell(getattr(result, aggregate)(m)) if result.metric_values(m) else ""
                    for m in metrics
                ]
                writer.writerow([*prefix, aggregate, *values])


def export_results(
    path: str,
    results: Sequence[ExperimentResult],
    dimensions: Optional[Sequence[str]] = None,
    **metadata,
) -> str:
    """Write ``results`` to ``path``, picking the format from its suffix.

    ``.json`` exports the full document, ``.csv`` the flat table.  Returns
    the format written; any other suffix raises ``ValueError``.
    """
    lowered = path.lower()
    if lowered.endswith(".json"):
        if dimensions is not None:
            metadata.setdefault("dimensions", list(dimensions))
        write_json(path, results, **metadata)
        return "json"
    if lowered.endswith(".csv"):
        write_csv(path, results, dimensions=dimensions)
        return "csv"
    raise ValueError(f"cannot infer export format from {path!r} (use .json or .csv)")


# ------------------------------------------------------------------- resume


def _params_key(params: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Order-independent, type-discriminating key for point parameters.

    ``repr`` keeps ``8`` (int) and ``8.0`` (float) distinct — they are
    different sweep values with different configs — while surviving the JSON
    round trip, which preserves scalar types exactly for the int/float/bool/
    str values the CLI's knob parser produces.
    """
    return tuple(sorted((name, repr(value)) for name, value in params.items()))


@dataclass
class SweepCache:
    """Completed (scenario, params, seed) cells loaded from a JSON export.

    ``lookup`` is the interface the experiment runner consumes: it returns
    the cached metrics for one cell (``None`` when absent) and counts hits
    and misses so callers can report how much of a resumed sweep was served
    from disk.
    """

    scenario: Optional[str]
    #: The fixed per-run duration the cached sweep simulated (None when the
    #: export predates the field).  A cell's metrics are only valid for the
    #: duration they were simulated at, so resuming must check this.
    duration: Optional[float] = None
    cells: Dict[Tuple[Tuple[Tuple[str, str], ...], int], Dict[str, float]] = field(
        default_factory=dict
    )
    hits: int = 0
    misses: int = 0

    def __len__(self) -> int:
        return len(self.cells)

    def lookup(
        self, params: Mapping[str, object], seed: int
    ) -> Optional[Dict[str, float]]:
        """Cached metrics for one (params, seed) cell, or ``None``."""
        metrics = self.cells.get((_params_key(params), seed))
        if metrics is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(metrics)


def load_sweep_cache(path: str) -> SweepCache:
    """Read a ``repro.sweep/1`` JSON export back as a :class:`SweepCache`.

    Every run of every point becomes one cell; its seed is reconstructed
    from the document's ``base_seed`` and the point's flat index via the
    runner's seed convention (``base + index * stride + repetition``).
    ``null`` metric values (exported nan/inf) come back as ``nan`` so reused
    cells aggregate exactly like freshly run ones.

    Anything unusable — empty file, truncated or corrupt JSON, wrong schema,
    missing ``base_seed`` — raises :class:`SweepCacheError` naming the path
    (and, for decode failures, the byte offset), so the CLI can tell the
    operator *which* file is bad and *where* instead of a bare traceback.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text.strip():
        raise SweepCacheError(path, "file is empty", offset=0)
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        # error.pos is a character offset; report it as a byte offset so it
        # lines up with `ls -l` / `head -c` on the (ASCII) export format.
        reason = (
            "truncated JSON — the export probably died mid-write"
            if error.pos >= len(text.rstrip()) - 1
            else f"malformed JSON: {error.msg}"
        )
        raise SweepCacheError(
            path, reason, offset=len(text[: error.pos].encode("utf-8"))
        ) from error
    if not isinstance(payload, dict):
        raise SweepCacheError(
            path, f"expected a sweep export object, found {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise SweepCacheError(
            path, f"not a sweep export (schema {schema!r}, expected {SCHEMA!r})"
        )
    sweep = payload.get("sweep", {})
    base_seed = sweep.get("base_seed")
    if base_seed is None:
        raise SweepCacheError(
            path, "records no base_seed; cannot reconstruct cell seeds"
        )
    stride = int(sweep.get("seed_stride", DEFAULT_SEED_STRIDE))
    duration = sweep.get("duration")
    cache = SweepCache(
        scenario=sweep.get("scenario"),
        duration=float(duration) if duration is not None else None,
    )
    for index, point in enumerate(payload.get("points", [])):
        key = _params_key(point.get("params", {}))
        for repetition, run in enumerate(point.get("runs", [])):
            seed = int(base_seed) + index * stride + repetition
            metrics = {
                name: (math.nan if value is None else float(value))
                for name, value in run.items()
            }
            cache.cells[(key, seed)] = metrics
    return cache

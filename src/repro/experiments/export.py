"""Structured export of sweep results to JSON and CSV.

The CLI (``repro sweep --out``) and the benchmarks need the raw repetition
metrics *and* the aggregates in a machine-readable form, not just the printed
table.  Two formats, both dependency-free:

* **JSON** — one self-describing document: sweep metadata (scenario, grid
  dimensions, repetitions, seed), then per point its parameters, every raw
  run and the per-metric aggregates.  ``nan``/``inf`` values are exported as
  ``null`` so the file stays strict JSON.
* **CSV** — one row per (point, repetition) with a column per grid dimension
  and per metric, followed by ``mean`` / ``stddev`` aggregate rows (tagged in
  the ``repetition`` column).  ``nan`` cells are left empty.

:func:`export_results` dispatches on the output path's suffix.
"""

from __future__ import annotations

import csv
import json
import math
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult

#: JSON schema tag, bumped on incompatible layout changes.
SCHEMA = "repro.sweep/1"


def _finite(value: float) -> Optional[float]:
    """A float fit for strict JSON (``None`` for nan/inf)."""
    return value if math.isfinite(value) else None


def _metric_union(results: Sequence[ExperimentResult]) -> List[str]:
    names = set()
    for result in results:
        names.update(result.metric_names())
    return sorted(names)


def sweep_payload(
    results: Sequence[ExperimentResult], **metadata
) -> Dict[str, object]:
    """The full JSON-serialisable document for one sweep.

    ``metadata`` (scenario name, dimension value lists, repetitions,
    base_seed, duration, ...) is stored verbatim under ``"sweep"``.
    """
    points = []
    for result in results:
        aggregates = {}
        for metric in result.metric_names():
            values = result.metric_values(metric)
            low, high = result.ci(metric)
            aggregates[metric] = {
                "count": len(values),
                "mean": _finite(result.mean(metric)),
                "stddev": _finite(result.stddev(metric)),
                "ci95": [_finite(low), _finite(high)],
            }
        points.append(
            {
                "name": result.point.name,
                "params": result.point.as_dict(),
                "runs": [
                    {name: _finite(value) for name, value in run.items()}
                    for run in result.runs
                ],
                "aggregates": aggregates,
            }
        )
    return {"schema": SCHEMA, "sweep": dict(metadata), "points": points}


def write_json(path: str, results: Sequence[ExperimentResult], **metadata) -> None:
    """Write the :func:`sweep_payload` document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sweep_payload(results, **metadata), handle, indent=2, allow_nan=False)
        handle.write("\n")


def _csv_cell(value: object) -> object:
    if isinstance(value, float) and not math.isfinite(value):
        return ""
    return value


def write_csv(
    path: str,
    results: Sequence[ExperimentResult],
    dimensions: Optional[Sequence[str]] = None,
) -> None:
    """Write raw runs plus aggregate rows to ``path``.

    ``dimensions`` fixes the parameter column order (defaults to the first
    point's parameter names); the ``repetition`` column holds the repetition
    index for raw rows and ``mean`` / ``stddev`` for aggregate rows.
    """
    if dimensions is None:
        dimensions = list(results[0].point.as_dict()) if results else []
    metrics = _metric_union(results)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*dimensions, "repetition", *metrics])
        for result in results:
            params = result.point.as_dict()
            prefix = [_csv_cell(params.get(dim, "")) for dim in dimensions]
            for repetition, run in enumerate(result.runs):
                writer.writerow(
                    [*prefix, repetition, *(_csv_cell(run.get(m, "")) for m in metrics)]
                )
            for aggregate in ("mean", "stddev"):
                values = [
                    _csv_cell(getattr(result, aggregate)(m)) if result.metric_values(m) else ""
                    for m in metrics
                ]
                writer.writerow([*prefix, aggregate, *values])


def export_results(
    path: str,
    results: Sequence[ExperimentResult],
    dimensions: Optional[Sequence[str]] = None,
    **metadata,
) -> str:
    """Write ``results`` to ``path``, picking the format from its suffix.

    ``.json`` exports the full document, ``.csv`` the flat table.  Returns
    the format written; any other suffix raises ``ValueError``.
    """
    lowered = path.lower()
    if lowered.endswith(".json"):
        if dimensions is not None:
            metadata.setdefault("dimensions", list(dimensions))
        write_json(path, results, **metadata)
        return "json"
    if lowered.endswith(".csv"):
        write_csv(path, results, dimensions=dimensions)
        return "csv"
    raise ValueError(f"cannot infer export format from {path!r} (use .json or .csv)")

"""Experiment harness: parameter sweeps with repetitions."""

from repro.experiments.runner import ExperimentResult, ExperimentRunner, SweepPoint

__all__ = ["ExperimentRunner", "ExperimentResult", "SweepPoint"]

"""Experiment harness: multi-dimensional parameter sweeps with repetitions."""

from repro.experiments.export import export_results, sweep_payload, write_csv, write_json
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    ScenarioRunOnce,
    SweepGrid,
    SweepPoint,
    numeric_metrics,
    run_scenario_once,
    sweep_scenario,
    sweep_scenario_grid,
)

__all__ = [
    "ExperimentRunner",
    "ExperimentResult",
    "ScenarioRunOnce",
    "SweepGrid",
    "SweepPoint",
    "numeric_metrics",
    "run_scenario_once",
    "sweep_scenario",
    "sweep_scenario_grid",
    "export_results",
    "sweep_payload",
    "write_csv",
    "write_json",
]

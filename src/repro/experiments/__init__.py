"""Experiment harness: parameter sweeps with repetitions."""

from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    SweepPoint,
    run_scenario_once,
    sweep_scenario,
)

__all__ = [
    "ExperimentRunner",
    "ExperimentResult",
    "SweepPoint",
    "run_scenario_once",
    "sweep_scenario",
]

"""Parameter sweeps with repetitions.

Every benchmark follows the same shape: for each point of a parameter sweep,
run ``repetitions`` independent simulations (different seeds), collect a flat
metric dictionary per run, and aggregate mean/stddev per metric.  The
:class:`ExperimentRunner` factors that loop out so each benchmark only
supplies a ``run_once(point, seed) -> dict`` function.

:func:`sweep_scenario` specialises the runner for the packaged scenarios:
one call drives a named scenario at several fleet sizes with repetitions and
returns the aggregated :class:`ExperimentResult` per size.  It backs the
``repro sweep`` CLI command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.metrics.statistics import confidence_interval, mean, stddev


#: One sweep point: a name plus the keyword parameters passed to run_once.
@dataclass(frozen=True)
class SweepPoint:
    """A named parameter combination in a sweep."""

    name: str
    params: tuple = ()

    @staticmethod
    def of(name: str, **params) -> "SweepPoint":
        """Build a point from keyword parameters."""
        return SweepPoint(name=name, params=tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, object]:
        """The parameters as a dictionary."""
        return dict(self.params)


@dataclass
class ExperimentResult:
    """Aggregated metrics of one sweep point."""

    point: SweepPoint
    runs: List[Dict[str, float]] = field(default_factory=list)

    def metric_values(self, metric: str) -> List[float]:
        """All repetitions' values of ``metric`` (missing treated as absent)."""
        return [run[metric] for run in self.runs if metric in run]

    def mean(self, metric: str) -> float:
        """Mean of ``metric`` over repetitions."""
        return mean(self.metric_values(metric))

    def stddev(self, metric: str) -> float:
        """Standard deviation of ``metric`` over repetitions."""
        return stddev(self.metric_values(metric))

    def ci(self, metric: str) -> tuple:
        """95% confidence interval of ``metric``."""
        return confidence_interval(self.metric_values(metric))


class ExperimentRunner:
    """Runs ``run_once`` over a sweep with repetitions.

    Parameters
    ----------
    run_once:
        Callable ``(params_dict, seed) -> metrics_dict``.
    repetitions:
        Independent runs per sweep point.
    base_seed:
        Seeds are ``base_seed + repetition_index`` (plus a per-point offset)
        so different points never share a seed sequence.
    """

    def __init__(
        self,
        run_once: Callable[[Dict[str, object], int], Dict[str, float]],
        repetitions: int = 3,
        base_seed: int = 1000,
    ) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        self.run_once = run_once
        self.repetitions = repetitions
        self.base_seed = base_seed

    def run_point(self, point: SweepPoint, point_index: int = 0) -> ExperimentResult:
        """Run every repetition of one sweep point."""
        result = ExperimentResult(point=point)
        for repetition in range(self.repetitions):
            seed = self.base_seed + point_index * 1000 + repetition
            metrics = self.run_once(point.as_dict(), seed)
            result.runs.append(dict(metrics))
        return result

    def run_sweep(self, points: Sequence[SweepPoint]) -> List[ExperimentResult]:
        """Run the whole sweep in order."""
        return [self.run_point(point, index) for index, point in enumerate(points)]


# ----------------------------------------------------------- scenario sweeps


def run_scenario_once(
    scenario: str,
    seed: int,
    n: Optional[int] = None,
    duration: float = 20.0,
    **overrides,
) -> Dict[str, float]:
    """Build and run one packaged scenario; return its flat numeric report.

    Non-numeric report entries are dropped so the result aggregates cleanly
    with :class:`ExperimentResult` (``nan`` metrics are kept — the
    statistics helpers already ignore them).
    """
    # Imported lazily: scenarios pull in the whole stack, and this module is
    # also used by lightweight benchmark code that never touches them.
    from repro.scenarios import build_scenario

    report = build_scenario(scenario, n=n, seed=seed, **overrides).run(duration=duration)
    return {
        name: float(value)
        for name, value in report.as_dict().items()
        if isinstance(value, (int, float))
    }


def sweep_scenario(
    scenario: str,
    fleet_sizes: Sequence[int],
    duration: float = 20.0,
    repetitions: int = 3,
    base_seed: int = 1000,
    **overrides,
) -> List[ExperimentResult]:
    """Run ``scenario`` at each fleet size in ``fleet_sizes`` with repetitions.

    Returns one :class:`ExperimentResult` per size, in input order; seeds
    follow the :class:`ExperimentRunner` convention so no two points share a
    seed sequence.
    """

    def run_once(params: Dict[str, object], seed: int) -> Dict[str, float]:
        return run_scenario_once(
            scenario,
            seed,
            n=int(params["n"]),
            duration=float(params["duration"]),
            **overrides,
        )

    runner = ExperimentRunner(run_once, repetitions=repetitions, base_seed=base_seed)
    points = [
        SweepPoint.of(f"{scenario}:n={size}", n=size, duration=duration)
        for size in fleet_sizes
    ]
    return runner.run_sweep(points)

"""Multi-dimensional parameter sweeps with seeded, optionally parallel reps.

Every benchmark follows the same shape: for each point of a parameter sweep,
run ``repetitions`` independent simulations (different seeds), collect a flat
metric dictionary per run, and aggregate mean/stddev per metric.  The
:class:`ExperimentRunner` factors that loop out so each benchmark only
supplies a ``run_once(point, seed) -> dict`` function.

Sweeps are no longer one-dimensional: a :class:`SweepGrid` describes the
cartesian product of arbitrary named knobs (fleet size, beacon period, trust
threshold, ...) and enumerates it row-major into :class:`SweepPoint` s.  The
seed convention is a pure function of the flat point index::

    seed = base_seed + point_index * seed_stride + repetition

so (a) distinct grid points never share a seed sequence, (b) repetitions can
run in parallel (``jobs``) without changing any seed, and (c) a slice of a
grid can be reproduced point-for-point by a smaller sweep whose ``base_seed``
/ ``seed_stride`` are chosen to match the slice's flat indices (benchmark
E12 asserts exactly this).

:func:`sweep_scenario_grid` specialises the runner for the packaged
scenarios: one call drives a named scenario over a grid of config knobs with
repetitions and returns the aggregated :class:`ExperimentResult` per point.
It backs the ``repro sweep`` CLI command; :func:`sweep_scenario` is the
original fleet-size-only entry point, kept as a thin wrapper.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.statistics import confidence_interval, mean, stddev

#: Default seed distance between adjacent sweep points (see seed convention
#: above).  The runner rejects repetition counts beyond the stride, which
#: would make adjacent points' seed sequences overlap.
DEFAULT_SEED_STRIDE = 1000


#: One sweep point: a name plus the keyword parameters passed to run_once.
@dataclass(frozen=True)
class SweepPoint:
    """A named parameter combination in a sweep."""

    name: str
    params: tuple = ()

    @staticmethod
    def of(name: str, **params) -> "SweepPoint":
        """Build a point from keyword parameters."""
        return SweepPoint(name=name, params=tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, object]:
        """The parameters as a dictionary."""
        return dict(self.params)


class SweepGrid:
    """The cartesian product of named knob value lists.

    Dimensions keep their insertion order; :meth:`points` enumerates the
    product row-major (the *last* dimension varies fastest), which fixes the
    flat point index — and therefore, via the runner's seed convention, every
    seed in the sweep.

    >>> grid = SweepGrid({"n": [8, 16], "beacon_period": [0.2, 0.5]})
    >>> [p.as_dict()["beacon_period"] for p in grid.points()]
    [0.2, 0.5, 0.2, 0.5]
    """

    def __init__(self, dimensions: Mapping[str, Sequence[object]]) -> None:
        if not dimensions:
            raise ValueError("a sweep grid needs at least one dimension")
        self.dimensions: Dict[str, List[object]] = {}
        for name, values in dimensions.items():
            values = list(values)
            if not values:
                raise ValueError(f"dimension {name!r} has no values")
            if len(set(map(repr, values))) != len(values):
                raise ValueError(f"dimension {name!r} repeats a value")
            self.dimensions[name] = values

    @property
    def dimension_names(self) -> List[str]:
        """Knob names in insertion (= enumeration) order."""
        return list(self.dimensions)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Number of values per dimension, in order."""
        return tuple(len(values) for values in self.dimensions.values())

    def __len__(self) -> int:
        total = 1
        for count in self.shape:
            total *= count
        return total

    def points(self, name_prefix: str = "") -> List[SweepPoint]:
        """All grid points, row-major, named ``prefix``\\ ``k1=v1,k2=v2``."""
        names = self.dimension_names
        points = []
        for combo in product(*self.dimensions.values()):
            label = ",".join(f"{k}={v}" for k, v in zip(names, combo))
            points.append(SweepPoint.of(f"{name_prefix}{label}", **dict(zip(names, combo))))
        return points


@dataclass
class ExperimentResult:
    """Aggregated metrics of one sweep point."""

    point: SweepPoint
    runs: List[Dict[str, float]] = field(default_factory=list)

    def metric_names(self) -> List[str]:
        """Sorted union of metric names over all repetitions."""
        names = set()
        for run in self.runs:
            names.update(run)
        return sorted(names)

    def metric_values(self, metric: str) -> List[float]:
        """All repetitions' values of ``metric`` (missing treated as absent)."""
        return [run[metric] for run in self.runs if metric in run]

    def mean(self, metric: str) -> float:
        """Mean of ``metric`` over repetitions."""
        return mean(self.metric_values(metric))

    def stddev(self, metric: str) -> float:
        """Standard deviation of ``metric`` over repetitions."""
        return stddev(self.metric_values(metric))

    def ci(self, metric: str) -> tuple:
        """95% confidence interval of ``metric``."""
        return confidence_interval(self.metric_values(metric))


def _invoke_run_once(
    run_once: Callable[[Dict[str, object], int], Dict[str, float]],
    params: Dict[str, object],
    seed: int,
    profile_to: Optional[str] = None,
) -> Dict[str, float]:
    """Module-level trampoline so worker arguments stay picklable.

    ``profile_to`` makes the cell run under :mod:`cProfile` and dump its raw
    stats to that path — cProfile is per-process, so this is how a
    ``jobs > 1`` sweep gets simulation work into the profile at all: the
    parent merges the dumped file into its own stats afterwards
    (``pstats.Stats.add``).
    """
    if profile_to is None:
        return dict(run_once(params, seed))
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return dict(run_once(params, seed))
    finally:
        profiler.disable()
        profiler.dump_stats(profile_to)


class ExperimentRunner:
    """Runs ``run_once`` over a sweep with repetitions.

    Parameters
    ----------
    run_once:
        Callable ``(params_dict, seed) -> metrics_dict``.  Must be picklable
        (a module-level function or instance of a module-level class) when
        ``jobs > 1`` is used.
    repetitions:
        Independent runs per sweep point.
    base_seed:
        Seeds are ``base_seed + point_index * seed_stride + repetition``, so
        different points never share a seed sequence.
    seed_stride:
        Seed distance between adjacent points.  The default (1000) is the
        historical convention; grid slices pick other strides to reproduce a
        parent grid's seeds (see the module docstring).
    """

    def __init__(
        self,
        run_once: Callable[[Dict[str, object], int], Dict[str, float]],
        repetitions: int = 3,
        base_seed: int = 1000,
        seed_stride: int = DEFAULT_SEED_STRIDE,
    ) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        if seed_stride < 1:
            raise ValueError("seed_stride must be at least 1")
        if repetitions > seed_stride:
            raise ValueError(
                f"repetitions ({repetitions}) must not exceed seed_stride "
                f"({seed_stride}), or adjacent sweep points would share seeds"
            )
        self.run_once = run_once
        self.repetitions = repetitions
        self.base_seed = base_seed
        self.seed_stride = seed_stride

    def seed_for(self, point_index: int, repetition: int) -> int:
        """The seed of one (point, repetition) cell of the sweep."""
        return self.base_seed + point_index * self.seed_stride + repetition

    def run_point(
        self, point: SweepPoint, point_index: int = 0, cache: Optional[object] = None
    ) -> ExperimentResult:
        """Run every repetition of one sweep point (see :meth:`run_sweep`)."""
        result = ExperimentResult(point=point)
        params = point.as_dict()
        for repetition in range(self.repetitions):
            seed = self.seed_for(point_index, repetition)
            metrics = cache.lookup(params, seed) if cache is not None else None
            if metrics is None:
                metrics = dict(self.run_once(params, seed))
            result.runs.append(metrics)
        return result

    def run_sweep(
        self,
        points: Sequence[SweepPoint],
        jobs: int = 1,
        cache: Optional[object] = None,
        profile_first_cell_to: Optional[str] = None,
    ) -> List[ExperimentResult]:
        """Run the whole sweep in order.

        ``jobs > 1`` fans the individual (point, repetition) cells out over a
        :mod:`multiprocessing` pool.  Every cell keeps the seed it would get
        sequentially and results are reassembled in enumeration order, so the
        returned list — and anything rendered from it — is identical to a
        ``jobs=1`` run.

        ``cache`` (an object with ``lookup(params, seed) -> metrics|None``,
        e.g. :class:`~repro.experiments.export.SweepCache`) short-circuits
        cells already computed by an earlier sweep; only the remaining cells
        run (and only they are fanned out to workers).

        ``profile_first_cell_to`` (only meaningful with ``jobs > 1``) makes
        the first fresh cell run under :mod:`cProfile` in its worker and dump
        raw stats to that path, giving the caller one representative sample
        of the per-cell simulation work to merge into its own profile.
        """
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if jobs == 1 or len(points) * self.repetitions <= 1:
            return [
                self.run_point(point, index, cache=cache)
                for index, point in enumerate(points)
            ]
        cached_runs: Dict[Tuple[int, int], Dict[str, float]] = {}
        cells = []
        fresh_keys = []
        for index, point in enumerate(points):
            params = point.as_dict()
            for repetition in range(self.repetitions):
                seed = self.seed_for(index, repetition)
                metrics = cache.lookup(params, seed) if cache is not None else None
                if metrics is not None:
                    cached_runs[(index, repetition)] = metrics
                else:
                    profile_to = (
                        profile_first_cell_to if not cells else None
                    )
                    cells.append((self.run_once, params, seed, profile_to))
                    fresh_keys.append((index, repetition))
        if cells:
            with multiprocessing.Pool(processes=min(jobs, len(cells))) as pool:
                fresh_metrics = pool.starmap(_invoke_run_once, cells)
        else:
            fresh_metrics = []
        runs = dict(cached_runs)
        runs.update(zip(fresh_keys, fresh_metrics))
        results = []
        for index, point in enumerate(points):
            results.append(
                ExperimentResult(
                    point=point,
                    runs=[
                        runs[(index, repetition)]
                        for repetition in range(self.repetitions)
                    ],
                )
            )
        return results

    def run_grid(
        self, grid: SweepGrid, jobs: int = 1, cache: Optional[object] = None
    ) -> List[ExperimentResult]:
        """Run every point of ``grid`` (row-major order)."""
        return self.run_sweep(grid.points(), jobs=jobs, cache=cache)


# ----------------------------------------------------------- scenario sweeps


def numeric_metrics(report: Mapping[str, object]) -> Dict[str, float]:
    """Keep the numeric entries of a flat report, as floats.

    Booleans are *excluded*, not coerced: ``isinstance(flag, int)`` is true
    for ``bool``, and silently averaging a flag as 0/1 produced meaningless
    "mean/stddev" rows.  A scenario that wants a flag aggregated must export
    it as an explicit 0.0/1.0 rate.  ``nan`` metrics are kept — the
    statistics helpers already ignore them.
    """
    return {
        name: float(value)
        for name, value in report.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def run_scenario_once(
    scenario: str,
    seed: int,
    n: Optional[int] = None,
    duration: float = 20.0,
    **overrides,
) -> Dict[str, float]:
    """Build and run one packaged scenario; return its flat numeric report.

    Non-numeric report entries (strings, booleans, ...) are dropped by
    :func:`numeric_metrics` so the result aggregates cleanly with
    :class:`ExperimentResult`.  ``overrides`` are forwarded to the scenario's
    config dataclass — any config field (``beacon_period``, ``min_trust``,
    ``task_rate_per_s``, ...) can be swept this way.
    """
    # Imported lazily: scenarios pull in the whole stack, and this module is
    # also used by lightweight benchmark code that never touches them.
    from repro.scenarios import build_scenario

    report = build_scenario(scenario, n=n, seed=seed, **overrides).run(duration=duration)
    return numeric_metrics(report.as_dict())


@dataclass(frozen=True)
class ScenarioRunOnce:
    """Picklable ``run_once`` driving one packaged scenario.

    A plain closure over the scenario name would not survive the trip into a
    ``jobs > 1`` worker process; this frozen dataclass does.  Point
    parameters override the fixed ``overrides``; a ``duration`` parameter (in
    either) overrides the default duration.
    """

    scenario: str
    duration: float = 20.0
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __call__(self, params: Dict[str, object], seed: int) -> Dict[str, float]:
        merged = dict(self.overrides)
        merged.update(params)
        duration = float(merged.pop("duration", self.duration))
        return run_scenario_once(self.scenario, seed, duration=duration, **merged)


@dataclass(frozen=True)
class TracedRunOnce:
    """Wrap a ``run_once`` so each cell writes a Chrome trace-event file.

    The cell's seed is unique across the sweep (see the module seed
    convention), so ``cell-s<seed>.json`` filenames are deterministic and
    collision-free.  Tracing is byte-invisible to the cell's metrics — the
    tracer only observes (see :mod:`repro.telemetry.trace`).
    """

    inner: Callable[[Dict[str, object], int], Dict[str, float]]
    trace_dir: str
    sample_every: int = 1

    def __call__(self, params: Dict[str, object], seed: int) -> Dict[str, float]:
        import os

        from repro.telemetry.trace import Tracer, activate

        tracer = Tracer(sample_every=self.sample_every)
        with activate(tracer):
            metrics = self.inner(params, seed)
        tracer.save(os.path.join(self.trace_dir, f"cell-s{seed}.json"))
        return metrics


def sweep_scenario_grid(
    scenario: str,
    grid: SweepGrid,
    duration: float = 20.0,
    repetitions: int = 3,
    base_seed: int = 1000,
    jobs: int = 1,
    cache: Optional[object] = None,
    profile_worker_stats: Optional[str] = None,
    trace_dir: Optional[str] = None,
    **overrides,
) -> List[ExperimentResult]:
    """Run ``scenario`` over every point of ``grid`` with repetitions.

    Grid dimensions name scenario config knobs (``n``, ``beacon_period``,
    ``min_trust``, ``task_rate_per_s``, ...); fixed ``overrides`` apply to
    every point.  Returns one :class:`ExperimentResult` per grid point in
    row-major order; seeds follow the :class:`ExperimentRunner` convention,
    so a one-dimensional grid is seed-identical to the historical
    fleet-size-only :func:`sweep_scenario`.  ``cache`` (see
    :meth:`ExperimentRunner.run_sweep`) lets ``repro sweep --resume`` skip
    cells an earlier export already contains.  ``trace_dir`` writes one
    Chrome trace-event file per fresh cell (``cell-s<seed>.json``).
    """
    run_once: Callable[[Dict[str, object], int], Dict[str, float]] = ScenarioRunOnce(
        scenario=scenario, duration=duration, overrides=tuple(sorted(overrides.items()))
    )
    if trace_dir is not None:
        run_once = TracedRunOnce(inner=run_once, trace_dir=trace_dir)
    runner = ExperimentRunner(run_once, repetitions=repetitions, base_seed=base_seed)
    return runner.run_sweep(
        grid.points(f"{scenario}:"),
        jobs=jobs,
        cache=cache,
        profile_first_cell_to=profile_worker_stats,
    )


def run_scenario_durations_warm(
    scenario: str,
    durations: Sequence[float],
    seed: int,
    n: Optional[int] = None,
    **overrides,
) -> Dict[float, Dict[str, float]]:
    """Run one seeded scenario at several horizons, sharing the common prefix.

    The shortest horizon runs once with the fault timeline armed for the
    *longest* horizon and is snapshotted at its end; every longer horizon
    restores that snapshot and resumes over its own suffix only.  Because the
    fault timeline's per-window draws are a pure function of (seed, window
    start, horizon), arming the full horizon up front makes each warm cell
    byte-identical to a cold ``run(duration=d, fault_horizon=longest)`` of
    the same seed — the snapshot merely skips re-simulating the shared
    prefix.  Returns ``{duration: numeric metrics}``.
    """
    # Imported lazily for the same reason as run_scenario_once.
    from repro.scenarios import build_scenario
    from repro.scenarios.base import Scenario

    ordered = sorted({float(duration) for duration in durations})
    if not ordered:
        raise ValueError("durations must not be empty")
    if ordered[0] <= 0:
        raise ValueError("durations must be positive")
    shortest, longest = ordered[0], ordered[-1]
    cold = build_scenario(scenario, n=n, seed=seed, **overrides)
    start = cold.sim.now
    metrics: Dict[float, Dict[str, float]] = {}
    if shortest == longest:
        report = cold.run(duration=shortest, fault_horizon=longest)
        return {shortest: numeric_metrics(report.as_dict())}
    # Snapshot at the end of the shortest window; run() writes to a path, so
    # round-trip the prefix artifact through a scratch file.
    import os
    import tempfile

    handle, path = tempfile.mkstemp(suffix=".reprosnap")
    os.close(handle)
    try:
        report = cold.run(
            duration=shortest,
            fault_horizon=longest,
            snapshot_at=shortest,
            snapshot_to=path,
        )
        with open(path, "rb") as stream:
            prefix = stream.read()
    finally:
        os.unlink(path)
    metrics[shortest] = numeric_metrics(report.as_dict())
    for duration in ordered[1:]:
        warm = Scenario.restore(prefix)
        report = warm.resume(until=start + duration)
        metrics[duration] = numeric_metrics(report.as_dict())
    return metrics


def sweep_scenario_grid_warm(
    scenario: str,
    grid: SweepGrid,
    repetitions: int = 3,
    base_seed: int = 1000,
    seed_stride: int = DEFAULT_SEED_STRIDE,
    **overrides,
) -> List[ExperimentResult]:
    """Warm-started variant of :func:`sweep_scenario_grid` for duration grids.

    ``grid`` must have a ``duration`` dimension.  Points sharing every
    *other* knob form one group; each (group, repetition) simulates a single
    trajectory whose prefix snapshot warm-starts every longer duration cell
    (:func:`run_scenario_durations_warm`).  Seeds are shared across a
    group's duration cells by construction — ``base_seed + group_index *
    seed_stride + repetition`` — which is what makes prefix sharing possible;
    the byte-identical cold equivalent of a cell is ``run(duration=d,
    fault_horizon=max_duration)`` at that same seed, *not* a default
    :func:`sweep_scenario_grid` cell (whose per-point seeds differ).

    Results come back one per grid point in the grid's own row-major order,
    exactly like the cold sweep.
    """
    if "duration" not in grid.dimensions:
        raise ValueError("warm-started sweeps need a 'duration' grid dimension")
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    if repetitions > seed_stride:
        raise ValueError("repetitions must not exceed seed_stride")
    durations = [float(value) for value in grid.dimensions["duration"]]
    other_dimensions = {
        name: values for name, values in grid.dimensions.items() if name != "duration"
    }
    groups: List[Dict[str, object]] = (
        [point.as_dict() for point in SweepGrid(other_dimensions).points()]
        if other_dimensions
        else [{}]
    )
    by_cell: Dict[Tuple[Tuple[Tuple[str, object], ...], float], List[Dict[str, float]]] = {}
    for group_index, group_params in enumerate(groups):
        for repetition in range(repetitions):
            seed = base_seed + group_index * seed_stride + repetition
            params = dict(overrides)
            params.update(group_params)
            fleet = params.pop("n", None)
            per_duration = run_scenario_durations_warm(
                scenario, durations, seed=seed, n=fleet, **params
            )
            for duration, metrics in per_duration.items():
                key = (tuple(sorted(group_params.items())), duration)
                by_cell.setdefault(key, []).append(metrics)
    results = []
    for point in grid.points(f"{scenario}:"):
        params = point.as_dict()
        duration = float(params.pop("duration"))
        key = (tuple(sorted(params.items())), duration)
        results.append(ExperimentResult(point=point, runs=by_cell[key]))
    return results


def sweep_scenario(
    scenario: str,
    fleet_sizes: Sequence[int],
    duration: float = 20.0,
    repetitions: int = 3,
    base_seed: int = 1000,
    jobs: int = 1,
    **overrides,
) -> List[ExperimentResult]:
    """Run ``scenario`` at each fleet size in ``fleet_sizes`` with repetitions.

    The original one-dimensional entry point, now a thin wrapper over the
    grid machinery (``SweepGrid({"n": fleet_sizes})``).  Returns one
    :class:`ExperimentResult` per size, in input order, with ``duration``
    still recorded in each point's parameters for backward compatibility.
    """
    run_once = ScenarioRunOnce(
        scenario=scenario, duration=duration, overrides=tuple(sorted(overrides.items()))
    )
    runner = ExperimentRunner(run_once, repetitions=repetitions, base_seed=base_seed)
    points = [
        SweepPoint.of(f"{scenario}:n={size}", n=size, duration=duration)
        for size in fleet_sizes
    ]
    return runner.run_sweep(points, jobs=jobs)

"""Prometheus text-exposition rendering for every live metric source.

This module turns the repo's metric surfaces — per-simulation
:class:`~repro.simcore.monitor.Monitor` registries, the service layer's
session bookkeeping, the fabric store's cell states and the fabric worker's
loop counters — into `Prometheus text exposition format 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_.

Everything here is *pull-side and read-only*: rendering walks already-
existing metric objects and plain dictionaries, creates nothing inside the
simulation, draws no RNG, and schedules no events — the zero-perturbation
contract shared with :mod:`repro.telemetry.trace` (certified by the
telemetry null-invariance suite and benchmark E19).  The module is
deliberately duck-typed (it imports nothing from the rest of the package),
so the service, fabric and CLI layers can all feed it without cycles.

Mapping of the repo's metric kinds (``docs/OBSERVABILITY.md`` tabulates the
full name/label reference):

========================  =============================================
Monitor kind              Prometheus family
========================  =============================================
``Counter``               counter ``repro_<name>_total``
``Gauge``                 gauge ``repro_<name>``
``TimeSeries``            gauge ``repro_<name>`` (last value)
``SampleSeries``          histogram ``repro_<name>`` (+ ``_sum``/``_count``)
========================  =============================================
"""

from __future__ import annotations

import math
import re

import numpy as np
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

#: The Content-Type a conforming 0.0.4 exposition endpoint must serve.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Metric-name prefix for every family this repo exports.
NAMESPACE = "repro"

#: Upper bucket bounds (seconds-flavoured, Prometheus defaults) used when a
#: ``SampleSeries`` is rendered as a histogram.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_SCRUB = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, namespace: str = NAMESPACE) -> str:
    """``radio.frames_delivered`` → ``repro_radio_frames_delivered``."""
    scrubbed = _NAME_SCRUB.sub("_", name).strip("_")
    full = f"{namespace}_{scrubbed}" if namespace else scrubbed
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def escape_label_value(value: object) -> str:
    """Escape a label value per the exposition format (\\\\, \\", \\n)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """Render one sample value (exposition spec: ``NaN``, ``+Inf``, ``-Inf``)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


@dataclass(frozen=True)
class MetricPoint:
    """One counter or gauge sample bound for the exposition.

    ``name`` is the raw family name (dots allowed; sanitised at render
    time).  Counters get the conventional ``_total`` suffix appended if the
    name does not already carry it.
    """

    name: str
    kind: str  # "counter" | "gauge"
    value: float
    help: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge"):
            raise ValueError(f"MetricPoint kind must be counter/gauge, got {self.kind!r}")


@dataclass(frozen=True)
class HistogramPoint:
    """One histogram sample set (cumulative buckets + sum + count)."""

    name: str
    buckets: Tuple[Tuple[float, int], ...]  # (upper bound, cumulative count)
    sum: float
    count: int
    help: str = ""
    labels: Tuple[Tuple[str, str], ...] = ()

    kind: str = field(default="histogram", init=False)


def _labels_tuple(labels: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def point(
    name: str,
    kind: str,
    value: float,
    *,
    help: str = "",
    labels: Optional[Mapping[str, object]] = None,
) -> MetricPoint:
    """Convenience constructor accepting a plain label dict."""
    return MetricPoint(
        name=name, kind=kind, value=float(value), help=help,
        labels=_labels_tuple(labels),
    )


def histogram_from_values(
    name: str,
    values: Iterable[float],
    *,
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    help: str = "",
    labels: Optional[Mapping[str, object]] = None,
) -> HistogramPoint:
    """Bucket raw observations into a cumulative exposition histogram.

    Vectorised: a ``SampleSeries`` holds every raw observation of a run, so
    a scrape re-buckets the full history — at fleet scale that is hundreds
    of thousands of floats per family, and a pure-Python sort per scrape
    was the dominant telemetry cost in benchmark E19.
    """
    data = np.asarray(values if isinstance(values, np.ndarray) else list(values),
                      dtype=float)
    finite = np.sort(data[~np.isnan(data)]) if data.size else data
    bounds = sorted(buckets)
    counts = np.searchsorted(finite, bounds, side="right")
    return HistogramPoint(
        name=name,
        buckets=tuple((bound, int(cum)) for bound, cum in zip(bounds, counts)),
        sum=float(finite.sum()) if finite.size else 0.0,
        count=int(finite.size),
        help=help,
        labels=_labels_tuple(labels),
    )


# ------------------------------------------------------------------ monitor


def monitor_points(
    monitor: Any,
    labels: Optional[Mapping[str, object]] = None,
) -> List[Any]:
    """Bridge one :class:`~repro.simcore.monitor.Monitor` into points.

    Read-only: walks the monitor's registries without creating any metric.
    Duck-typed so old unpickled monitors (which may lack the ``gauges``
    registry added with this module) bridge cleanly.
    """
    out: List[Any] = []
    for name, counter in getattr(monitor, "counters", {}).items():
        out.append(
            point(
                name, "counter", counter.value,
                help=f"Monitor counter {name!r}", labels=labels,
            )
        )
    for name, gauge in getattr(monitor, "gauges", {}).items():
        out.append(
            point(
                name, "gauge", gauge.value,
                help=f"Monitor gauge {name!r}", labels=labels,
            )
        )
    for name, series in getattr(monitor, "series", {}).items():
        if len(series):
            out.append(
                point(
                    name, "gauge", series.last(),
                    help=f"Monitor time series {name!r} (last value)",
                    labels=labels,
                )
            )
    for name, sample in getattr(monitor, "samples", {}).items():
        if sample.count:
            out.append(
                histogram_from_values(
                    name, sample.values,
                    help=f"Monitor sample series {name!r}", labels=labels,
                )
            )
    return out


# ----------------------------------------------------------------- registry


class TelemetryRegistry:
    """Aggregates live metric sources into one exposition document.

    Sources are *pull-based*: monitors are looked up through callables at
    render time (a session that was evicted between scrapes simply stops
    contributing), and producers return fresh point lists per render.
    """

    def __init__(self) -> None:
        self._monitors: List[Tuple[Dict[str, str], Callable[[], Any]]] = []
        self._producers: List[Callable[[], Iterable[Any]]] = []

    def add_monitor(
        self,
        monitor: Any,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Register a monitor (or a zero-arg callable returning one/None)."""
        getter = monitor if callable(monitor) else (lambda m=monitor: m)
        self._monitors.append((dict(labels or {}), getter))

    def add_producer(self, producer: Callable[[], Iterable[Any]]) -> None:
        """Register a callable returning fresh points every render."""
        self._producers.append(producer)

    def collect(self) -> List[Any]:
        """Every point from every source, in registration order."""
        points: List[Any] = []
        for labels, getter in self._monitors:
            monitor = getter()
            if monitor is not None:
                points.extend(monitor_points(monitor, labels))
        for producer in self._producers:
            points.extend(producer())
        return points

    def render(self) -> str:
        """The full exposition document."""
        return render_exposition(self.collect())


# ---------------------------------------------------------------- rendering


def _family_name(sample: Any) -> str:
    name = sanitize_metric_name(sample.name)
    if sample.kind == "counter" and not name.endswith("_total"):
        name += "_total"
    return name


def render_exposition(points: Iterable[Any]) -> str:
    """Render points as exposition text (one HELP/TYPE block per family).

    Families are emitted in sorted name order and each family's samples in
    sorted label order, so the document is deterministic for a given metric
    state.  A family name claimed by two different kinds, or the same
    (family, labels) pair sampled twice, is a programming error and raises.
    """
    families: Dict[str, List[Any]] = {}
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for sample in points:
        family = _family_name(sample)
        if kinds.setdefault(family, sample.kind) != sample.kind:
            raise ValueError(
                f"metric family {family!r} claimed as both "
                f"{kinds[family]!r} and {sample.kind!r}"
            )
        if sample.help and family not in helps:
            helps[family] = sample.help
        families.setdefault(family, []).append(sample)
    lines: List[str] = []
    for family in sorted(families):
        samples = sorted(families[family], key=lambda s: s.labels)
        seen = set()
        for sample in samples:
            if sample.labels in seen:
                raise ValueError(
                    f"duplicate sample {family}{dict(sample.labels)!r}"
                )
            seen.add(sample.labels)
        if family in helps:
            escaped = helps[family].replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {family} {escaped}")
        lines.append(f"# TYPE {family} {kinds[family]}")
        for sample in samples:
            labels = dict(sample.labels)
            if kinds[family] == "histogram":
                acc = dict(labels)
                for bound, cum in sample.buckets:
                    acc["le"] = format_value(bound)
                    lines.append(
                        f"{family}_bucket{_label_block(acc)} {cum}"
                    )
                acc["le"] = "+Inf"
                lines.append(f"{family}_bucket{_label_block(acc)} {sample.count}")
                lines.append(
                    f"{family}_sum{_label_block(labels)} {format_value(sample.sum)}"
                )
                lines.append(f"{family}_count{_label_block(labels)} {sample.count}")
            else:
                lines.append(
                    f"{family}{_label_block(labels)} {format_value(sample.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# ------------------------------------------------------- service-layer bridge


def _session_tier(session: Any) -> str:
    config = getattr(getattr(session, "scenario", None), "config", None)
    return "statistical" if getattr(config, "fast_math", False) else "exact"


def session_registry_points(registry: Any) -> List[Any]:
    """Service-level gauges + every live session's monitor, labelled.

    Duck-typed over :class:`~repro.service.registry.SessionRegistry`:
    sessions whose scenario is gone (evicted/failed) contribute only to the
    state gauges.  The service bookkeeping lives on the registry object, not
    inside any simulation's monitor, so scraping cannot leak service
    metrics into a scenario report.
    """
    points: List[Any] = []
    for state, count in registry.state_counts().items():
        points.append(
            point(
                "service.sessions", "gauge", count,
                help="Sessions per lifecycle state",
                labels={"state": state},
            )
        )
    points.append(
        point(
            "service.scheduler_passes", "counter",
            getattr(registry, "scheduler_passes", 0),
            help="Round-robin scheduler passes completed",
        )
    )
    points.append(
        point(
            "service.sessions_stepped", "counter",
            getattr(registry, "sessions_stepped", 0),
            help="Session slices executed by the scheduler",
        )
    )
    for session in registry.sessions():
        scenario = getattr(session, "scenario", None)
        if scenario is None:
            continue
        labels = {
            "session_id": session.id,
            "scenario": session.scenario_name,
            "tier": _session_tier(session),
        }
        points.extend(monitor_points(scenario.sim.monitor, labels))
    return points


def session_registry_exposition(registry: Any) -> str:
    """The service facade's ``GET /metrics`` document."""
    return render_exposition(session_registry_points(registry))


# --------------------------------------------------------------- fabric bridge


def job_store_points(observation: Mapping[str, Any]) -> List[Any]:
    """Points from one :meth:`~repro.fabric.store.JobStore.observe` document.

    The observation dict is the *single shared accessor* both this renderer
    and ``repro fabric status --json`` consume, so the Prometheus view and
    the JSON view can never diverge.
    """
    points: List[Any] = []
    for state, count in observation["states"].items():
        points.append(
            point(
                "fabric.cells", "gauge", count,
                help="Fabric cells per state", labels={"state": state},
            )
        )
    points.append(
        point(
            "fabric.lease_expirations", "gauge", observation["lease_expired"],
            help="Leased cells whose deadline has passed (worker presumed dead)",
        )
    )
    points.append(
        point(
            "fabric.lease_acquisitions", "counter", observation["attempts_total"],
            help="Total lease acquisitions across all cells",
        )
    )
    points.append(
        point(
            "fabric.retries", "counter", observation["retries_total"],
            help="Lease acquisitions beyond each cell's first",
        )
    )
    histogram = observation["attempt_histogram"]
    bounds = (1.0, 2.0, 3.0, 5.0, 10.0)
    cumulative = [
        (bound, sum(n for attempts, n in histogram.items() if 0 < attempts <= bound))
        for bound in bounds
    ]
    attempted = sum(n for attempts, n in histogram.items() if attempts > 0)
    total = sum(attempts * n for attempts, n in histogram.items())
    points.append(
        HistogramPoint(
            name="fabric.cell_attempts",
            buckets=tuple(cumulative),
            sum=float(total),
            count=attempted,
            help="Lease acquisitions per attempted cell",
        )
    )
    for worker in observation["workers"]:
        labels = {"worker_id": worker["worker"]}
        points.append(
            point(
                "fabric.worker_leased_cells", "gauge", worker["leased"],
                help="Cells currently leased per worker", labels=labels,
            )
        )
        points.append(
            point(
                "fabric.worker_heartbeat_age_seconds", "gauge",
                worker["last_heartbeat_age_s"],
                help="Seconds since each worker's last store write",
                labels=labels,
            )
        )
    return points


def job_store_exposition(observation: Mapping[str, Any]) -> str:
    """``repro fabric status --prometheus``'s document."""
    return render_exposition(job_store_points(observation))


def worker_points(worker: Any) -> List[Any]:
    """A fabric worker's loop counters, labelled with its identity."""
    labels = {"worker_id": worker.worker_id}
    return [
        point(
            "fabric_worker.cells_completed", "counter", worker.completed,
            help="Cells this worker completed", labels=labels,
        ),
        point(
            "fabric_worker.cells_failed", "counter", worker.failed,
            help="Cell attempts this worker failed", labels=labels,
        ),
        point(
            "fabric_worker.cells_abandoned", "counter", worker.abandoned,
            help="Cells this worker abandoned (lease lost or released)",
            labels=labels,
        ),
    ]

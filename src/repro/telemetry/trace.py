"""Deterministic dual-clock tracing as Chrome trace-event JSON.

A :class:`Tracer` records *spans* (complete ``"X"`` events with a wall-clock
duration) and *instants* (``"i"`` markers) in the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
which Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` both load
directly.  Every record is **dual-clocked**: ``ts``/``dur`` are wall-clock
microseconds (what the viewer lays out), and the simulation's virtual time
travels in ``args.sim_time`` so a span can be read against either clock.

Zero-perturbation contract (certified by ``tests/telemetry`` and benchmark
E19): the tracer is a pure observer.  It never draws from the simulation's
RNG streams (sampling is a plain modulo counter), never schedules events,
and never touches the scenario object graph — instrumented call sites keep
no tracer reference; they ask :func:`current_tracer` per call, so snapshots
and reports are byte-identical whether tracing is on, off, or toggled
mid-run.  This module is stdlib-only and imports nothing from the rest of
the package, so every layer (simcore, scenarios, service, fabric) can hook
into it without import cycles.

Usage::

    tracer = Tracer(sample_every=10)
    with activate(tracer):
        scenario.run(duration=30.0)
    tracer.save("run.trace.json")   # open in Perfetto

Instrumented sites follow one idiom — a single module-global read on the
disabled path::

    tracer = current_tracer()
    if tracer is not None:
        start = tracer.clock()
    ... the actual work ...
    if tracer is not None:
        tracer.span("step", "sim", start, sim_time=sim.now, args={...})
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Trace-format tag stamped into saved documents.
TRACE_SCHEMA = "repro.trace/1"

#: The process-wide active tracer (``None`` = tracing disabled).  Read via
#: :func:`current_tracer` by every instrumented call site; heartbeat threads
#: see the same global, so fabric lifecycles trace across threads.
_ACTIVE: Optional["Tracer"] = None


def current_tracer() -> Optional["Tracer"]:
    """The active tracer, or ``None`` when tracing is disabled (the default)."""
    return _ACTIVE


@contextmanager
def activate(tracer: "Tracer") -> Iterator["Tracer"]:
    """Make ``tracer`` the process-wide active tracer for the ``with`` body.

    Nests: the previous tracer (usually ``None``) is restored on exit, even
    when the body raises, so a crashed traced run cannot leak an enabled
    tracer into subsequent untraced work.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def deactivate() -> None:
    """Force tracing off (test/benchmark teardown safety valve)."""
    global _ACTIVE
    _ACTIVE = None


class Tracer:
    """An append-only trace-event recorder with per-category sampling.

    Parameters
    ----------
    sample_every:
        Keep one record in every ``sample_every`` per (name, category) pair
        — the knob that bounds trace size on long runs.  ``1`` (default)
        records everything.  Sampling is a plain modulo counter: no RNG, so
        it cannot perturb the simulation, and two identical runs sample the
        identical records.
    clock:
        Wall-clock source (seconds, monotonic); injectable for deterministic
        tests.  Defaults to :func:`time.perf_counter`.
    """

    def __init__(
        self,
        sample_every: int = 1,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be at least 1, got {sample_every}")
        self.sample_every = int(sample_every)
        self.clock = clock
        self.events: List[Dict[str, Any]] = []
        self._origin = clock()
        self._counts: Dict[str, int] = {}
        self.dropped = 0

    # ------------------------------------------------------------- recording

    def _sampled(self, key: str) -> bool:
        count = self._counts.get(key, 0)
        self._counts[key] = count + 1
        if count % self.sample_every == 0:
            return True
        self.dropped += 1
        return False

    def _us(self, wall: float) -> float:
        return (wall - self._origin) * 1e6

    def _args(
        self, sim_time: Optional[float], args: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        merged: Dict[str, Any] = {} if args is None else dict(args)
        if sim_time is not None:
            merged["sim_time"] = sim_time
        return merged

    def span(
        self,
        name: str,
        category: str,
        wall_start: float,
        *,
        sim_time: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one complete (``"X"``) span from ``wall_start`` to now.

        ``wall_start`` is a value previously read from :attr:`clock` — the
        caller brackets the work itself, so a disabled tracer costs nothing
        inside the bracket.
        """
        if not self._sampled(f"{category}:{name}"):
            return
        end = self.clock()
        self.events.append(
            {
                "name": name,
                "cat": category,
                "ph": "X",
                "ts": self._us(wall_start),
                "dur": max(0.0, (end - wall_start) * 1e6),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": self._args(sim_time, args),
            }
        )

    def instant(
        self,
        name: str,
        category: str,
        *,
        sim_time: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one instant (``"i"``) marker at the current wall time."""
        if not self._sampled(f"{category}:{name}"):
            return
        self.events.append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "t",
                "ts": self._us(self.clock()),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": self._args(sim_time, args),
            }
        )

    def __len__(self) -> int:
        return len(self.events)

    # --------------------------------------------------------------- export

    def to_chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome/Perfetto-loadable JSON object."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA,
                "sample_every": self.sample_every,
                "dropped": self.dropped,
            },
        }

    def save(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns the event count."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle)
            handle.write("\n")
        return len(self.events)

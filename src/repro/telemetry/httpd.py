"""A stdlib metrics sidecar: one daemon thread serving ``GET /metrics``.

``repro worker --metrics-port N`` attaches one of these to the worker
process so a Prometheus scraper can watch cells complete without any hook
into the worker loop itself.  Built on :mod:`http.server` — no new
dependency — and fully passive: the render callable is invoked per scrape
on the server thread, the worker never blocks on it.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.telemetry.prometheus import CONTENT_TYPE


class MetricsServer:
    """Serve ``render()``'s exposition text on ``/metrics``.

    Parameters
    ----------
    render:
        Zero-arg callable returning the current exposition document; called
        once per scrape, on the server thread — it must open its own
        connections to thread-bound resources (e.g. a fresh ``JobStore``).
    host / port:
        Bind address.  ``port=0`` picks a free port (tests); the bound port
        is available as :attr:`port` after construction.
    """

    def __init__(
        self, render: Callable[[], str], *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics lives here")
                    return
                try:
                    body = outer.render().encode("utf-8")
                except Exception as error:  # noqa: BLE001 - surface as 500
                    self.send_error(500, f"metrics render failed: {error}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *_args) -> None:  # quiet: scrapes are noise
                pass

        self.render = render
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True, name="metrics-server"
        )

    def start(self) -> "MetricsServer":
        """Start serving in the background; returns self."""
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

"""Zero-perturbation observability: metrics export + sim-time tracing.

Two pillars, both off by default and provably byte-invisible when enabled
(no RNG draws, no scheduled events, no report deltas — the same
null-invariance contract :mod:`repro.faults` and :mod:`repro.snapshot`
honour, certified here by ``tests/telemetry`` and benchmark E19):

* :mod:`repro.telemetry.prometheus` — bridges every live
  :class:`~repro.simcore.monitor.Monitor` (per session, per worker, per
  run) plus the service/fabric bookkeeping into Prometheus text exposition
  format 0.0.4.  Served from ``GET /metrics`` on the service facade,
  ``repro worker --metrics-port``, and ``repro fabric status
  --prometheus``.
* :mod:`repro.telemetry.trace` — dual-clocked (wall + sim time) span
  recording as Chrome trace-event JSON, viewable in Perfetto.  Enabled via
  ``repro run --trace out.json`` / ``repro sweep --trace-dir DIR`` or the
  :func:`~repro.telemetry.trace.activate` context manager.
* :mod:`repro.telemetry.httpd` — the stdlib ``/metrics`` sidecar server
  the worker attaches.

See ``docs/OBSERVABILITY.md`` for the metric/label reference, the
trace-event schema, and the zero-perturbation contract.
"""

from repro.telemetry.httpd import MetricsServer
from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    DEFAULT_BUCKETS,
    HistogramPoint,
    MetricPoint,
    TelemetryRegistry,
    histogram_from_values,
    job_store_exposition,
    job_store_points,
    monitor_points,
    point,
    render_exposition,
    sanitize_metric_name,
    session_registry_exposition,
    session_registry_points,
    worker_points,
)
from repro.telemetry.trace import (
    TRACE_SCHEMA,
    Tracer,
    activate,
    current_tracer,
    deactivate,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "HistogramPoint",
    "MetricPoint",
    "MetricsServer",
    "TRACE_SCHEMA",
    "TelemetryRegistry",
    "Tracer",
    "activate",
    "current_tracer",
    "deactivate",
    "histogram_from_values",
    "job_store_exposition",
    "job_store_points",
    "monitor_points",
    "point",
    "render_exposition",
    "sanitize_metric_name",
    "session_registry_exposition",
    "session_registry_points",
    "worker_points",
]

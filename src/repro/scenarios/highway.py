"""Highway platoon scenario.

A straight multi-kilometre road with vehicles travelling in both directions.
Contacts between same-direction vehicles are long (platoons), contacts across
directions are short (high relative speed) — the configuration that stresses
the contact-time term of the candidate scorer.  Used by the candidate-
selection ablation (E6) and as a third example application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.compute.faas import FunctionRegistry
from repro.compute.resources import ResourceSpec
from repro.core.api import AirDnDNode
from repro.geometry.vector import Vec2
from repro.mobility.manager import MobilityManager
from repro.mobility.vehicle import Vehicle, VehicleParameters
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.scenarios.base import BaseScenarioConfig, Scenario, ScenarioReport
from repro.scenarios.workloads import GenericComputeWorkload, register_generic_functions
from repro.simcore.simulator import Simulator


@dataclass
class HighwayConfig(BaseScenarioConfig):
    """Parameters of the highway scenario (plus the shared protocol knobs)."""

    vehicles_per_direction: int = 8
    road_length: float = 2000.0
    lane_gap: float = 8.0
    headway: float = 60.0
    forward_speed: float = 25.0
    backward_speed: float = 22.0
    task_rate_per_s: float = 1.0
    seed: int = 0


class HighwayScenario(Scenario):
    """Assembled highway scenario."""

    def __init__(self, config: Optional[HighwayConfig] = None) -> None:
        self.config = config or HighwayConfig()
        sim = Simulator(seed=self.config.seed)
        super().__init__(sim, name="highway")
        cfg = self.config

        self.mobility = MobilityManager(sim, tick=0.2, cell_size=250.0)
        self.environment = RadioEnvironment(
            sim, LinkBudget(fast_math=cfg.fast_math), mobility=self.mobility
        )
        self.registry = FunctionRegistry()
        register_generic_functions(self.registry)
        self.scorer = cfg.shared_scorer()

        self._build_vehicles()
        self.workload = GenericComputeWorkload(
            sim,
            self.nodes,
            self.registry,
            arrival_rate_per_s=cfg.task_rate_per_s,
            redundancy=cfg.task_redundancy,
        )
        self.install_faults(workload=self.workload)

    def _build_vehicles(self) -> None:
        cfg = self.config
        params_fwd = VehicleParameters(max_speed=cfg.forward_speed)
        params_bwd = VehicleParameters(max_speed=cfg.backward_speed)
        self.vehicles: List[Vehicle] = []
        self.nodes = []
        spec = ResourceSpec(cpu_ops_per_second=3e9, cores=2, memory_mb=4096)
        for index in range(cfg.vehicles_per_direction):
            start_x = -float(index) * cfg.headway
            vehicle = Vehicle(
                self.sim,
                [Vec2(start_x, 0.0), Vec2(cfg.road_length, 0.0)],
                params=params_fwd,
                name=f"fwd-{index}",
                initial_speed=cfg.forward_speed,
            )
            self._register_vehicle(vehicle, spec)
        for index in range(cfg.vehicles_per_direction):
            start_x = cfg.road_length + float(index) * cfg.headway
            vehicle = Vehicle(
                self.sim,
                [Vec2(start_x, cfg.lane_gap), Vec2(-cfg.headway, cfg.lane_gap)],
                params=params_bwd,
                name=f"bwd-{index}",
                initial_speed=cfg.backward_speed,
            )
            self._register_vehicle(vehicle, spec)

    def _register_vehicle(self, vehicle: Vehicle, spec: ResourceSpec) -> None:
        self.mobility.add_node(vehicle)
        self.vehicles.append(vehicle)
        node = AirDnDNode(
            self.sim,
            self.environment,
            vehicle,
            self.registry,
            config=self.config.node_config(spec),
            scorer=self.scorer,
            placement=self.config.placement_policy(),
        )
        self.nodes.append(node)

    # --------------------------------------------------------------- report

    def build_report(self) -> ScenarioReport:
        report = super().build_report()
        contact_predictions = []
        for node in self.nodes:
            for neighbor in node.network_description().neighbors:
                if neighbor.predicted_contact_time_s != float("inf"):
                    contact_predictions.append(neighbor.predicted_contact_time_s)
        report.extra["mean_predicted_contact_s"] = (
            sum(contact_predictions) / len(contact_predictions)
            if contact_predictions
            else 0.0
        )
        return report


def build_highway_scenario(
    vehicles_per_direction: int = 8, seed: int = 0, **overrides
) -> HighwayScenario:
    """Convenience builder for the highway scenario."""
    config = HighwayConfig(
        vehicles_per_direction=vehicles_per_direction, seed=seed, **overrides
    )
    return HighwayScenario(config)

"""Workload generators and the generic compute function catalogue.

Besides the perception functions, the urban-grid and utilisation experiments
need a generic, parameterisable compute workload.  ``register_generic_functions``
adds two catalogue entries:

* ``generic_compute`` — a pure function of its declared operation count;
  the result is a small summary dictionary.
* ``map_update`` — a medium-weight function that also touches the executor's
  data pond (counts recent frames), standing in for cooperative-map tasks.

:class:`GenericComputeWorkload` submits such tasks from randomly chosen nodes
with exponential inter-arrival times (a Poisson process per the usual
telecom assumption).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.compute.faas import FunctionDefinition, FunctionRegistry
from repro.core.api import AirDnDNode
from repro.core.models import TaskDescription
from repro.core.task_model import build_task
from repro.data.datatypes import DataType
from repro.simcore.simulator import Simulator


def _generic_compute_body(parameters: Dict[str, Any], _pond: Any) -> Dict[str, Any]:
    """Pure compute: return a small summary of what was 'computed'."""
    return {
        "operations": float(parameters.get("operations", 1e8)),
        "label": parameters.get("label", "generic"),
    }


def _generic_compute_cost(parameters: Dict[str, Any]) -> float:
    return float(parameters.get("operations", 1e8))


def _map_update_body(parameters: Dict[str, Any], pond: Any) -> Dict[str, Any]:
    """Touch the executor's pond: summarise how many recent frames exist."""
    now = float(parameters.get("now", 0.0))
    frames = 0
    if pond is not None and hasattr(pond, "frames"):
        frames = len(pond.frames(DataType.LIDAR_SCAN, now, max_age=2.0))
    return {"frames_used": frames}


def _map_update_cost(parameters: Dict[str, Any]) -> float:
    return 2e8 + 5e7 * float(parameters.get("frame_count_hint", 1))


def register_generic_functions(registry: FunctionRegistry) -> None:
    """Register the generic workload functions into a catalogue."""
    registry.register(
        FunctionDefinition(
            name="generic_compute",
            body=_generic_compute_body,
            cost_model=_generic_compute_cost,
            memory_mb=64.0,
            result_size_bytes=500,
        )
    )
    registry.register(
        FunctionDefinition(
            name="map_update",
            body=_map_update_body,
            cost_model=_map_update_cost,
            memory_mb=128.0,
            result_size_bytes=5_000,
        )
    )


class GenericComputeWorkload:
    """Poisson task arrivals over a set of AirDnD nodes.

    Parameters
    ----------
    sim:
        The simulator.
    nodes:
        Nodes that may originate tasks.
    registry:
        The shared function catalogue (must contain ``generic_compute``).
    arrival_rate_per_s:
        Mean tasks per second across the whole fleet.
    operations_range:
        ``(low, high)`` of the per-task operation count (log-uniform draw).
    deadline_s:
        Deadline stamped on each task (0 disables).
    redundancy:
        Replica count stamped on each task (k-redundant execution with
        majority voting when > 1 — the RQ3 integrity backstop).
    rng_stream:
        Random-stream name for reproducibility.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[AirDnDNode],
        registry: FunctionRegistry,
        arrival_rate_per_s: float = 2.0,
        operations_range: tuple = (5e7, 1e9),
        deadline_s: float = 0.0,
        redundancy: int = 1,
        rng_stream: str = "workload",
    ) -> None:
        if arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        self.sim = sim
        self.nodes = list(nodes)
        self.registry = registry
        self.arrival_rate = arrival_rate_per_s
        self.operations_range = operations_range
        self.deadline_s = deadline_s
        self.redundancy = redundancy
        self._rng = sim.streams.get(rng_stream)
        self.submitted: List[TaskDescription] = []
        self._suspended: set = set()
        self._stopped = False
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating new tasks."""
        self._stopped = True

    def suspend_node(self, node: AirDnDNode) -> None:
        """Stop ``node`` originating tasks (crashed; fault injection)."""
        self._suspended.add(node.name)

    def resume_node(self, node: AirDnDNode) -> None:
        """Let ``node`` originate tasks again (recovered)."""
        self._suspended.discard(node.name)

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        gap = float(self._rng.exponential(1.0 / self.arrival_rate))
        self.sim.schedule(gap, self._submit_one, name="workload-arrival")

    def _submit_one(self) -> None:
        if self._stopped or not self.nodes:
            return
        eligible = (
            [node for node in self.nodes if node.name not in self._suspended]
            if self._suspended
            else self.nodes
        )
        if not eligible:
            # Whole fleet down: skip this arrival but keep the process alive.
            self._schedule_next()
            return
        node = eligible[int(self._rng.integers(len(eligible)))]
        low, high = self.operations_range
        operations = float(
            10 ** self._rng.uniform(math.log10(low), math.log10(high))
        )
        task = build_task(
            self.registry,
            "generic_compute",
            parameters={"operations": operations, "label": f"wl-{len(self.submitted)}"},
            deadline_s=self.deadline_s,
            redundancy=self.redundancy,
        )
        self.submitted.append(task)
        node.submit_task(task)
        self._schedule_next()

"""The "looking around the corner" scenario.

Layout (the paper's Figure 1 situation, concretised):

* A single four-way intersection with occluding buildings in all four
  corners.
* The *ego* vehicle approaches from the south.  A pedestrian (or a slow
  crossing vehicle) is on the east arm, hidden from the ego's own sensors by
  the corner building.
* Several other vehicles approach from the other arms; at least one of them
  has line of sight to the hidden agent and therefore holds the data the ego
  needs.
* The ego periodically submits a ``perceive_objects`` task with a region of
  interest centred on the intersection.  AirDnD places the task on an
  in-range neighbour whose pond covers the region; only the tiny object list
  travels back.

The scenario records :class:`~repro.perception.lookaround.LookAroundMetrics`
(occluded-agent detection) and, via the base class, latency/byte metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.compute.faas import FunctionRegistry
from repro.compute.resources import ResourceSpec
from repro.core.api import AirDnDNode
from repro.core.models import DataDescription, TaskResult
from repro.data.datatypes import DataType
from repro.data.quality import DataQuality
from repro.data.sensors import LidarSensor
from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.geometry.vector import Vec2
from repro.mobility.manager import MobilityManager
from repro.mobility.providers import PositionOf
from repro.mobility.road_network import RoadNetwork, single_intersection
from repro.mobility.vehicle import Vehicle, VehicleParameters
from repro.mobility.waypoints import StaticNode
from repro.perception.lookaround import (
    LookAroundMetrics,
    register_perception_functions,
)
from repro.perception.objects import ObjectList
from repro.perception.visibility import observer_visibility
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.radio.propagation import LogDistancePathLoss
from repro.scenarios.base import BaseScenarioConfig, Scenario, ScenarioReport
from repro.simcore.simulator import Simulator


def corner_buildings(
    setback: float = 12.0, size: float = 60.0
) -> List[Rectangle]:
    """Building footprints in the four corners of the intersection."""
    return [
        Rectangle(setback, setback, setback + size, setback + size),
        Rectangle(-setback - size, setback, -setback, setback + size),
        Rectangle(setback, -setback - size, setback + size, -setback),
        Rectangle(-setback - size, -setback - size, -setback, -setback),
    ]


@dataclass
class IntersectionConfig(BaseScenarioConfig):
    """Parameters of the looking-around-the-corner scenario (plus the shared
    protocol knobs)."""

    num_vehicles: int = 6
    arm_length: float = 200.0
    sensor_range: float = 80.0
    perception_period: float = 1.0
    region_radius: float = 40.0
    vehicle_speed: float = 10.0
    pedestrian_offset: float = 35.0
    use_cellular_baseline: bool = False
    seed: int = 0


class IntersectionScenario(Scenario):
    """Assembled looking-around-the-corner scenario."""

    def __init__(self, config: Optional[IntersectionConfig] = None) -> None:
        self.config = config or IntersectionConfig()
        sim = Simulator(seed=self.config.seed)
        super().__init__(sim, name="intersection")

        cfg = self.config
        self.network: RoadNetwork = single_intersection(arm_length=cfg.arm_length)
        self.buildings = corner_buildings()
        self.visibility = VisibilityMap(self.buildings)
        self.mobility = MobilityManager(sim, tick=0.1, cell_size=150.0)
        self.environment = RadioEnvironment(
            sim,
            LinkBudget(LogDistancePathLoss(), fast_math=cfg.fast_math),
            visibility=self.visibility,
            mobility=self.mobility,
        )
        self.registry = FunctionRegistry()
        register_perception_functions(self.registry)
        self.scorer = cfg.shared_scorer()

        self.metrics = LookAroundMetrics()
        self.perception_results: List[ObjectList] = []
        self._fused_known_labels: set = set()

        self._build_agents()
        self._build_vehicles()
        self._schedule_perception()
        self.install_faults()

    # ------------------------------------------------------------- building

    def _build_agents(self) -> None:
        """Create the hidden road users (ground truth, not AirDnD members)."""
        cfg = self.config
        # A pedestrian standing on the east arm, tucked behind the NE corner
        # building as seen from the south approach.
        self.pedestrian = StaticNode(
            self.sim, Vec2(cfg.pedestrian_offset, 6.0), name="pedestrian-0"
        )
        self.mobility.add_node(self.pedestrian)

    def _build_vehicles(self) -> None:
        cfg = self.config
        rng = self.sim.streams.get("scenario")
        arms = ["south", "west", "north", "east"]
        params = VehicleParameters(max_speed=cfg.vehicle_speed)
        self.vehicles: List[Vehicle] = []
        for index in range(cfg.num_vehicles):
            arm = arms[index % len(arms)]
            opposite = {"south": "north", "north": "south", "east": "west", "west": "east"}[arm]
            start = self.network.position_of(arm)
            # Stagger starting positions along the arm so vehicles do not overlap.
            offset = float(rng.uniform(0.0, cfg.arm_length * 0.4))
            direction = (self.network.position_of("center") - start).normalized()
            start = start + direction * offset
            route = [start, self.network.position_of("center"), self.network.position_of(opposite)]
            vehicle = Vehicle(
                self.sim,
                route,
                params=params,
                name=f"veh-{index}",
                initial_speed=cfg.vehicle_speed * 0.8,
            )
            self.mobility.add_node(vehicle)
            self.vehicles.append(vehicle)

        self.nodes = []
        spec = ResourceSpec(cpu_ops_per_second=4e9, cores=4, memory_mb=8192)
        for vehicle in self.vehicles:
            node = AirDnDNode(
                self.sim,
                self.environment,
                vehicle,
                self.registry,
                config=self.config.node_config(spec),
                scorer=self.scorer,
                placement=self.config.placement_policy(),
            )
            LidarSensor(
                self.sim,
                vehicle.name,
                position_provider=PositionOf(vehicle),
                ground_truth=self.ground_truth,
                pond=node.pond,
                visibility=self.visibility,
                range_m=self.config.sensor_range,
            )
            self.nodes.append(node)
        self.ego = self.nodes[0]

    # ---------------------------------------------------------- ground truth

    def ground_truth(self) -> List[Tuple[str, Vec2]]:
        """All agents a perfect sensor could observe."""
        agents = [(v.name, v.position) for v in self.vehicles]
        agents.append((self.pedestrian.name, self.pedestrian.position))
        return agents

    def occluded_from_ego(self) -> List[str]:
        """Ground-truth agents currently hidden from the ego's own sensors."""
        report = observer_visibility(
            self.ego.name,
            self.ego.position,
            self.ground_truth(),
            self.visibility,
            max_range=self.config.sensor_range,
        )
        return list(report.occluded_labels)

    # ------------------------------------------------------------ perception

    def _schedule_perception(self) -> None:
        self.sim.schedule_periodic(
            self.config.perception_period,
            self._perception_round,
            start_delay=2.0,
            name="ego-perception",
        )

    def _perception_round(self) -> None:
        """One ego perception round: local sensing plus an AirDnD task."""
        if self.ego.crashed:
            # A crashed device perceives nothing and submits nothing; rounds
            # resume automatically once the ego recovers.
            return
        cfg = self.config
        region_center = self.network.position_of("center")
        occluded = self.occluded_from_ego()

        # What the ego already knows from its own pond.
        local_list = self._local_object_labels()

        data_need = DataDescription(
            data_type=DataType.LIDAR_SCAN,
            required_quality=DataQuality(
                freshness_s=1.0, coverage_radius_m=30.0, resolution=0.5, accuracy=0.5
            ),
            region_center=region_center,
            region_radius=cfg.region_radius,
        )

        self.ego.submit_function(
            "perceive_objects",
            parameters={
                "region_center": region_center,
                "region_radius": cfg.region_radius,
                "max_age": 1.0,
                "now": self.sim.now,
            },
            data=data_need,
            deadline_s=0.0,
            redundancy=cfg.task_redundancy,
            on_result=_PerceptionFusion(self, occluded, local_list),
        )

    def _fuse_perception(
        self, result: TaskResult, occluded_then: List[str], local_then: List[str]
    ) -> None:
        """Fold one round's remote result into the ego's fused world view."""
        known = set(local_then)
        if result.success and isinstance(result.value, ObjectList):
            self.perception_results.append(result.value)
            known |= set(result.value.labels())
        self._fused_known_labels = known
        self.metrics.record_attempt(self.sim.now, occluded_then, sorted(known))

    def _local_object_labels(self) -> List[str]:
        from repro.perception.lookaround import build_local_object_list

        local = build_local_object_list(
            {"now": self.sim.now, "max_age": 1.0}, self.ego.pond
        )
        return local.labels()

    # --------------------------------------------------------------- report

    def build_report(self) -> ScenarioReport:
        report = super().build_report()
        report.extra["occluded_detection_rate"] = self.metrics.occluded_detection_rate()
        report.extra["occluded_agents_detected"] = float(self.metrics.detected_agent_count())
        report.extra["perception_rounds"] = float(self.metrics.attempts)
        return report


class _PerceptionFusion:
    """Result callback of one perception round (picklable).

    Captures the round's occluded/local label lists the way the former
    closure's default arguments did, so a snapshot taken while the task is
    in flight restores the exact same fusion inputs.
    """

    __slots__ = ("scenario", "occluded_then", "local_then")

    def __init__(
        self,
        scenario: IntersectionScenario,
        occluded_then: List[str],
        local_then: List[str],
    ) -> None:
        self.scenario = scenario
        self.occluded_then = occluded_then
        self.local_then = local_then

    def __call__(self, result: TaskResult) -> None:
        self.scenario._fuse_perception(result, self.occluded_then, self.local_then)


def build_intersection_scenario(
    num_vehicles: int = 6, seed: int = 0, **overrides
) -> IntersectionScenario:
    """Convenience builder used by the quickstart and the benchmarks."""
    config = IntersectionConfig(num_vehicles=num_vehicles, seed=seed, **overrides)
    return IntersectionScenario(config)

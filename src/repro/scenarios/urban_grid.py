"""Urban Manhattan-grid scenario.

Many vehicles drive random routes over a Manhattan grid while a Poisson
workload of generic compute tasks arrives at random nodes.  This scenario is
the workhorse for the mesh-dynamics (E3), utilisation (E5) and scalability
(E9) experiments; it has no ground-truth pedestrians, but ``with_buildings``
fills every block interior with an occluding footprint so cross-block links
pay the NLOS path-loss penalty — the configuration the link-pipeline
benchmark (E13) runs at scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.compute.faas import FunctionRegistry
from repro.compute.resources import ResourceSpec
from repro.core.api import AirDnDNode
from repro.geometry.los import VisibilityMap
from repro.geometry.shapes import Rectangle
from repro.mesh.topology import TopologyObserver
from repro.mobility.manager import MobilityManager
from repro.mobility.road_network import manhattan_grid
from repro.mobility.vehicle import Vehicle, VehicleParameters
from repro.radio.interfaces import RadioEnvironment
from repro.radio.link import LinkBudget
from repro.scenarios.base import BaseScenarioConfig, Scenario, ScenarioReport
from repro.scenarios.workloads import GenericComputeWorkload, register_generic_functions
from repro.simcore.simulator import Simulator


def block_buildings(
    rows: int, cols: int, spacing: float, street_width: float
) -> List[Rectangle]:
    """One building footprint per block interior of a Manhattan grid.

    The grid's intersections sit at multiples of ``spacing``; each footprint
    fills the block between four intersections, set back ``street_width / 2``
    from the connecting road axes.
    """
    margin = street_width / 2.0
    return [
        Rectangle(
            col * spacing + margin,
            row * spacing + margin,
            (col + 1) * spacing - margin,
            (row + 1) * spacing - margin,
        )
        for row in range(rows - 1)
        for col in range(cols - 1)
    ]


@dataclass
class UrbanGridConfig(BaseScenarioConfig):
    """Parameters of the urban-grid scenario (plus the shared protocol knobs)."""

    num_vehicles: int = 20
    grid_rows: int = 4
    grid_cols: int = 4
    block_spacing: float = 150.0
    vehicle_speed: float = 12.0
    task_rate_per_s: float = 2.0
    heterogeneous_compute: bool = True
    with_buildings: bool = False
    street_width: float = 20.0
    seed: int = 0

    def __post_init__(self) -> None:
        """Fail fast on nonsensical geometry knobs (sweepable via ``--set``).

        A street at least as wide as the block spacing leaves no room for a
        building footprint (crashing deep in :class:`Rectangle` with no
        mention of the knob), and a negative width would silently place
        buildings on top of the roads the vehicles drive on.
        """
        super().__post_init__()
        if not 0.0 < self.street_width < self.block_spacing:
            raise ValueError(
                f"street_width must be in (0, block_spacing="
                f"{self.block_spacing}), got {self.street_width}"
            )


class _TopologyAgentSwap:
    """Recovery listener re-pointing the topology observer (picklable)."""

    __slots__ = ("topology",)

    def __init__(self, topology: TopologyObserver) -> None:
        self.topology = topology

    def __call__(self, node) -> None:
        self.topology.replace_agent(node.mesh.beacon_agent)


class UrbanGridScenario(Scenario):
    """Assembled urban-grid scenario."""

    def __init__(self, config: Optional[UrbanGridConfig] = None) -> None:
        self.config = config or UrbanGridConfig()
        sim = Simulator(seed=self.config.seed)
        super().__init__(sim, name="urban_grid")
        cfg = self.config

        self.network = manhattan_grid(cfg.grid_rows, cfg.grid_cols, cfg.block_spacing)
        self.buildings: List[Rectangle] = (
            block_buildings(
                cfg.grid_rows, cfg.grid_cols, cfg.block_spacing, cfg.street_width
            )
            if cfg.with_buildings
            else []
        )
        self.visibility = VisibilityMap(self.buildings) if self.buildings else None
        self.mobility = MobilityManager(sim, tick=0.2, cell_size=200.0)
        self.environment = RadioEnvironment(
            sim,
            LinkBudget(fast_math=cfg.fast_math),
            visibility=self.visibility,
            mobility=self.mobility,
        )
        self.registry = FunctionRegistry()
        register_generic_functions(self.registry)
        self.scorer = cfg.shared_scorer()

        self._build_vehicles()
        self.topology = TopologyObserver(
            sim, [node.mesh.beacon_agent for node in self.nodes], period=1.0
        )
        self.workload = GenericComputeWorkload(
            sim,
            self.nodes,
            self.registry,
            arrival_rate_per_s=cfg.task_rate_per_s,
            redundancy=cfg.task_redundancy,
        )
        self.install_faults(workload=self.workload)
        # Recovery rebuilds a node's beacon agent; swap the dead stack's
        # agent out of the topology observer for the live one.
        self.faults.on_recover(_TopologyAgentSwap(self.topology))

    def _build_vehicles(self) -> None:
        cfg = self.config
        rng = self.sim.streams.get("scenario")
        params = VehicleParameters(max_speed=cfg.vehicle_speed)
        self.vehicles: List[Vehicle] = []
        self.nodes = []
        for index in range(cfg.num_vehicles):
            path = self.network.random_route(rng, min_hops=3)
            route = self.network.path_to_polyline(path)
            vehicle = Vehicle(
                self.sim,
                route,
                params=params,
                name=f"car-{index}",
                initial_speed=cfg.vehicle_speed * 0.5,
                loop_route=True,
            )
            self.mobility.add_node(vehicle)
            self.vehicles.append(vehicle)
            spec = self._compute_spec(index, rng)
            node = AirDnDNode(
                self.sim,
                self.environment,
                vehicle,
                self.registry,
                config=cfg.node_config(spec),
                scorer=self.scorer,
                placement=cfg.placement_policy(),
            )
            self.nodes.append(node)

    def _compute_spec(self, index: int, rng) -> ResourceSpec:
        """Heterogeneous fleet: every third vehicle is compute-rich."""
        if not self.config.heterogeneous_compute:
            return ResourceSpec(cpu_ops_per_second=2e9, cores=2)
        if index % 3 == 0:
            return ResourceSpec(
                cpu_ops_per_second=8e9, cores=4, memory_mb=16384, accelerators={"gpu": 5e10}
            )
        if index % 3 == 1:
            return ResourceSpec(cpu_ops_per_second=2e9, cores=2, memory_mb=4096)
        return ResourceSpec(cpu_ops_per_second=5e8, cores=1, memory_mb=1024)

    # --------------------------------------------------------------- report

    def build_report(self) -> ScenarioReport:
        report = super().build_report()
        latest = self.topology.latest()
        report.extra["mesh_largest_component"] = float(
            latest.largest_component_size() if latest else 0
        )
        report.extra["mesh_mean_degree"] = float(latest.mean_degree() if latest else 0.0)
        report.extra["mesh_mean_link_lifetime_s"] = self.topology.mean_link_lifetime()
        utilizations = [node.compute.utilization() for node in self.nodes]
        report.extra["mean_utilization"] = (
            sum(utilizations) / len(utilizations) if utilizations else 0.0
        )
        report.extra["max_utilization"] = max(utilizations) if utilizations else 0.0
        return report


def build_urban_grid_scenario(
    num_vehicles: int = 20, seed: int = 0, **overrides
) -> UrbanGridScenario:
    """Convenience builder for the urban-grid scenario."""
    config = UrbanGridConfig(num_vehicles=num_vehicles, seed=seed, **overrides)
    return UrbanGridScenario(config)

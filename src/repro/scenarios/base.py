"""Scenario base classes and the report every scenario produces."""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compute.resources import ResourceSpec
from repro.core.api import AirDnDConfig, AirDnDNode
from repro.core.candidate import CandidateScorer
from repro.core.lifecycle import TaskLifecycle
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultKnobs, FaultSchedule
from repro.metrics.report import reputation_gap, wrong_result_acceptance_rate
from repro.simcore.simulator import Simulator, StepOutcome
from repro.telemetry.trace import current_tracer


def _placement_airdnd():
    return None  # AirDnDNode installs its default BestScorePlacement


def _placement_decloud_auction():
    from repro.baselines import AuctionPlacement

    return AuctionPlacement()


def _placement_smart_contract():
    from repro.baselines import ContractPlacement

    return ContractPlacement()


def _placement_coded_vec_auction():
    from repro.baselines import CodedAuctionPlacement

    return CodedAuctionPlacement(k=1)


#: placement knob value -> factory for one node's policy instance.  Imports
#: are deferred: repro.baselines is only paid for when actually selected.
PLACEMENT_POLICIES = {
    "airdnd": _placement_airdnd,
    "decloud_auction": _placement_decloud_auction,
    "smart_contract": _placement_smart_contract,
    "coded_vec_auction": _placement_coded_vec_auction,
}


@dataclass
class BaseScenarioConfig:
    """Protocol knobs every scenario config exposes uniformly.

    These are forwarded into each node's
    :class:`~repro.core.api.AirDnDConfig` via :meth:`node_config`; the
    defaults match it, so a scenario that never touches them behaves exactly
    as before.  Declared once here so ``repro sweep --set`` reaches the same
    knob names in every scenario — add new shared knobs in this class, not
    in the per-scenario configs.

    The fault knobs (``crash_rate`` … ``loss_burst_rate``) parameterise the
    scenario's :class:`~repro.faults.injector.FaultInjector`; at their
    defaults the injector is installed but injects nothing, which is
    byte-identical to not installing it (the :mod:`repro.faults` determinism
    contract).  ``task_redundancy`` is the requester-side replica count the
    scenario's workload stamps on every task (k-redundant execution is the
    RQ3 integrity backstop the adversary knobs are meant to stress).

    ``fast_math`` selects the radio stack's equivalence tier.  ``False``
    (default) is the *exact* tier: seeded runs are byte-identical across the
    reference flags (benchmarks E11/E13).  ``True`` is the *statistical*
    tier: fused numpy SIMD link kernels and batched event-core delivery,
    ~last-ulp different per link, promising distribution-level agreement of
    aggregate metrics only (benchmark E15; see ``docs/PERFORMANCE.md``).
    Sweepable like any knob: ``repro sweep --set fast_math=true,false``.
    """

    beacon_period: float = 0.5
    min_trust: float = 0.3
    fast_math: bool = False
    #: Which allocation mechanism every node's orchestrator runs.  "airdnd"
    #: (default) is the paper's multi-criteria scorer; the others are the
    #: related-work adapters from :mod:`repro.baselines`, so benchmark E7's
    #: comparison is one sweep dimension: ``--set placement=airdnd,...``.
    placement: str = "airdnd"
    # --- fault & adversary injection (repro.faults) ------------------------
    crash_rate: float = 0.0
    mean_downtime: float = 5.0
    radio_degradation: float = 0.0
    malicious_fraction: float = 0.0
    adversary_profile: str = "liar"
    loss_burst_rate: float = 0.0
    task_redundancy: int = 1

    def __post_init__(self) -> None:
        """Fail fast on an invalid equivalence-tier selector.

        ``--set fast_math=1`` (or any other non-bool) would otherwise only
        surface deep inside :class:`~repro.radio.link.LinkBudget`; subclasses
        adding their own ``__post_init__`` must chain up with
        ``super().__post_init__()``.
        """
        if not isinstance(self.fast_math, bool):
            raise ValueError(
                "fast_math selects the equivalence tier and must be a bool "
                f"(False=exact, True=statistical), got {self.fast_math!r}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {self.placement!r} "
                f"(choose from {', '.join(sorted(PLACEMENT_POLICIES))})"
            )

    def placement_policy(self):
        """A fresh placement-policy instance per call, or ``None`` for AirDnD.

        Fresh per call because stateful mechanisms (the coded auction's
        provider bookkeeping, for one) must not be shared across nodes —
        each node's orchestrator owns its own instance, matching how E7
        historically installed them.
        """
        return PLACEMENT_POLICIES[self.placement]()

    def node_config(self, spec: ResourceSpec) -> AirDnDConfig:
        """The per-node AirDnD configuration this scenario prescribes."""
        return AirDnDConfig(
            compute_spec=spec,
            beacon_period=self.beacon_period,
            min_trust=self.min_trust,
        )

    def fault_knobs(self) -> FaultKnobs:
        """The scenario's fault knobs as a validated :class:`FaultKnobs`.

        Called during scenario construction, so a typo'd sweep value
        (``--set malicious_fraction=1.5``) fails immediately with the knob
        named, not after the grid has burned hours.
        """
        if self.task_redundancy < 1:
            raise ValueError(
                f"task_redundancy must be at least 1, got {self.task_redundancy}"
            )
        return FaultKnobs(
            crash_rate=self.crash_rate,
            mean_downtime=self.mean_downtime,
            radio_degradation=self.radio_degradation,
            malicious_fraction=self.malicious_fraction,
            adversary_profile=self.adversary_profile,
            loss_burst_rate=self.loss_burst_rate,
        )

    def shared_scorer(self) -> CandidateScorer:
        """One :class:`~repro.core.candidate.CandidateScorer` for the fleet.

        The scoring knobs (weights, trust threshold, margins) are uniform
        across a scenario's nodes, and the network view's freshness token is
        owner-qualified, so a single scorer — and its LRU score cache — can
        serve every node.  Scenarios build one of these and pass it to each
        :class:`~repro.core.api.AirDnDNode`.

        Derived from the same :meth:`node_config` every node receives (the
        compute spec does not feed the scorer), so a future scenario knob
        that reaches :meth:`AirDnDConfig.scorer` cannot silently diverge
        between the shared scorer and the per-node configs.
        """
        return self.node_config(ResourceSpec()).scorer()


@dataclass
class ScenarioReport:
    """Headline metrics of one scenario run.

    The report is intentionally flat and numeric so that benchmark tables can
    be assembled by simple dictionary access.
    """

    duration_s: float
    node_count: int
    tasks_submitted: int = 0
    tasks_completed: int = 0
    tasks_failed: int = 0
    mean_task_latency_s: float = math.nan
    p95_task_latency_s: float = math.nan
    mesh_bytes: float = 0.0
    cellular_bytes: float = 0.0
    offloaded_tasks: int = 0
    local_tasks: int = 0
    #: True when a callback raised ``StopSimulation`` before a run window's
    #: requested end — ``duration_s`` then reflects the *actual* simulated
    #: time, not the requested window length.
    stopped_early: bool = False
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Completed over terminal tasks (1.0 when nothing was submitted)."""
        terminal = self.tasks_completed + self.tasks_failed
        if terminal == 0:
            return 1.0
        return self.tasks_completed / terminal

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (headline fields plus extras)."""
        out = {
            "duration_s": self.duration_s,
            "node_count": float(self.node_count),
            "tasks_submitted": float(self.tasks_submitted),
            "tasks_completed": float(self.tasks_completed),
            "tasks_failed": float(self.tasks_failed),
            "success_rate": self.success_rate,
            "mean_task_latency_s": self.mean_task_latency_s,
            "p95_task_latency_s": self.p95_task_latency_s,
            "mesh_bytes": self.mesh_bytes,
            "cellular_bytes": self.cellular_bytes,
            "offloaded_tasks": float(self.offloaded_tasks),
            "local_tasks": float(self.local_tasks),
        }
        if self.stopped_early:
            # Only surfaced when it happened: ordinary runs keep their
            # historical key set (sweep exports, golden snapshot fixtures
            # and byte-identity suites all compare full report dicts).
            out["stopped_early"] = 1.0
        out.update(self.extra)
        return out


class Scenario:
    """Base class: owns the simulator and the AirDnD nodes, builds reports."""

    def __init__(self, sim: Simulator, name: str = "scenario") -> None:
        self.sim = sim
        self.name = name
        self.nodes: List[AirDnDNode] = []
        self.faults: Optional[FaultInjector] = None
        self._fault_schedule: Optional[FaultSchedule] = None
        self._ran_for = 0.0
        self._stopped_early = False
        # Open run-window bookkeeping: set between open_window() and
        # close_window(), carried by snapshots taken mid-window so resume()
        # can finish the window.
        self._window_end: Optional[float] = None
        self._window_duration = 0.0

    # ---------------------------------------------------------------- faults

    def install_faults(self, workload: Optional[object] = None) -> FaultInjector:
        """Build this scenario's fault injector from its config knobs.

        Scenario builders call this once, after ``self.nodes`` and
        ``self.environment`` exist (requires a ``self.config`` deriving from
        :class:`BaseScenarioConfig`).  Adversary profiles are applied
        immediately — malicious behaviour starts at t=0 — while the
        crash/degradation timeline is expanded lazily per :meth:`run` window
        (its horizon is the run duration).  With all knobs at their
        defaults, nothing is drawn and nothing is scheduled.
        """
        config = self.config  # type: ignore[attr-defined]
        knobs = config.fault_knobs()
        schedule = FaultSchedule(knobs, seed=getattr(config, "seed", 0))
        injector = FaultInjector(
            self.sim,
            self.nodes,
            environment=getattr(self, "environment", None),
            mobility=getattr(self, "mobility", None),
            workload=workload,
        )
        injector.assign_adversaries(
            schedule.adversary_assignment([node.name for node in self.nodes])
        )
        self.faults = injector
        self._fault_schedule = schedule
        return injector

    # ----------------------------------------------------------------- hooks

    def before_run(self) -> None:
        """Hook executed once before the event loop starts."""

    def after_run(self) -> None:
        """Hook executed once after the event loop finishes."""

    # ---------------------------------------------------------------- window
    #
    # The run window is the scenario's unit of execution: open_window() arms
    # it, advance() moves it forward in bounded slices, close_window() does
    # the end-of-window bookkeeping and builds the report.  run() and
    # resume() are thin compositions of these three — the session engine in
    # :mod:`repro.service` drives the same primitives piecewise, which is
    # why an interleaved, paused or migrated session stays byte-identical
    # to a run-to-completion call.

    @property
    def window_open(self) -> bool:
        """Whether a run window is currently open (mid-run)."""
        return self._window_end is not None

    @property
    def window_end(self) -> Optional[float]:
        """Absolute sim time the open window ends at (``None`` when idle)."""
        return self._window_end

    def open_window(
        self, duration: float, fault_horizon: Optional[float] = None
    ) -> float:
        """Open a run window of ``duration`` seconds; returns its end time.

        Runs the ``before_run`` hook, records the window bookkeeping that
        mid-window snapshots carry, and arms the fault timeline for
        ``fault_horizon`` (>= ``duration``; a prefix armed with a longer
        horizon draws exactly the fault events the longer run would, which
        is what makes warm-started sweep cells byte-identical).
        """
        if self._window_end is not None:
            raise RuntimeError(
                "a run window is already open; close_window() or resume() it "
                "before opening another"
            )
        if duration <= 0:
            raise ValueError("duration must be positive")
        horizon = duration if fault_horizon is None else float(fault_horizon)
        if horizon < duration:
            raise ValueError("fault_horizon must be >= duration")
        self.sim.clear_stop()
        self.before_run()
        start = self.sim.now
        end = start + duration
        self._window_end = end
        self._window_duration = duration
        if self.faults is not None and self._fault_schedule is not None:
            self.faults.arm(self._fault_schedule, start=start, duration=horizon)
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                "window_open",
                "scenario",
                sim_time=start,
                args={"duration": duration, "fault_horizon": horizon, "end": end},
            )
        return end

    def advance(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> StepOutcome:
        """Advance the open window by one bounded slice.

        ``until`` caps the slice at an absolute sim time (default: the
        window end); ``max_events`` caps it at an event count so a driver
        can interleave many scenarios fairly.  When the slice exhausts
        every event up to its time target the idle clock is advanced to it
        — exactly the convention ``Simulator.run`` applies — so piecewise
        driving is byte-identical to one ``run()`` call.  Returns the
        slice's :class:`~repro.simcore.simulator.StepOutcome`; the window
        is complete when a full-width slice (``until=None``) reports
        :attr:`~repro.simcore.simulator.StepOutcome.exhausted`.
        """
        if self._window_end is None:
            raise RuntimeError("no open run window; open_window() one first")
        target = self._window_end if until is None else float(until)
        if target > self._window_end:
            raise ValueError(
                f"advance target {target} lies beyond the window end "
                f"{self._window_end}"
            )
        tracer = current_tracer()
        trace_start = tracer.clock() if tracer is not None else 0.0
        outcome = self.sim.step(max_events=max_events, until=target)
        if outcome.exhausted and self.sim.now < target:
            self.sim.advance_clock(target)
            outcome = StepOutcome(
                events_fired=outcome.events_fired,
                now=self.sim.now,
                queue_empty=outcome.queue_empty,
                stop_requested=outcome.stop_requested,
                reached_until=outcome.reached_until,
                hit_event_budget=outcome.hit_event_budget,
            )
        if tracer is not None:
            tracer.span(
                "window_advance",
                "scenario",
                trace_start,
                sim_time=self.sim.now,
                args={
                    "target": target,
                    "events_fired": outcome.events_fired,
                    "exhausted": outcome.exhausted,
                },
            )
        return outcome

    def close_window(self) -> ScenarioReport:
        """Close the open window: ``after_run`` hook, accounting, report.

        A window a callback stopped early (``StopSimulation``) accounts the
        sim time that actually elapsed — not the requested duration — and
        marks the report ``stopped_early``.
        """
        if self._window_end is None:
            raise RuntimeError("no open run window to close")
        start = self._window_end - self._window_duration
        stopped_early = self.sim.stop_requested and self.sim.now < self._window_end
        self.after_run()
        if stopped_early:
            self._ran_for += max(0.0, self.sim.now - start)
            self._stopped_early = True
        else:
            self._ran_for += self._window_duration
        self._window_end = None
        self._window_duration = 0.0
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                "window_close",
                "scenario",
                sim_time=self.sim.now,
                args={"ran_for": self._ran_for, "stopped_early": stopped_early},
            )
        return self.build_report()

    # ------------------------------------------------------------------- run

    def run(
        self,
        duration: float,
        *,
        snapshot_at: Optional[float] = None,
        snapshot_to: Optional[str] = None,
        fault_horizon: Optional[float] = None,
    ) -> ScenarioReport:
        """Run the scenario for ``duration`` seconds and build the report.

        A thin composition of :meth:`open_window` / :meth:`advance` /
        :meth:`close_window` — kept byte-identical to the historical
        run-to-completion loop, which every benchmark depends on.

        Parameters
        ----------
        snapshot_at:
            Optional offset (seconds into this window, ``0 < snapshot_at <=
            duration``) at which to pause the event loop and write a
            snapshot, then continue to the end of the window.  The pause is
            byte-neutral: the run's outputs are identical with or without it.
        snapshot_to:
            Path the mid-run snapshot is written to (required with
            ``snapshot_at``, and meaningless without it).
        fault_horizon:
            Horizon (>= ``duration``) the fault timeline is armed for.  A
            cold run of a *prefix* armed with the full horizon draws exactly
            the fault events a longer run would, so a snapshot of the prefix
            warm-starts any longer cell of the same seed byte-identically.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if snapshot_at is not None:
            if not 0 < snapshot_at <= duration:
                raise ValueError("snapshot_at must be in (0, duration]")
            if snapshot_to is None:
                raise ValueError("snapshot_at requires snapshot_to")
        elif snapshot_to is not None:
            raise ValueError(
                "snapshot_to without snapshot_at would silently never write "
                "a snapshot; pass snapshot_at as well"
            )
        end = self.open_window(duration, fault_horizon=fault_horizon)
        if snapshot_at is not None:
            self.advance(until=end - duration + snapshot_at)
            self.snapshot(snapshot_to)
        self.advance()
        return self.close_window()

    def resume(self, until: Optional[float] = None) -> ScenarioReport:
        """Finish the run window a mid-run snapshot interrupted.

        ``until`` extends the window to a later absolute sim time (used by
        warm-started sweeps whose fault timeline was armed with a longer
        horizon); by default the window ends where the original ``run``
        call would have ended.  Event processing, fault firings and RNG
        draws continue exactly where the snapshot left them, so the report
        is byte-identical to the uninterrupted run's.
        """
        if self._window_end is None:
            raise RuntimeError(
                "no open run window to resume; this scenario was not "
                "snapshotted mid-run"
            )
        end = self._window_end if until is None else float(until)
        if end < self.sim.now:
            raise ValueError("resume target precedes the current sim time")
        window_start = self._window_end - self._window_duration
        # Re-shape the window so close_window() accounts end - window_start,
        # exactly as the interrupted run() call would have.
        self._window_end = end
        self._window_duration = end - window_start
        self.advance()
        return self.close_window()

    # -------------------------------------------------------------- snapshot

    def snapshot(self, path: Optional[str] = None) -> bytes:
        """Capture the full simulation state; optionally write it to ``path``.

        Returns the encoded artifact bytes either way.
        """
        from repro.snapshot.scenario import snapshot_scenario

        blob = snapshot_scenario(
            self,
            metadata={
                "window_end": self._window_end,
                "window_duration": self._window_duration,
                "ran_for": self._ran_for,
            },
        )
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            with open(path, "wb") as handle:
                handle.write(blob)
        return blob

    @staticmethod
    def restore(source) -> "Scenario":
        """Rebuild a scenario from snapshot bytes or a snapshot file path."""
        from repro.snapshot.scenario import load_snapshot, restore_scenario

        if isinstance(source, (bytes, bytearray)):
            scenario, _ = restore_scenario(bytes(source))
        else:
            scenario, _ = load_snapshot(os.fspath(source))
        return scenario

    # ---------------------------------------------------------------- report

    def all_lifecycles(self) -> List[TaskLifecycle]:
        """Every task lifecycle across every node."""
        lifecycles: List[TaskLifecycle] = []
        for node in self.nodes:
            lifecycles.extend(node.orchestrator.lifecycles)
        return lifecycles

    def build_report(self) -> ScenarioReport:
        """Assemble the :class:`ScenarioReport` from monitors and lifecycles."""
        monitor = self.sim.monitor
        lifecycles = self.all_lifecycles()
        terminal = [l for l in lifecycles if l.is_terminal]
        completed = [l for l in terminal if l.succeeded]
        failed = [l for l in terminal if not l.succeeded]
        latencies = [l.total_latency() for l in completed if l.total_latency() is not None]
        latencies_sorted = sorted(latencies)

        def percentile(values: List[float], q: float) -> float:
            if not values:
                return math.nan
            rank = (q / 100.0) * (len(values) - 1)
            low = int(math.floor(rank))
            high = int(math.ceil(rank))
            if low == high:
                return values[low]
            frac = rank - low
            return values[low] * (1 - frac) + values[high] * frac

        offloaded = sum(
            1 for l in completed if l.result is not None and l.result.executor != l.task.requester
        )
        local = sum(
            1 for l in completed if l.result is not None and l.result.executor == l.task.requester
        )
        mesh_bytes = sum(node.bytes_sent() for node in self.nodes)
        report = ScenarioReport(
            duration_s=self._ran_for if self._ran_for > 0 else self.sim.now,
            node_count=len(self.nodes),
            tasks_submitted=len(lifecycles),
            tasks_completed=len(completed),
            tasks_failed=len(failed),
            mean_task_latency_s=(
                sum(latencies) / len(latencies) if latencies else math.nan
            ),
            p95_task_latency_s=percentile(latencies_sorted, 95),
            mesh_bytes=float(mesh_bytes),
            cellular_bytes=monitor.counter_value("cellular.bytes_uplinked")
            + monitor.counter_value("cellular.bytes_downlinked"),
            offloaded_tasks=offloaded,
            local_tasks=local,
            # getattr: scenarios unpickled from pre-refactor snapshot
            # artifacts (e.g. the committed golden fixture) lack the flag.
            stopped_early=getattr(self, "_stopped_early", False),
        )
        if self.faults is not None:
            report.extra.update(self.faults.report_extra())
            report.extra["wrong_result_acceptance_rate"] = (
                wrong_result_acceptance_rate(lifecycles)
            )
            report.extra["reputation_gap"] = reputation_gap(
                self.nodes, self.faults.malicious_names
            )
        return report

"""Scenario base classes and the report every scenario produces."""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compute.resources import ResourceSpec
from repro.core.api import AirDnDConfig, AirDnDNode
from repro.core.candidate import CandidateScorer
from repro.core.lifecycle import TaskLifecycle
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultKnobs, FaultSchedule
from repro.metrics.report import reputation_gap, wrong_result_acceptance_rate
from repro.simcore.simulator import Simulator


@dataclass
class BaseScenarioConfig:
    """Protocol knobs every scenario config exposes uniformly.

    These are forwarded into each node's
    :class:`~repro.core.api.AirDnDConfig` via :meth:`node_config`; the
    defaults match it, so a scenario that never touches them behaves exactly
    as before.  Declared once here so ``repro sweep --set`` reaches the same
    knob names in every scenario — add new shared knobs in this class, not
    in the per-scenario configs.

    The fault knobs (``crash_rate`` … ``loss_burst_rate``) parameterise the
    scenario's :class:`~repro.faults.injector.FaultInjector`; at their
    defaults the injector is installed but injects nothing, which is
    byte-identical to not installing it (the :mod:`repro.faults` determinism
    contract).  ``task_redundancy`` is the requester-side replica count the
    scenario's workload stamps on every task (k-redundant execution is the
    RQ3 integrity backstop the adversary knobs are meant to stress).

    ``fast_math`` selects the radio stack's equivalence tier.  ``False``
    (default) is the *exact* tier: seeded runs are byte-identical across the
    reference flags (benchmarks E11/E13).  ``True`` is the *statistical*
    tier: fused numpy SIMD link kernels and batched event-core delivery,
    ~last-ulp different per link, promising distribution-level agreement of
    aggregate metrics only (benchmark E15; see ``docs/PERFORMANCE.md``).
    Sweepable like any knob: ``repro sweep --set fast_math=true,false``.
    """

    beacon_period: float = 0.5
    min_trust: float = 0.3
    fast_math: bool = False
    # --- fault & adversary injection (repro.faults) ------------------------
    crash_rate: float = 0.0
    mean_downtime: float = 5.0
    radio_degradation: float = 0.0
    malicious_fraction: float = 0.0
    adversary_profile: str = "liar"
    loss_burst_rate: float = 0.0
    task_redundancy: int = 1

    def __post_init__(self) -> None:
        """Fail fast on an invalid equivalence-tier selector.

        ``--set fast_math=1`` (or any other non-bool) would otherwise only
        surface deep inside :class:`~repro.radio.link.LinkBudget`; subclasses
        adding their own ``__post_init__`` must chain up with
        ``super().__post_init__()``.
        """
        if not isinstance(self.fast_math, bool):
            raise ValueError(
                "fast_math selects the equivalence tier and must be a bool "
                f"(False=exact, True=statistical), got {self.fast_math!r}"
            )

    def node_config(self, spec: ResourceSpec) -> AirDnDConfig:
        """The per-node AirDnD configuration this scenario prescribes."""
        return AirDnDConfig(
            compute_spec=spec,
            beacon_period=self.beacon_period,
            min_trust=self.min_trust,
        )

    def fault_knobs(self) -> FaultKnobs:
        """The scenario's fault knobs as a validated :class:`FaultKnobs`.

        Called during scenario construction, so a typo'd sweep value
        (``--set malicious_fraction=1.5``) fails immediately with the knob
        named, not after the grid has burned hours.
        """
        if self.task_redundancy < 1:
            raise ValueError(
                f"task_redundancy must be at least 1, got {self.task_redundancy}"
            )
        return FaultKnobs(
            crash_rate=self.crash_rate,
            mean_downtime=self.mean_downtime,
            radio_degradation=self.radio_degradation,
            malicious_fraction=self.malicious_fraction,
            adversary_profile=self.adversary_profile,
            loss_burst_rate=self.loss_burst_rate,
        )

    def shared_scorer(self) -> CandidateScorer:
        """One :class:`~repro.core.candidate.CandidateScorer` for the fleet.

        The scoring knobs (weights, trust threshold, margins) are uniform
        across a scenario's nodes, and the network view's freshness token is
        owner-qualified, so a single scorer — and its LRU score cache — can
        serve every node.  Scenarios build one of these and pass it to each
        :class:`~repro.core.api.AirDnDNode`.

        Derived from the same :meth:`node_config` every node receives (the
        compute spec does not feed the scorer), so a future scenario knob
        that reaches :meth:`AirDnDConfig.scorer` cannot silently diverge
        between the shared scorer and the per-node configs.
        """
        return self.node_config(ResourceSpec()).scorer()


@dataclass
class ScenarioReport:
    """Headline metrics of one scenario run.

    The report is intentionally flat and numeric so that benchmark tables can
    be assembled by simple dictionary access.
    """

    duration_s: float
    node_count: int
    tasks_submitted: int = 0
    tasks_completed: int = 0
    tasks_failed: int = 0
    mean_task_latency_s: float = math.nan
    p95_task_latency_s: float = math.nan
    mesh_bytes: float = 0.0
    cellular_bytes: float = 0.0
    offloaded_tasks: int = 0
    local_tasks: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Completed over terminal tasks (1.0 when nothing was submitted)."""
        terminal = self.tasks_completed + self.tasks_failed
        if terminal == 0:
            return 1.0
        return self.tasks_completed / terminal

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (headline fields plus extras)."""
        out = {
            "duration_s": self.duration_s,
            "node_count": float(self.node_count),
            "tasks_submitted": float(self.tasks_submitted),
            "tasks_completed": float(self.tasks_completed),
            "tasks_failed": float(self.tasks_failed),
            "success_rate": self.success_rate,
            "mean_task_latency_s": self.mean_task_latency_s,
            "p95_task_latency_s": self.p95_task_latency_s,
            "mesh_bytes": self.mesh_bytes,
            "cellular_bytes": self.cellular_bytes,
            "offloaded_tasks": float(self.offloaded_tasks),
            "local_tasks": float(self.local_tasks),
        }
        out.update(self.extra)
        return out


class Scenario:
    """Base class: owns the simulator and the AirDnD nodes, builds reports."""

    def __init__(self, sim: Simulator, name: str = "scenario") -> None:
        self.sim = sim
        self.name = name
        self.nodes: List[AirDnDNode] = []
        self.faults: Optional[FaultInjector] = None
        self._fault_schedule: Optional[FaultSchedule] = None
        self._ran_for = 0.0
        # Open run-window bookkeeping: set while inside run(), carried by
        # snapshots taken mid-window so resume() can finish the window.
        self._window_end: Optional[float] = None
        self._window_duration = 0.0

    # ---------------------------------------------------------------- faults

    def install_faults(self, workload: Optional[object] = None) -> FaultInjector:
        """Build this scenario's fault injector from its config knobs.

        Scenario builders call this once, after ``self.nodes`` and
        ``self.environment`` exist (requires a ``self.config`` deriving from
        :class:`BaseScenarioConfig`).  Adversary profiles are applied
        immediately — malicious behaviour starts at t=0 — while the
        crash/degradation timeline is expanded lazily per :meth:`run` window
        (its horizon is the run duration).  With all knobs at their
        defaults, nothing is drawn and nothing is scheduled.
        """
        config = self.config  # type: ignore[attr-defined]
        knobs = config.fault_knobs()
        schedule = FaultSchedule(knobs, seed=getattr(config, "seed", 0))
        injector = FaultInjector(
            self.sim,
            self.nodes,
            environment=getattr(self, "environment", None),
            mobility=getattr(self, "mobility", None),
            workload=workload,
        )
        injector.assign_adversaries(
            schedule.adversary_assignment([node.name for node in self.nodes])
        )
        self.faults = injector
        self._fault_schedule = schedule
        return injector

    # ----------------------------------------------------------------- hooks

    def before_run(self) -> None:
        """Hook executed once before the event loop starts."""

    def after_run(self) -> None:
        """Hook executed once after the event loop finishes."""

    # ------------------------------------------------------------------- run

    def run(
        self,
        duration: float,
        *,
        snapshot_at: Optional[float] = None,
        snapshot_to: Optional[str] = None,
        fault_horizon: Optional[float] = None,
    ) -> ScenarioReport:
        """Run the scenario for ``duration`` seconds and build the report.

        Parameters
        ----------
        snapshot_at:
            Optional offset (seconds into this window, ``0 < snapshot_at <=
            duration``) at which to pause the event loop and write a
            snapshot, then continue to the end of the window.  The pause is
            byte-neutral: the run's outputs are identical with or without it.
        snapshot_to:
            Path the mid-run snapshot is written to (required with
            ``snapshot_at``).
        fault_horizon:
            Horizon (>= ``duration``) the fault timeline is armed for.  A
            cold run of a *prefix* armed with the full horizon draws exactly
            the fault events a longer run would, so a snapshot of the prefix
            warm-starts any longer cell of the same seed byte-identically.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        horizon = duration if fault_horizon is None else float(fault_horizon)
        if horizon < duration:
            raise ValueError("fault_horizon must be >= duration")
        if snapshot_at is not None:
            if not 0 < snapshot_at <= duration:
                raise ValueError("snapshot_at must be in (0, duration]")
            if snapshot_to is None:
                raise ValueError("snapshot_at requires snapshot_to")
        self.before_run()
        start = self.sim.now
        end = start + duration
        self._window_end = end
        self._window_duration = duration
        if self.faults is not None and self._fault_schedule is not None:
            self.faults.arm(self._fault_schedule, start=start, duration=horizon)
        if snapshot_at is not None:
            self.sim.run(until=start + snapshot_at)
            self.snapshot(snapshot_to)
        self.sim.run(until=end)
        self.after_run()
        self._ran_for += duration
        self._window_end = None
        self._window_duration = 0.0
        return self.build_report()

    def resume(self, until: Optional[float] = None) -> ScenarioReport:
        """Finish the run window a mid-run snapshot interrupted.

        ``until`` extends the window to a later absolute sim time (used by
        warm-started sweeps whose fault timeline was armed with a longer
        horizon); by default the window ends where the original ``run``
        call would have ended.  Event processing, fault firings and RNG
        draws continue exactly where the snapshot left them, so the report
        is byte-identical to the uninterrupted run's.
        """
        if self._window_end is None:
            raise RuntimeError(
                "no open run window to resume; this scenario was not "
                "snapshotted mid-run"
            )
        end = self._window_end if until is None else float(until)
        if end < self.sim.now:
            raise ValueError("resume target precedes the current sim time")
        window_start = self._window_end - self._window_duration
        self.sim.run(until=end)
        self.after_run()
        self._ran_for += end - window_start
        self._window_end = None
        self._window_duration = 0.0
        return self.build_report()

    # -------------------------------------------------------------- snapshot

    def snapshot(self, path: Optional[str] = None) -> bytes:
        """Capture the full simulation state; optionally write it to ``path``.

        Returns the encoded artifact bytes either way.
        """
        from repro.snapshot.scenario import snapshot_scenario

        blob = snapshot_scenario(
            self,
            metadata={
                "window_end": self._window_end,
                "window_duration": self._window_duration,
                "ran_for": self._ran_for,
            },
        )
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            with open(path, "wb") as handle:
                handle.write(blob)
        return blob

    @staticmethod
    def restore(source) -> "Scenario":
        """Rebuild a scenario from snapshot bytes or a snapshot file path."""
        from repro.snapshot.scenario import load_snapshot, restore_scenario

        if isinstance(source, (bytes, bytearray)):
            scenario, _ = restore_scenario(bytes(source))
        else:
            scenario, _ = load_snapshot(os.fspath(source))
        return scenario

    # ---------------------------------------------------------------- report

    def all_lifecycles(self) -> List[TaskLifecycle]:
        """Every task lifecycle across every node."""
        lifecycles: List[TaskLifecycle] = []
        for node in self.nodes:
            lifecycles.extend(node.orchestrator.lifecycles)
        return lifecycles

    def build_report(self) -> ScenarioReport:
        """Assemble the :class:`ScenarioReport` from monitors and lifecycles."""
        monitor = self.sim.monitor
        lifecycles = self.all_lifecycles()
        terminal = [l for l in lifecycles if l.is_terminal]
        completed = [l for l in terminal if l.succeeded]
        failed = [l for l in terminal if not l.succeeded]
        latencies = [l.total_latency() for l in completed if l.total_latency() is not None]
        latencies_sorted = sorted(latencies)

        def percentile(values: List[float], q: float) -> float:
            if not values:
                return math.nan
            rank = (q / 100.0) * (len(values) - 1)
            low = int(math.floor(rank))
            high = int(math.ceil(rank))
            if low == high:
                return values[low]
            frac = rank - low
            return values[low] * (1 - frac) + values[high] * frac

        offloaded = sum(
            1 for l in completed if l.result is not None and l.result.executor != l.task.requester
        )
        local = sum(
            1 for l in completed if l.result is not None and l.result.executor == l.task.requester
        )
        mesh_bytes = sum(node.bytes_sent() for node in self.nodes)
        report = ScenarioReport(
            duration_s=self._ran_for if self._ran_for > 0 else self.sim.now,
            node_count=len(self.nodes),
            tasks_submitted=len(lifecycles),
            tasks_completed=len(completed),
            tasks_failed=len(failed),
            mean_task_latency_s=(
                sum(latencies) / len(latencies) if latencies else math.nan
            ),
            p95_task_latency_s=percentile(latencies_sorted, 95),
            mesh_bytes=float(mesh_bytes),
            cellular_bytes=monitor.counter_value("cellular.bytes_uplinked")
            + monitor.counter_value("cellular.bytes_downlinked"),
            offloaded_tasks=offloaded,
            local_tasks=local,
        )
        if self.faults is not None:
            report.extra.update(self.faults.report_extra())
            report.extra["wrong_result_acceptance_rate"] = (
                wrong_result_acceptance_rate(lifecycles)
            )
            report.extra["reputation_gap"] = reputation_gap(
                self.nodes, self.faults.malicious_names
            )
        return report

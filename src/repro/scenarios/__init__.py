"""Ready-made evaluation scenarios.

Each scenario builder assembles a full simulation — road network, obstacles,
mobility, radio, AirDnD nodes, sensors and a workload — and returns a
:class:`~repro.scenarios.base.Scenario` whose :meth:`run` method produces a
:class:`~repro.scenarios.base.ScenarioReport` with the headline metrics the
benchmarks consume.

* :mod:`repro.scenarios.intersection` — the paper's "looking around the
  corner" use case.
* :mod:`repro.scenarios.urban_grid` — a Manhattan grid with many vehicles and
  a generic compute workload (mesh dynamics, utilisation, scalability).
* :mod:`repro.scenarios.highway` — a straight road with platoons passing an
  intersection-free stretch (long contact times, churn at the edges).
* :mod:`repro.scenarios.workloads` — workload generators shared by the
  scenarios and the baselines.
"""

from repro.scenarios.base import Scenario, ScenarioReport
from repro.scenarios.intersection import IntersectionScenario, build_intersection_scenario
from repro.scenarios.urban_grid import UrbanGridScenario, build_urban_grid_scenario
from repro.scenarios.highway import HighwayScenario, build_highway_scenario
from repro.scenarios.workloads import (
    GenericComputeWorkload,
    register_generic_functions,
)

__all__ = [
    "Scenario",
    "ScenarioReport",
    "IntersectionScenario",
    "build_intersection_scenario",
    "UrbanGridScenario",
    "build_urban_grid_scenario",
    "HighwayScenario",
    "build_highway_scenario",
    "GenericComputeWorkload",
    "register_generic_functions",
]

"""Ready-made evaluation scenarios.

Each scenario builder assembles a full simulation — road network, obstacles,
mobility, radio, AirDnD nodes, sensors and a workload — and returns a
:class:`~repro.scenarios.base.Scenario` whose :meth:`run` method produces a
:class:`~repro.scenarios.base.ScenarioReport` with the headline metrics the
benchmarks consume.

* :mod:`repro.scenarios.intersection` — the paper's "looking around the
  corner" use case.
* :mod:`repro.scenarios.urban_grid` — a Manhattan grid with many vehicles and
  a generic compute workload (mesh dynamics, utilisation, scalability).
* :mod:`repro.scenarios.highway` — a straight road with platoons passing an
  intersection-free stretch (long contact times, churn at the edges).
* :mod:`repro.scenarios.workloads` — workload generators shared by the
  scenarios and the baselines.

:data:`SCENARIO_BUILDERS` / :func:`build_scenario` give the CLI and the
experiment sweep runner one uniform way to instantiate any scenario by name
with a fleet size: the per-scenario fleet parameter (``num_vehicles`` vs.
``vehicles_per_direction``) is normalised to ``n``, and any other config
field — including the protocol knobs every scenario exposes uniformly
(``beacon_period``, ``min_trust``, ``task_rate_per_s``) — can be overridden
by keyword, which is how ``repro sweep --set`` reaches them.
"""

from typing import Callable, Dict, Optional

from repro.scenarios.base import Scenario, ScenarioReport
from repro.scenarios.intersection import IntersectionScenario, build_intersection_scenario
from repro.scenarios.urban_grid import UrbanGridScenario, build_urban_grid_scenario
from repro.scenarios.highway import HighwayScenario, build_highway_scenario
from repro.scenarios.workloads import (
    GenericComputeWorkload,
    register_generic_functions,
)

#: Uniform scenario builders: ``name -> builder(n, seed, **overrides)``.
#: ``n`` is the scenario's fleet-size knob (vehicles, or vehicles per
#: direction for the highway); ``None`` keeps the scenario's default.
SCENARIO_BUILDERS: Dict[str, Callable[..., Scenario]] = {
    "intersection": lambda n=6, seed=0, **overrides: build_intersection_scenario(
        num_vehicles=n, seed=seed, **overrides
    ),
    "urban-grid": lambda n=20, seed=0, **overrides: build_urban_grid_scenario(
        num_vehicles=n, seed=seed, **overrides
    ),
    "highway": lambda n=8, seed=0, **overrides: build_highway_scenario(
        vehicles_per_direction=n, seed=seed, **overrides
    ),
}


def build_scenario(
    name: str, n: Optional[int] = None, seed: int = 0, **overrides
) -> Scenario:
    """Instantiate the scenario registered under ``name``.

    Parameters
    ----------
    name:
        A key of :data:`SCENARIO_BUILDERS` (``intersection``, ``urban-grid``
        or ``highway``).
    n:
        Fleet size (scenario-specific default when ``None``).
    seed:
        Experiment seed.
    overrides:
        Extra keyword arguments forwarded to the scenario's config.
    """
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_BUILDERS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})") from None
    if n is None:
        return builder(seed=seed, **overrides)
    return builder(n=n, seed=seed, **overrides)


__all__ = [
    "Scenario",
    "ScenarioReport",
    "SCENARIO_BUILDERS",
    "build_scenario",
    "IntersectionScenario",
    "build_intersection_scenario",
    "UrbanGridScenario",
    "build_urban_grid_scenario",
    "HighwayScenario",
    "build_highway_scenario",
    "GenericComputeWorkload",
    "register_generic_functions",
]

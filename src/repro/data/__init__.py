"""Data substrate: sensors, data ponds and data quality.

The paper's key inversion is that *data stays where it is generated* while
tasks travel to the data.  This package models the data side:

* :mod:`repro.data.datatypes` — the taxonomy of sensor data types and their
  typical sizes (the reason moving raw data is expensive).
* :mod:`repro.data.sensors` — periodic sensor models producing frames from
  simulated ground truth (lidar-like detections honouring occlusion).
* :mod:`repro.data.pond` — the per-node :class:`DataPond` that stores recent
  frames and answers local queries.
* :mod:`repro.data.quality` — the data-quality vocabulary used by Model 3
  (freshness, coverage, resolution, accuracy) and matching logic.
* :mod:`repro.data.catalog` — compact catalogs summarising a pond for
  beacons and for DataDescription matching.
"""

from repro.data.datatypes import DataType, typical_frame_size
from repro.data.quality import DataQuality, quality_score
from repro.data.sensors import LidarSensor, SensorFrame
from repro.data.pond import DataPond
from repro.data.catalog import DataCatalog, DataCatalogEntry

__all__ = [
    "DataType",
    "typical_frame_size",
    "DataQuality",
    "quality_score",
    "SensorFrame",
    "LidarSensor",
    "DataPond",
    "DataCatalog",
    "DataCatalogEntry",
]

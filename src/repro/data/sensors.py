"""Sensor models producing frames from simulated ground truth.

The only physical sensor modelled in detail is a lidar-like ranging sensor:
every period it looks at the simulation's ground-truth agents, keeps those
within range and line of sight, perturbs their positions with Gaussian noise,
optionally drops detections (false negatives), and stores the resulting
:class:`SensorFrame` in the owner's :class:`~repro.data.pond.DataPond`.

That is all the "looking around the corner" use case needs: the approaching
vehicle's sensor genuinely cannot see the occluded pedestrian, while another
vehicle's sensor can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datatypes import DataType, typical_frame_size
from repro.data.pond import DataPond
from repro.geometry.los import VisibilityMap
from repro.geometry.vector import Vec2
from repro.simcore.simulator import Simulator


@dataclass(frozen=True)
class Detection:
    """One detected object in a sensor frame."""

    label: str
    position: Vec2
    confidence: float = 1.0


@dataclass
class SensorFrame:
    """One frame of sensor output.

    Attributes
    ----------
    data_type:
        What kind of frame this is.
    timestamp:
        Virtual time of capture.
    origin:
        Sensor position at capture time.
    detections:
        Objects visible in this frame.
    range_m:
        Sensor range used for the capture.
    size_bytes:
        Serialized size (raw frames are big; that is the point).
    """

    data_type: DataType
    timestamp: float
    origin: Vec2
    detections: List[Detection] = field(default_factory=list)
    range_m: float = 80.0
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = typical_frame_size(self.data_type)

    def detected_labels(self) -> List[str]:
        """Labels of all detections in the frame."""
        return [d.label for d in self.detections]


#: Ground-truth provider: returns (label, position) pairs of every agent
#: currently present in the world that sensors could in principle see.
GroundTruthProvider = Callable[[], Sequence[Tuple[str, Vec2]]]


class LidarSensor:
    """A periodic ranging sensor honouring occlusion.

    Parameters
    ----------
    sim:
        Simulator for scheduling captures.
    owner_name:
        Name of the node carrying the sensor (its own label is excluded from
        detections).
    position_provider:
        Callable returning the sensor's current position.
    ground_truth:
        Callable returning all (label, position) agents in the world.
    pond:
        The data pond frames are written into.
    visibility:
        Obstacle map used for occlusion (``None`` disables occlusion).
    range_m:
        Maximum detection range.
    period:
        Seconds between captures.
    noise_std_m:
        Standard deviation of Gaussian position noise.
    miss_rate:
        Probability a visible agent is missed in a given frame.
    """

    def __init__(
        self,
        sim: Simulator,
        owner_name: str,
        position_provider: Callable[[], Vec2],
        ground_truth: GroundTruthProvider,
        pond: DataPond,
        visibility: Optional[VisibilityMap] = None,
        range_m: float = 80.0,
        period: float = 0.1,
        noise_std_m: float = 0.2,
        miss_rate: float = 0.05,
    ) -> None:
        self.sim = sim
        self.owner_name = owner_name
        self.position_provider = position_provider
        self.ground_truth = ground_truth
        self.pond = pond
        self.visibility = visibility
        self.range_m = range_m
        self.period = period
        self.noise_std_m = noise_std_m
        self.miss_rate = miss_rate
        self.frames_captured = 0
        self._rng = sim.streams.get(f"lidar:{owner_name}")
        self._task = sim.schedule_periodic(
            period, self.capture, name=f"lidar:{owner_name}"
        )

    def stop(self) -> None:
        """Stop capturing frames."""
        self._task.cancel()

    def capture(self) -> SensorFrame:
        """Capture one frame now and store it in the pond."""
        origin = self.position_provider()
        in_range = [
            (label, position)
            for label, position in self.ground_truth()
            if label != self.owner_name
            and origin.distance_to(position) <= self.range_m
        ]
        # One LOS batch query for the whole frame (occluded targets never
        # reached the miss-rate draw before either, so the RNG sequence is
        # unchanged).
        if self.visibility is not None and in_range:
            flags = self.visibility.line_of_sight_batch(
                origin, [position for _, position in in_range]
            )
            visible = [target for target, seen in zip(in_range, flags) if seen]
        else:
            visible = in_range
        detections: List[Detection] = []
        for label, position in visible:
            if self._rng.random() < self.miss_rate:
                continue
            noisy = Vec2(
                position.x + float(self._rng.normal(0.0, self.noise_std_m)),
                position.y + float(self._rng.normal(0.0, self.noise_std_m)),
            )
            confidence = float(np.clip(self._rng.normal(0.9, 0.05), 0.0, 1.0))
            detections.append(Detection(label=label, position=noisy, confidence=confidence))
        frame = SensorFrame(
            data_type=DataType.LIDAR_SCAN,
            timestamp=self.sim.now,
            origin=origin,
            detections=detections,
            range_m=self.range_m,
        )
        self.pond.store(frame)
        self.frames_captured += 1
        return frame

"""Sensor data taxonomy and typical frame sizes.

Sizes matter: they are what makes "send the task to the data" cheaper than
"send the data to the task".  The numbers below are order-of-magnitude
figures for automotive sensors and are used consistently by the data-transfer
experiment (E2).
"""

from __future__ import annotations

from enum import Enum


class DataType(str, Enum):
    """Kinds of data an edge device may hold in its pond."""

    LIDAR_SCAN = "lidar_scan"
    CAMERA_FRAME = "camera_frame"
    RADAR_SCAN = "radar_scan"
    OCCUPANCY_GRID = "occupancy_grid"
    OBJECT_LIST = "object_list"
    GNSS_TRACK = "gnss_track"


#: Typical serialized size of one frame of each data type, in bytes.
_TYPICAL_SIZES = {
    DataType.LIDAR_SCAN: 1_500_000,      # ~100k points × 16 B, lightly compressed
    DataType.CAMERA_FRAME: 600_000,      # 1080p JPEG
    DataType.RADAR_SCAN: 60_000,
    DataType.OCCUPANCY_GRID: 40_000,     # 200×200 cells, 1 byte each
    DataType.OBJECT_LIST: 2_000,         # tens of objects × ~50 B
    DataType.GNSS_TRACK: 1_000,
}


def typical_frame_size(data_type: DataType) -> int:
    """Typical serialized size in bytes of one frame of ``data_type``."""
    return _TYPICAL_SIZES[data_type]


def is_raw(data_type: DataType) -> bool:
    """Whether the type is raw sensor output (as opposed to a derived product)."""
    return data_type in (
        DataType.LIDAR_SCAN,
        DataType.CAMERA_FRAME,
        DataType.RADAR_SCAN,
    )

"""Data catalogs: the queryable face of a data pond.

A :class:`DataCatalog` is what a node *advertises* about its pond — never the
data itself.  It is rebuilt cheaply from the pond on demand and is the object
the AirDnD data model (Model 3) matches
:class:`~repro.core.models.DataDescription` requirements against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.datatypes import DataType
from repro.data.pond import DataPond
from repro.data.quality import DataQuality, meets_requirement, quality_score
from repro.geometry.vector import Vec2


@dataclass(frozen=True)
class DataCatalogEntry:
    """Advertised availability of one data type at one node."""

    data_type: DataType
    quality: DataQuality
    frame_count: int
    coverage_center: Optional[Vec2]

    def score(self) -> float:
        """Scalar quality score of this entry."""
        return quality_score(self.quality)


class DataCatalog:
    """All data types a node currently advertises."""

    def __init__(self, owner: str, entries: Optional[Dict[DataType, DataCatalogEntry]] = None) -> None:
        self.owner = owner
        self._entries: Dict[DataType, DataCatalogEntry] = dict(entries or {})

    @staticmethod
    def from_pond(pond: DataPond, now: float) -> "DataCatalog":
        """Build a catalog snapshot from a pond."""
        entries: Dict[DataType, DataCatalogEntry] = {}
        for data_type in pond.data_types():
            quality = pond.quality_of(data_type, now)
            if quality is None:
                continue
            entries[data_type] = DataCatalogEntry(
                data_type=data_type,
                quality=quality,
                frame_count=pond.frame_count(data_type),
                coverage_center=pond.coverage_center(data_type, now),
            )
        return DataCatalog(pond.owner, entries)

    # -------------------------------------------------------------- queries

    def __contains__(self, data_type: DataType) -> bool:
        return data_type in self._entries

    def entry(self, data_type: DataType) -> Optional[DataCatalogEntry]:
        """Catalog entry for ``data_type``, or ``None``."""
        return self._entries.get(data_type)

    def data_types(self) -> List[DataType]:
        """All advertised data types."""
        return list(self._entries)

    def satisfies(
        self,
        data_type: DataType,
        required_quality: DataQuality,
        region_center: Optional[Vec2] = None,
        region_radius: float = 0.0,
    ) -> bool:
        """Whether this catalog can serve a requirement.

        Quality must meet the requirement and, when a region is given, the
        advertised coverage (centred on ``coverage_center``) must reach the
        region's centre.
        """
        entry = self._entries.get(data_type)
        if entry is None:
            return False
        if not meets_requirement(entry.quality, required_quality):
            return False
        if region_center is not None and entry.coverage_center is not None:
            reach = entry.quality.coverage_radius_m
            distance = entry.coverage_center.distance_to(region_center)
            if distance > reach + region_radius:
                return False
        return True

    def best_score(self, data_type: DataType) -> float:
        """Quality score of the entry for ``data_type`` (0 when absent)."""
        entry = self._entries.get(data_type)
        return entry.score() if entry is not None else 0.0

"""Per-node data ponds.

A :class:`DataPond` is the local store of recent sensor frames on one edge
device — the paper's "mini mobile data pond".  It enforces a retention window
(old frames are dropped), answers local queries, and produces the compact
summaries that ride in beacons and catalogs.  Crucially, the pond has no
remote read API: the only way another node benefits from this data is by
sending a task here.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.data.datatypes import DataType
from repro.data.quality import DataQuality
from repro.geometry.vector import Vec2

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.data.sensors import SensorFrame


class DataPond:
    """Recent sensor frames held by one node.

    Parameters
    ----------
    owner:
        Name of the owning node.
    retention_s:
        Frames older than this are evicted lazily on access.
    max_frames_per_type:
        Hard cap per data type (oldest evicted first).
    """

    def __init__(
        self,
        owner: str,
        retention_s: float = 5.0,
        max_frames_per_type: int = 100,
    ) -> None:
        if retention_s <= 0:
            raise ValueError("retention must be positive")
        self.owner = owner
        self.retention_s = retention_s
        self.max_frames_per_type = max_frames_per_type
        self._frames: Dict[DataType, Deque["SensorFrame"]] = defaultdict(deque)
        self.total_bytes_stored = 0
        self.frames_stored = 0

    # -------------------------------------------------------------- storing

    def store(self, frame: "SensorFrame") -> None:
        """Add a frame, evicting the oldest if the per-type cap is reached."""
        bucket = self._frames[frame.data_type]
        bucket.append(frame)
        if len(bucket) > self.max_frames_per_type:
            bucket.popleft()
        self.total_bytes_stored += frame.size_bytes
        self.frames_stored += 1

    def _evict_stale(self, data_type: DataType, now: float) -> None:
        bucket = self._frames.get(data_type)
        if not bucket:
            return
        while bucket and now - bucket[0].timestamp > self.retention_s:
            bucket.popleft()

    # ------------------------------------------------------------- querying

    def frames(self, data_type: DataType, now: float, max_age: Optional[float] = None) -> List["SensorFrame"]:
        """Frames of ``data_type`` no older than ``max_age`` (or retention)."""
        self._evict_stale(data_type, now)
        limit = self.retention_s if max_age is None else max_age
        return [f for f in self._frames.get(data_type, ()) if now - f.timestamp <= limit]

    def latest(self, data_type: DataType, now: float) -> Optional["SensorFrame"]:
        """Most recent frame of ``data_type`` within retention, or ``None``."""
        frames = self.frames(data_type, now)
        return frames[-1] if frames else None

    def frame_count(self, data_type: Optional[DataType] = None) -> int:
        """Number of frames currently held (optionally of one type)."""
        if data_type is not None:
            return len(self._frames.get(data_type, ()))
        return sum(len(bucket) for bucket in self._frames.values())

    def data_types(self) -> List[DataType]:
        """Data types with at least one stored frame."""
        return [t for t, bucket in self._frames.items() if bucket]

    # ------------------------------------------------------------ summaries

    def quality_of(self, data_type: DataType, now: float) -> Optional[DataQuality]:
        """Quality vector of the freshest frame of ``data_type``."""
        latest = self.latest(data_type, now)
        if latest is None:
            return None
        mean_confidence = (
            sum(d.confidence for d in latest.detections) / len(latest.detections)
            if latest.detections
            else 0.9
        )
        return DataQuality(
            freshness_s=max(0.0, now - latest.timestamp),
            coverage_radius_m=latest.range_m,
            resolution=0.5,
            accuracy=mean_confidence,
        )

    def summary(self, now: float) -> Dict[str, Tuple[float, float, float]]:
        """Beacon digest: type name → (coverage_m, freshness_s, quality 0..1).

        The digest is deliberately tiny (a few tens of bytes per type) because
        it rides in every beacon.
        """
        from repro.data.quality import quality_score

        digest: Dict[str, Tuple[float, float, float]] = {}
        for data_type in self.data_types():
            quality = self.quality_of(data_type, now)
            if quality is None:
                continue
            digest[data_type.value] = (
                quality.coverage_radius_m,
                quality.freshness_s,
                quality_score(quality),
            )
        return digest

    def coverage_center(self, data_type: DataType, now: float) -> Optional[Vec2]:
        """Origin of the freshest frame (where the coverage is centred)."""
        latest = self.latest(data_type, now)
        return latest.origin if latest is not None else None

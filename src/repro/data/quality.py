"""Data-quality vocabulary (Model 3's substrate).

Model 3 of the paper describes *what type and quality of data* a task needs.
:class:`DataQuality` is the shared vocabulary: freshness, spatial coverage,
resolution and accuracy.  ``quality_score`` collapses a quality vector into a
single 0..1 figure for beacon digests and candidate ranking, and
``meets_requirement`` performs the hard pass/fail check used when matching a
DataDescription against a node's catalog.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DataQuality:
    """Quality of a body of data held by a node.

    Attributes
    ----------
    freshness_s:
        Age of the newest relevant frame, in seconds (lower is better).
    coverage_radius_m:
        Radius around the owning node that the data covers.
    resolution:
        Spatial resolution in metres per cell/point (lower is better).
    accuracy:
        Probability that a reported observation is correct (0..1).
    """

    freshness_s: float = 0.0
    coverage_radius_m: float = 50.0
    resolution: float = 0.5
    accuracy: float = 0.95

    def __post_init__(self) -> None:
        if self.freshness_s < 0:
            raise ValueError("freshness cannot be negative")
        if self.coverage_radius_m < 0:
            raise ValueError("coverage radius cannot be negative")
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")


def quality_score(
    quality: DataQuality,
    max_acceptable_age_s: float = 2.0,
    target_coverage_m: float = 50.0,
    target_resolution: float = 0.5,
) -> float:
    """Collapse a quality vector into a single 0..1 score.

    The score is the product of four normalised sub-scores so that any single
    terrible dimension drags the whole score down — a very stale but
    high-resolution scan is still nearly useless for collision avoidance.
    """
    freshness_score = max(0.0, 1.0 - quality.freshness_s / max(1e-9, max_acceptable_age_s))
    coverage_score = min(1.0, quality.coverage_radius_m / max(1e-9, target_coverage_m))
    resolution_score = min(1.0, target_resolution / quality.resolution)
    return freshness_score * coverage_score * resolution_score * quality.accuracy


def meets_requirement(available: DataQuality, required: DataQuality) -> bool:
    """Hard pass/fail: is ``available`` at least as good as ``required``?

    Freshness and resolution must be no worse (numerically no larger);
    coverage and accuracy must be no smaller.
    """
    return (
        available.freshness_s <= required.freshness_s + 1e-9
        and available.coverage_radius_m >= required.coverage_radius_m - 1e-9
        and available.resolution <= required.resolution + 1e-9
        and available.accuracy >= required.accuracy - 1e-9
    )

"""Resource specifications and requirement matching.

A :class:`ResourceSpec` describes what a node *has*; a
:class:`ResourceRequirement` describes what a task *needs*.  Matching the two
is one of the filters in AirDnD candidate selection (RQ1): a node that cannot
even hold the task's working set is never a candidate, however close it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class ResourceSpec:
    """Compute resources owned by one node.

    Attributes
    ----------
    cpu_ops_per_second:
        Aggregate throughput of one core, in abstract operations per second.
    cores:
        Number of cores that can execute tasks concurrently.
    memory_mb:
        RAM available to guest tasks.
    accelerators:
        Named accelerators and their throughput, e.g. ``{"gpu": 5e10}``.
    """

    cpu_ops_per_second: float = 1e9
    cores: int = 2
    memory_mb: float = 2048.0
    accelerators: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cpu_ops_per_second <= 0:
            raise ValueError("cpu_ops_per_second must be positive")
        if self.cores < 1:
            raise ValueError("a node needs at least one core")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")

    @property
    def total_ops_per_second(self) -> float:
        """Aggregate CPU throughput over all cores."""
        return self.cpu_ops_per_second * self.cores

    def has_accelerator(self, name: str) -> bool:
        """Whether the node owns an accelerator called ``name``."""
        return name in self.accelerators

    def effective_rate(self, requirement: "ResourceRequirement") -> float:
        """Operations/second this node can give the described task.

        Accelerated tasks run at the accelerator's rate when present, else at
        CPU rate (the task is still runnable, just slower).
        """
        if requirement.accelerator and self.has_accelerator(requirement.accelerator):
            return self.accelerators[requirement.accelerator]
        return self.cpu_ops_per_second


@dataclass(frozen=True)
class ResourceRequirement:
    """What a task needs from an executor.

    Attributes
    ----------
    operations:
        Total abstract operations to execute.
    memory_mb:
        Working-set size.
    accelerator:
        Optional accelerator name that speeds the task up.
    accelerator_required:
        When ``True`` a node lacking the accelerator cannot run the task at
        all (e.g. a model that simply does not fit on CPU in time).
    deadline:
        Optional relative deadline in seconds (checked by the orchestrator).
    """

    operations: float = 1e8
    memory_mb: float = 256.0
    accelerator: str = ""
    accelerator_required: bool = False
    deadline: float = 0.0

    def __post_init__(self) -> None:
        if self.operations <= 0:
            raise ValueError("operations must be positive")
        if self.memory_mb < 0:
            raise ValueError("memory_mb cannot be negative")

    def satisfied_by(self, spec: ResourceSpec) -> bool:
        """Whether a node with ``spec`` can run this task at all."""
        if self.memory_mb > spec.memory_mb:
            return False
        if self.accelerator_required and not spec.has_accelerator(self.accelerator):
            return False
        return True

    def execution_time_on(self, spec: ResourceSpec) -> float:
        """Seconds of pure compute this task takes on a node with ``spec``."""
        return self.operations / spec.effective_rate(self)

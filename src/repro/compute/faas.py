"""FaaS-style function registry and runtime.

The paper frames task offloading in Function-as-a-Service terms: the task that
travels across the mesh is a *named function* plus parameters, never raw code
or raw data (Model 2).  :class:`FunctionRegistry` holds the catalogue of
functions every AirDnD node agrees on; :class:`FaaSRuntime` executes them on a
:class:`~repro.compute.node.ComputeNode` with warm/cold start latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.compute.node import ComputeNode, TaskExecution
from repro.compute.resources import ResourceRequirement
from repro.simcore.simulator import Simulator

#: A function body receives (parameters, local data pond view) and returns a
#: result object.  Cost models receive the same parameters and return the
#: operation count, so heterogeneous inputs cost different amounts.
FunctionBody = Callable[[Dict[str, Any], Any], Any]
CostModel = Callable[[Dict[str, Any]], float]


def default_cost_model(params: Dict[str, Any]) -> float:
    """Flat 1e8-operation cost for functions that don't declare their own.

    A module-level function (not a lambda default) so definitions — and the
    simulation graphs holding them — survive a snapshot pickle round-trip.
    """
    return 1e8


@dataclass
class FunctionDefinition:
    """One named function in the shared catalogue.

    Attributes
    ----------
    name:
        Unique function name (what travels inside a TaskDescription).
    body:
        The Python callable executed on the executor node.
    cost_model:
        Maps call parameters to an operation count.
    memory_mb:
        Working set of one invocation.
    result_size_bytes:
        Serialized size of the result returned over the mesh; may also be a
        callable of the result object for data-dependent sizes.
    accelerator:
        Optional accelerator that speeds up the function.
    """

    name: str
    body: FunctionBody
    cost_model: CostModel = field(default=default_cost_model)
    memory_mb: float = 256.0
    result_size_bytes: Any = 10_000
    accelerator: str = ""
    accelerator_required: bool = False

    def requirement(self, parameters: Dict[str, Any], deadline: float = 0.0) -> ResourceRequirement:
        """Resource requirement of one invocation with ``parameters``."""
        return ResourceRequirement(
            operations=float(self.cost_model(parameters)),
            memory_mb=self.memory_mb,
            accelerator=self.accelerator,
            accelerator_required=self.accelerator_required,
            deadline=deadline,
        )

    def result_size(self, result: Any) -> int:
        """Serialized size of ``result`` in bytes."""
        if callable(self.result_size_bytes):
            return int(self.result_size_bytes(result))
        return int(self.result_size_bytes)


class FunctionRegistry:
    """The catalogue of functions known to every node in the system."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionDefinition] = {}

    def register(self, definition: FunctionDefinition) -> None:
        """Add a function; duplicate names are an error."""
        if definition.name in self._functions:
            raise ValueError(f"function {definition.name!r} already registered")
        self._functions[definition.name] = definition

    def get(self, name: str) -> FunctionDefinition:
        """Look up a function by name (raises ``KeyError`` when unknown)."""
        if name not in self._functions:
            raise KeyError(f"unknown function {name!r}")
        return self._functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> List[str]:
        """All registered function names."""
        return list(self._functions)


@dataclass
class InvocationResult:
    """Outcome of one FaaS invocation."""

    function_name: str
    result: Any
    result_size_bytes: int
    compute_time: float
    startup_time: float
    total_time: float


class FaaSRuntime:
    """Executes registry functions on a local compute node.

    Cold starts add ``cold_start_latency`` seconds the first time a function
    runs on this node (and again if it has been evicted); warm starts add
    ``warm_start_latency``.
    """

    def __init__(
        self,
        sim: Simulator,
        compute: ComputeNode,
        registry: FunctionRegistry,
        cold_start_latency: float = 0.25,
        warm_start_latency: float = 0.01,
        warm_pool_size: int = 8,
    ) -> None:
        self.sim = sim
        self.compute = compute
        self.registry = registry
        self.cold_start_latency = cold_start_latency
        self.warm_start_latency = warm_start_latency
        self.warm_pool_size = warm_pool_size
        self._warm: List[str] = []
        self.invocations = 0
        self.cold_starts = 0

    def _startup_time(self, function_name: str) -> float:
        if function_name in self._warm:
            self._warm.remove(function_name)
            self._warm.append(function_name)
            return self.warm_start_latency
        self.cold_starts += 1
        self._warm.append(function_name)
        if len(self._warm) > self.warm_pool_size:
            self._warm.pop(0)
        return self.cold_start_latency

    def invoke(
        self,
        function_name: str,
        parameters: Dict[str, Any],
        data_pond: Any,
        on_complete: Callable[[InvocationResult], None],
        deadline: float = 0.0,
    ) -> None:
        """Invoke ``function_name`` asynchronously; result arrives via callback."""
        definition = self.registry.get(function_name)
        requirement = definition.requirement(parameters, deadline)
        startup = self._startup_time(function_name)
        self.invocations += 1
        pending = _PendingInvocation(
            runtime=self,
            definition=definition,
            parameters=parameters,
            data_pond=data_pond,
            on_complete=on_complete,
            requirement=requirement,
            startup=startup,
            started=self.sim.now,
        )
        self.sim.schedule(startup, pending, name=f"faas-start:{function_name}")


class _PendingInvocation:
    """One in-flight FaaS invocation, from startup delay to result callback.

    Replaces the nested ``_submit``/``_run_body`` closures: instances land in
    the event queue (as the startup-delay callback) and on the
    :class:`~repro.compute.node.TaskExecution` (as its completion callback via
    the bound :meth:`run_body`), so they must pickle for snapshots.
    """

    __slots__ = (
        "runtime",
        "definition",
        "parameters",
        "data_pond",
        "on_complete",
        "requirement",
        "startup",
        "started",
    )

    def __init__(
        self,
        runtime: FaaSRuntime,
        definition: FunctionDefinition,
        parameters: Dict[str, Any],
        data_pond: Any,
        on_complete: Callable[[InvocationResult], None],
        requirement: ResourceRequirement,
        startup: float,
        started: float,
    ) -> None:
        self.runtime = runtime
        self.definition = definition
        self.parameters = parameters
        self.data_pond = data_pond
        self.on_complete = on_complete
        self.requirement = requirement
        self.startup = startup
        self.started = started

    def __call__(self) -> None:
        """Startup delay elapsed: submit the execution to the compute node."""
        execution = TaskExecution(
            requirement=self.requirement,
            on_complete=self.run_body,
            label=self.definition.name,
        )
        accepted = self.runtime.compute.submit(execution)
        if not accepted:
            invocation = InvocationResult(
                function_name=self.definition.name,
                result=None,
                result_size_bytes=0,
                compute_time=0.0,
                startup_time=self.startup,
                total_time=self.runtime.sim.now - self.started,
            )
            self.on_complete(invocation)

    def run_body(self, execution: TaskExecution) -> None:
        """Compute time elapsed: run the function body and deliver the result."""
        definition = self.definition
        runtime = self.runtime
        result = definition.body(self.parameters, self.data_pond)
        invocation = InvocationResult(
            function_name=definition.name,
            result=result,
            result_size_bytes=definition.result_size(result),
            compute_time=self.requirement.execution_time_on(runtime.compute.spec),
            startup_time=self.startup,
            total_time=runtime.sim.now - self.started,
        )
        self.on_complete(invocation)

"""Idle/busy energy accounting for compute nodes.

Energy is not a headline metric in the paper, but battery-powered edge
devices make it a natural secondary criterion for candidate selection, so the
model is kept available and is exercised by the utilisation experiment (E5).
"""

from __future__ import annotations


class EnergyModel:
    """Tracks energy consumed by a compute node.

    Parameters
    ----------
    idle_power_w:
        Power drawn regardless of load (W).
    busy_power_w:
        Additional power drawn per busy core (W).
    """

    def __init__(self, idle_power_w: float = 3.0, busy_power_w: float = 12.0) -> None:
        if idle_power_w < 0 or busy_power_w < 0:
            raise ValueError("power values cannot be negative")
        self.idle_power_w = idle_power_w
        self.busy_power_w = busy_power_w
        self.busy_core_seconds = 0.0

    def record_busy(self, core_seconds: float) -> None:
        """Account ``core_seconds`` of busy execution."""
        if core_seconds < 0:
            raise ValueError("core_seconds cannot be negative")
        self.busy_core_seconds += core_seconds

    def energy_joules(self, elapsed_seconds: float) -> float:
        """Total energy over ``elapsed_seconds`` of wall-clock (virtual) time."""
        if elapsed_seconds < 0:
            raise ValueError("elapsed_seconds cannot be negative")
        return (
            self.idle_power_w * elapsed_seconds
            + self.busy_power_w * self.busy_core_seconds
        )

    def dynamic_energy_joules(self) -> float:
        """Energy attributable to task execution only."""
        return self.busy_power_w * self.busy_core_seconds

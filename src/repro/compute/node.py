"""Compute nodes: multi-core executors with FIFO queues.

A :class:`ComputeNode` accepts :class:`TaskExecution` requests, runs up to
``cores`` of them concurrently, queues the rest FIFO, and reports headroom —
the quantity advertised in beacons and consumed by the AirDnD candidate
scorer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional
from collections import deque

from repro.compute.energy import EnergyModel
from repro.compute.resources import ResourceRequirement, ResourceSpec
from repro.simcore.simulator import Simulator

_execution_ids = itertools.count()


@dataclass
class TaskExecution:
    """One unit of work submitted to a compute node."""

    requirement: ResourceRequirement
    on_complete: Optional[Callable[["TaskExecution"], None]] = None
    label: str = ""
    execution_id: int = field(default_factory=lambda: next(_execution_ids))
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    rejected: bool = False

    @property
    def queueing_delay(self) -> Optional[float]:
        """Seconds spent waiting in the queue (None until started)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def total_latency(self) -> Optional[float]:
        """Submission-to-completion latency (None until finished)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class ComputeNode:
    """A node's local compute capacity and run queue.

    Parameters
    ----------
    sim:
        Simulator used for timing.
    spec:
        The node's :class:`ResourceSpec`.
    owner:
        Name of the owning mesh node (used in metrics).
    reserve_fraction:
        Fraction of capacity the owner keeps for its own workload; only the
        remainder is advertised as headroom to the mesh.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[ResourceSpec] = None,
        owner: str = "node",
        reserve_fraction: float = 0.2,
        energy_model: Optional[EnergyModel] = None,
    ) -> None:
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        self.sim = sim
        self.spec = spec or ResourceSpec()
        self.owner = owner
        self.reserve_fraction = reserve_fraction
        self.energy = energy_model or EnergyModel()
        self._running: List[TaskExecution] = []
        self._queue: Deque[TaskExecution] = deque()
        self.completed: List[TaskExecution] = []
        self.rejected_count = 0
        self._busy_core_seconds = 0.0
        self._created_at = sim.now

    # -------------------------------------------------------------- status

    @property
    def running_count(self) -> int:
        """Number of tasks currently executing."""
        return len(self._running)

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting for a core."""
        return len(self._queue)

    @property
    def load(self) -> float:
        """Fraction of cores currently busy (can exceed 1 with a queue)."""
        return (self.running_count + self.queue_length) / self.spec.cores

    def headroom_ops(self) -> float:
        """Spare operations/second available to guests right now.

        Headroom is the idle-core throughput minus the owner's reserve; a
        fully busy or over-queued node advertises zero headroom.
        """
        free_cores = max(0, self.spec.cores - self.running_count - self.queue_length)
        gross = free_cores * self.spec.cpu_ops_per_second
        return max(0.0, gross * (1.0 - self.reserve_fraction))

    def utilization(self) -> float:
        """Busy core-seconds divided by total available core-seconds so far."""
        elapsed = self.sim.now - self._created_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_core_seconds / (elapsed * self.spec.cores))

    # ------------------------------------------------------------- execute

    def can_accept(self, requirement: ResourceRequirement) -> bool:
        """Whether the node could run a task with this requirement at all."""
        return requirement.satisfied_by(self.spec)

    def submit(self, execution: TaskExecution) -> bool:
        """Queue (or immediately start) a task execution.

        Returns ``False`` (and marks the execution rejected) when the node's
        static resources cannot satisfy the requirement.
        """
        execution.submitted_at = self.sim.now
        if not self.can_accept(execution.requirement):
            execution.rejected = True
            self.rejected_count += 1
            self.sim.monitor.counter("compute.rejected").add()
            return False
        self._queue.append(execution)
        self._try_start()
        return True

    def _try_start(self) -> None:
        while self._queue and self.running_count < self.spec.cores:
            execution = self._queue.popleft()
            execution.started_at = self.sim.now
            self._running.append(execution)
            duration = execution.requirement.execution_time_on(self.spec)
            self._busy_core_seconds += duration
            self.energy.record_busy(duration)
            self.sim.monitor.sample("compute.execution_time").add(duration)
            self.sim.schedule(
                duration,
                _ExecutionFinish(self, execution),
                name=f"compute-finish:{self.owner}",
            )

    def _finish(self, execution: TaskExecution) -> None:
        execution.finished_at = self.sim.now
        if execution in self._running:
            self._running.remove(execution)
        self.completed.append(execution)
        self.sim.monitor.counter("compute.completed").add()
        if execution.on_complete is not None:
            execution.on_complete(execution)
        self._try_start()

    # ------------------------------------------------------------ snapshot

    def capture_state(self) -> dict:
        """In-flight work and accounting as plain data.

        The executions themselves (and their pending finish events) travel
        with the snapshot's object graph; execution ids come from a
        process-global counter whose offset is not observable state, so
        only the in-flight counts are captured.
        """
        return {
            "owner": self.owner,
            "running": len(self._running),
            "queued": len(self._queue),
            "completed_count": len(self.completed),
            "rejected_count": self.rejected_count,
            "busy_core_seconds": self._busy_core_seconds,
            "created_at": self._created_at,
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply captured accounting; in-flight sets must already match."""
        if len(self._running) != state["running"]:
            raise ValueError(
                f"compute snapshot mismatch for {self.owner!r}: "
                f"{len(self._running)} running != captured {state['running']}"
            )
        self.rejected_count = int(state["rejected_count"])
        self._busy_core_seconds = float(state["busy_core_seconds"])
        self._created_at = float(state["created_at"])

    # ------------------------------------------------------------- summary

    def completed_count(self) -> int:
        """Number of finished executions."""
        return len(self.completed)

    def mean_queueing_delay(self) -> float:
        """Average queueing delay over completed executions."""
        delays = [e.queueing_delay for e in self.completed if e.queueing_delay is not None]
        if not delays:
            return 0.0
        return sum(delays) / len(delays)


class _ExecutionFinish:
    """Queued completion callback for one running execution (picklable)."""

    __slots__ = ("node", "execution")

    def __init__(self, node: ComputeNode, execution: TaskExecution) -> None:
        self.node = node
        self.execution = execution

    def __call__(self) -> None:
        self.node._finish(self.execution)

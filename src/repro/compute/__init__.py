"""Edge compute substrate.

Each AirDnD participant owns some compute capacity — the "unused property"
that the framework rents out to neighbours.  This package models it:

* :mod:`repro.compute.resources` — resource specifications (operation rate,
  cores, memory, accelerators) and requirement matching.
* :mod:`repro.compute.node` — :class:`ComputeNode`: a multi-core executor
  with a FIFO run queue, utilisation accounting and headroom reporting.
* :mod:`repro.compute.faas` — a FaaS-style function registry with per-call
  cost models and warm/cold start latency, mirroring the
  Function-as-a-Service framing of the paper's introduction.
* :mod:`repro.compute.energy` — a simple idle/busy energy model.
"""

from repro.compute.resources import ResourceRequirement, ResourceSpec
from repro.compute.node import ComputeNode, TaskExecution
from repro.compute.faas import FaaSRuntime, FunctionDefinition, FunctionRegistry
from repro.compute.energy import EnergyModel

__all__ = [
    "ResourceSpec",
    "ResourceRequirement",
    "ComputeNode",
    "TaskExecution",
    "FunctionRegistry",
    "FunctionDefinition",
    "FaaSRuntime",
    "EnergyModel",
]

"""The durable job + artifact catalog behind the distributed sweep fabric.

A :class:`JobStore` is one SQLite database (WAL mode, so many worker
processes on one filesystem can read and write it concurrently) holding one
row per sweep *cell* — a ``(point index, repetition)`` pair with its knob
parameters and its seed, exactly the unit :class:`~repro.experiments.runner.
ExperimentRunner` fans out.  Cells move through a small state machine::

    pending ──claim──▶ leased ──complete──▶ done
       ▲                 │
       │                 ├─fail (attempts < max)──▶ failed ──backoff──▶ (claimable)
       │                 ├─fail (attempts = max)──▶ quarantined
       │                 ├─release (clean abandon)─▶ pending
       └───────── lease deadline expires (crashed worker) ───────┘

Guarantees the chaos benchmark (E18) certifies:

* **At most one lease per cell.**  Claims run inside a single SQLite write
  transaction (``BEGIN IMMEDIATE``), so two workers can never hold the same
  cell, and an *expired* lease is re-claimable exactly once per expiry —
  the first claim flips it back to ``leased`` with a fresh deadline.
* **Crash safety.**  A worker that dies (SIGKILL, OOM, power loss) simply
  stops heartbeating; once its lease deadline passes the cell is claimable
  again.  Completions are conditional on still owning the lease, so a
  worker that lost its lease while descheduled cannot overwrite the
  reclaim's result.
* **Deterministic retry schedules.**  Backoff after a failure is
  exponential with bounded, *seeded* jitter — :func:`retry_backoff` is a
  pure function of ``(seed, attempt)`` (property-tested), so a retry
  timeline can be reproduced in tests and reasoned about in postmortems.
* **Poison-cell quarantine.**  A cell that failed ``max_attempts`` times is
  parked in ``quarantined`` rather than retried forever; ``repro fabric
  requeue`` puts it back deliberately.

The cell *results* (the flat numeric metrics a sweep aggregates) live in
the row itself, and each completion additionally writes a sha256-stamped
artifact JSON next to the store (see :mod:`repro.fabric.worker`), so the
database is an index over durable artifacts, not the only copy.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.simcore.rng import derive_seed

#: Schema tag stored in the meta table; bumped on incompatible layout changes.
STORE_SCHEMA = "repro.fabric/1"

#: Lease time-to-live (seconds) a claim grants before a heartbeat must renew.
DEFAULT_LEASE_TTL = 30.0

#: Lease acquisitions a cell gets before quarantine.
DEFAULT_MAX_ATTEMPTS = 5

#: First-retry backoff (seconds); doubles per subsequent attempt.
DEFAULT_BACKOFF_BASE = 0.5

#: Upper bound on the exponential backoff (before jitter).
DEFAULT_BACKOFF_CAP = 30.0

#: Fraction of the backoff added as deterministic jitter, in [0, fraction).
DEFAULT_JITTER_FRACTION = 0.25

#: Terminal cell states (nothing left to run).
TERMINAL_STATES = ("done", "quarantined")

#: Every legal cell state, in lifecycle order.
CELL_STATES = ("pending", "leased", "done", "failed", "quarantined")


class FabricError(Exception):
    """Base class of every fabric-layer failure."""


class StoreFormatError(FabricError):
    """The file is not a fabric job store (or an incompatible version)."""


class StoreStateError(FabricError):
    """An operation conflicts with the store's current cell states."""


def retry_backoff(
    seed: int,
    attempt: int,
    *,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
    jitter_fraction: float = DEFAULT_JITTER_FRACTION,
) -> float:
    """Delay before retrying a cell whose ``attempt``-th try failed.

    Exponential in the attempt number (``base * 2**(attempt-1)``, capped at
    ``cap``) plus deterministic jitter drawn from ``seed`` — a **pure
    function of (seed, attempt)**, so two computations of the same retry
    never disagree and a whole retry schedule can be tabulated up front.
    The jitter decorrelates retries of neighbouring cells (their seeds
    differ) without sacrificing reproducibility.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be at least 1, got {attempt}")
    if base <= 0 or cap <= 0:
        raise ValueError("backoff base and cap must be positive")
    if not 0.0 <= jitter_fraction < 1.0:
        raise ValueError(
            f"jitter_fraction must be in [0, 1), got {jitter_fraction}"
        )
    delay = min(base * (2.0 ** (attempt - 1)), cap)
    unit = derive_seed(seed, f"backoff:{attempt}") / float(1 << 63)
    return delay * (1.0 + jitter_fraction * unit)


@dataclass(frozen=True)
class CellSpec:
    """One cell to enqueue: the unit of fabric work."""

    index: int
    repetition: int
    name: str
    params: Dict[str, object]
    seed: int


@dataclass(frozen=True)
class Lease:
    """A claimed cell: proof of ownership the worker passes back."""

    index: int
    repetition: int
    name: str
    params: Dict[str, object]
    seed: int
    worker: str
    deadline: float
    attempt: int


class JobStore:
    """One durable sweep's job catalog (SQLite, WAL journal).

    Every instance owns its own connection, so it is safe to hold one per
    process/thread; cross-process coordination happens entirely inside
    SQLite's locking.  ``clock`` is injectable for deterministic lease-expiry
    tests and defaults to wall time (deadlines must survive process death,
    so a monotonic clock would not do).
    """

    def __init__(self, path: str, *, clock: Callable[[], float] = time.time) -> None:
        if not os.path.exists(path):
            raise FileNotFoundError(f"no fabric store at {path!r}")
        self.path = path
        self.clock = clock
        try:
            self._conn = self._connect(path)
        except sqlite3.DatabaseError as error:
            # e.g. the WAL pragma on a file that is not SQLite at all.
            raise StoreFormatError(
                f"{path!r} is not a fabric job store: {error}"
            ) from None
        schema = self._meta_get("schema")
        if schema != STORE_SCHEMA:
            raise StoreFormatError(
                f"{path!r} is not a fabric job store "
                f"(schema {schema!r}, expected {STORE_SCHEMA!r})"
            )

    # ------------------------------------------------------------- creation

    @classmethod
    def create(
        cls,
        path: str,
        cells: Sequence[CellSpec],
        *,
        metadata: Optional[Dict[str, object]] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        jitter_fraction: float = DEFAULT_JITTER_FRACTION,
        clock: Callable[[], float] = time.time,
    ) -> "JobStore":
        """Initialise a new store at ``path`` with every cell ``pending``.

        ``metadata`` is stored verbatim (JSON) and handed back to the
        exporter, so a fabric export can reproduce a sequential sweep's
        output byte for byte.  Refuses to overwrite an existing file — a
        half-run store is operator state, not scratch.
        """
        if os.path.exists(path):
            raise FileExistsError(f"fabric store {path!r} already exists")
        if not cells:
            raise ValueError("a fabric store needs at least one cell")
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
        # Validate the backoff knobs up front (retry_backoff re-checks).
        retry_backoff(
            0, 1, base=backoff_base, cap=backoff_cap, jitter_fraction=jitter_fraction
        )
        keys = {(cell.index, cell.repetition) for cell in cells}
        if len(keys) != len(cells):
            raise ValueError("duplicate (index, repetition) cell")
        conn = cls._connect(path)
        try:
            with conn:
                conn.execute(
                    "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                conn.execute(
                    """
                    CREATE TABLE cells (
                        idx INTEGER NOT NULL,
                        rep INTEGER NOT NULL,
                        name TEXT NOT NULL,
                        params TEXT NOT NULL,
                        seed INTEGER NOT NULL,
                        state TEXT NOT NULL DEFAULT 'pending',
                        attempts INTEGER NOT NULL DEFAULT 0,
                        worker TEXT,
                        deadline REAL,
                        not_before REAL NOT NULL DEFAULT 0,
                        metrics TEXT,
                        artifact TEXT,
                        error TEXT,
                        updated_at REAL NOT NULL DEFAULT 0,
                        PRIMARY KEY (idx, rep)
                    )
                    """
                )
                conn.execute(
                    "CREATE INDEX cells_by_state ON cells (state, not_before)"
                )
                meta = {
                    "schema": STORE_SCHEMA,
                    "metadata": json.dumps(metadata or {}),
                    "lease_ttl": repr(float(lease_ttl)),
                    "max_attempts": repr(int(max_attempts)),
                    "backoff_base": repr(float(backoff_base)),
                    "backoff_cap": repr(float(backoff_cap)),
                    "jitter_fraction": repr(float(jitter_fraction)),
                }
                conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)", meta.items()
                )
                conn.executemany(
                    "INSERT INTO cells (idx, rep, name, params, seed, updated_at)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    [
                        (
                            cell.index,
                            cell.repetition,
                            cell.name,
                            json.dumps(cell.params),
                            cell.seed,
                            clock(),
                        )
                        for cell in cells
                    ],
                )
        finally:
            conn.close()
        return cls(path, clock=clock)

    @staticmethod
    def _connect(path: str) -> sqlite3.Connection:
        conn = sqlite3.connect(path, timeout=30.0, isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=FULL")
        conn.row_factory = sqlite3.Row
        return conn

    def close(self) -> None:
        """Close the underlying connection (the store file stays usable)."""
        self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------- metadata

    def _meta_get(self, key: str) -> Optional[str]:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.DatabaseError as error:
            raise StoreFormatError(
                f"{self.path!r} is not a fabric job store: {error}"
            ) from None
        return None if row is None else row["value"]

    @property
    def metadata(self) -> Dict[str, object]:
        """The submit-time metadata document, exactly as stored."""
        return json.loads(self._meta_get("metadata") or "{}")

    @property
    def lease_ttl(self) -> float:
        return float(self._meta_get("lease_ttl"))

    @property
    def max_attempts(self) -> int:
        return int(self._meta_get("max_attempts"))

    def _backoff_for(self, seed: int, attempt: int) -> float:
        return retry_backoff(
            seed,
            attempt,
            base=float(self._meta_get("backoff_base")),
            cap=float(self._meta_get("backoff_cap")),
            jitter_fraction=float(self._meta_get("jitter_fraction")),
        )

    # ---------------------------------------------------------------- leases

    def claim(self, worker: str, *, lease_ttl: Optional[float] = None) -> Optional[Lease]:
        """Atomically lease the next runnable cell to ``worker``.

        Scans, in flat-index order: ``pending``/``failed`` cells whose
        backoff delay has elapsed, and ``leased`` cells whose deadline has
        passed (their worker is presumed dead).  An expired cell whose
        attempt budget is already spent is quarantined instead of re-leased.
        Returns ``None`` when nothing is currently claimable.  The whole
        decision runs inside one ``BEGIN IMMEDIATE`` transaction, so two
        workers can never claim the same cell.
        """
        now = self.clock()
        ttl = self.lease_ttl if lease_ttl is None else float(lease_ttl)
        max_attempts = self.max_attempts
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            while True:
                row = self._conn.execute(
                    """
                    SELECT idx, rep, name, params, seed, state, attempts
                    FROM cells
                    WHERE (state IN ('pending', 'failed') AND not_before <= ?)
                       OR (state = 'leased' AND deadline < ?)
                    ORDER BY idx, rep LIMIT 1
                    """,
                    (now, now),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                if row["state"] == "leased" and row["attempts"] >= max_attempts:
                    # The dead worker spent the last attempt; park the cell.
                    self._conn.execute(
                        "UPDATE cells SET state='quarantined', worker=NULL,"
                        " deadline=NULL, error=?, updated_at=?"
                        " WHERE idx=? AND rep=?",
                        (
                            f"lease expired after attempt {row['attempts']}"
                            f"/{max_attempts}",
                            now,
                            row["idx"],
                            row["rep"],
                        ),
                    )
                    continue
                attempt = row["attempts"] + 1
                deadline = now + ttl
                self._conn.execute(
                    "UPDATE cells SET state='leased', worker=?, deadline=?,"
                    " attempts=?, updated_at=? WHERE idx=? AND rep=?",
                    (worker, deadline, attempt, now, row["idx"], row["rep"]),
                )
                self._conn.execute("COMMIT")
                return Lease(
                    index=row["idx"],
                    repetition=row["rep"],
                    name=row["name"],
                    params=json.loads(row["params"]),
                    seed=row["seed"],
                    worker=worker,
                    deadline=deadline,
                    attempt=attempt,
                )
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def _owned_update(self, lease: Lease, sql: str, params: Tuple) -> bool:
        """Run an update conditional on still owning the lease."""
        cursor = self._conn.execute(
            sql + " WHERE idx=? AND rep=? AND state='leased' AND worker=?",
            params + (lease.index, lease.repetition, lease.worker),
        )
        return cursor.rowcount == 1

    def heartbeat(self, lease: Lease, *, lease_ttl: Optional[float] = None) -> bool:
        """Extend a held lease's deadline; ``False`` means the lease is lost.

        A lost heartbeat (the lease expired and someone else reclaimed the
        cell, or the cell was requeued) tells the worker to abandon the cell
        — its eventual result would be discarded by :meth:`complete` anyway.
        """
        now = self.clock()
        ttl = self.lease_ttl if lease_ttl is None else float(lease_ttl)
        return self._owned_update(
            lease,
            "UPDATE cells SET deadline=?, updated_at=?",
            (now + ttl, now),
        )

    def complete(
        self,
        lease: Lease,
        metrics: Dict[str, float],
        *,
        artifact: Optional[str] = None,
    ) -> bool:
        """Record a finished cell; ``False`` when the lease was already lost.

        The metrics JSON preserves the report's key order, which is what
        makes a fabric export byte-identical to a sequential sweep's.
        """
        return self._owned_update(
            lease,
            "UPDATE cells SET state='done', metrics=?, artifact=?,"
            " worker=NULL, deadline=NULL, error=NULL, updated_at=?",
            (json.dumps(metrics), artifact, self.clock()),
        )

    def fail(self, lease: Lease, error: str) -> Optional[str]:
        """Record a failed attempt; returns the cell's new state.

        Retries go to ``failed`` with a deterministic exponential-backoff
        ``not_before``; the ``max_attempts``-th failure quarantines the cell.
        Returns ``None`` when the lease was already lost (nothing recorded).
        """
        now = self.clock()
        if lease.attempt >= self.max_attempts:
            ok = self._owned_update(
                lease,
                "UPDATE cells SET state='quarantined', worker=NULL,"
                " deadline=NULL, error=?, updated_at=?",
                (error, now),
            )
            return "quarantined" if ok else None
        delay = self._backoff_for(lease.seed, lease.attempt)
        ok = self._owned_update(
            lease,
            "UPDATE cells SET state='failed', worker=NULL, deadline=NULL,"
            " error=?, not_before=?, updated_at=?",
            (error, now + delay, now),
        )
        return "failed" if ok else None

    def preload_done(
        self, index: int, repetition: int, metrics: Dict[str, float]
    ) -> bool:
        """Mark a still-``pending`` cell ``done`` with known metrics.

        The submit-time resume path: cells an earlier export already
        computed never need a lease at all.  Only ``pending`` cells with no
        spent attempts are eligible — anything else means workers are
        already draining the store, and resume seeding would race them.
        """
        cursor = self._conn.execute(
            "UPDATE cells SET state='done', metrics=?, updated_at=?"
            " WHERE idx=? AND rep=? AND state='pending' AND attempts=0",
            (json.dumps(metrics), self.clock(), index, repetition),
        )
        return cursor.rowcount == 1

    def release(self, lease: Lease) -> bool:
        """Cleanly abandon a held lease (SIGTERM drain): back to ``pending``.

        The attempt is refunded — a deliberate handoff is not a failure and
        must not push the cell toward quarantine or delay its next claim.
        """
        return self._owned_update(
            lease,
            "UPDATE cells SET state='pending', worker=NULL, deadline=NULL,"
            " attempts=attempts-1, updated_at=?",
            (self.clock(),),
        )

    # ---------------------------------------------------------------- queries

    def counts(self) -> Dict[str, int]:
        """Cells per state (every state present, zero when empty)."""
        out = {state: 0 for state in CELL_STATES}
        for row in self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM cells GROUP BY state"
        ):
            out[row["state"]] = row["n"]
        return out

    def unfinished(self) -> int:
        """Cells not yet in a terminal state."""
        counts = self.counts()
        return sum(n for state, n in counts.items() if state not in TERMINAL_STATES)

    def is_complete(self) -> bool:
        """True when every cell is ``done`` (quarantined cells count as not)."""
        counts = self.counts()
        return counts["done"] == sum(counts.values())

    def cells(self) -> List[Dict[str, object]]:
        """Every cell row as a plain dict, in flat-index order."""
        rows = self._conn.execute(
            "SELECT * FROM cells ORDER BY idx, rep"
        ).fetchall()
        out = []
        for row in rows:
            cell = dict(row)
            cell["params"] = json.loads(cell["params"])
            if cell["metrics"] is not None:
                cell["metrics"] = json.loads(cell["metrics"])
            out.append(cell)
        return out

    def observe(self) -> Dict[str, object]:
        """One coherent observation of the store's operational state.

        The **single shared accessor** behind both ``repro fabric status
        --json`` and the Prometheus gauges (``--prometheus``, the worker
        sidecar), so the two surfaces can never disagree about what a
        "retry" or a "heartbeat age" means.  Keys:

        * ``now`` — the store clock at observation time;
        * ``states`` — cells per state (every state, zero-filled);
        * ``cells`` — total cell count;
        * ``attempts_total`` — lease acquisitions across all cells;
        * ``retries_total`` — acquisitions beyond each cell's first
          (``SUM(attempts - 1)`` over cells with ``attempts > 1``);
        * ``attempt_histogram`` — ``{attempts: cell count}`` over cells
          with at least one attempt;
        * ``lease_expired`` — leased cells whose deadline has passed
          (their worker is presumed dead);
        * ``workers`` — one entry per worker currently holding leases:
          ``{"worker", "leased", "last_heartbeat_age_s", "next_deadline_s"}``.
        """
        now = self.clock()
        states = self.counts()
        attempts_total = self._conn.execute(
            "SELECT COALESCE(SUM(attempts), 0) AS a FROM cells"
        ).fetchone()["a"]
        retries_total = self._conn.execute(
            "SELECT COALESCE(SUM(attempts - 1), 0) AS r FROM cells"
            " WHERE attempts > 1"
        ).fetchone()["r"]
        attempt_histogram = {
            int(row["attempts"]): row["n"]
            for row in self._conn.execute(
                "SELECT attempts, COUNT(*) AS n FROM cells"
                " WHERE attempts > 0 GROUP BY attempts ORDER BY attempts"
            )
        }
        lease_expired = self._conn.execute(
            "SELECT COUNT(*) AS n FROM cells WHERE state='leased' AND deadline < ?",
            (now,),
        ).fetchone()["n"]
        workers = [
            {
                "worker": row["worker"],
                "leased": row["n"],
                "last_heartbeat_age_s": max(0.0, now - row["touched"]),
                "next_deadline_s": row["deadline"] - now,
            }
            for row in self._conn.execute(
                "SELECT worker, COUNT(*) AS n, MAX(updated_at) AS touched,"
                " MIN(deadline) AS deadline FROM cells"
                " WHERE state='leased' GROUP BY worker ORDER BY worker"
            )
        ]
        return {
            "now": now,
            "states": states,
            "cells": sum(states.values()),
            "attempts_total": attempts_total,
            "retries_total": retries_total,
            "attempt_histogram": attempt_histogram,
            "lease_expired": lease_expired,
            "workers": workers,
        }

    def status(self) -> Dict[str, object]:
        """JSON-ready store summary for ``repro fabric status``.

        Counts, retry totals, attempt histogram and per-worker heartbeat
        ages all come from the same :meth:`observe` snapshot the Prometheus
        surfaces render, so the JSON and the gauges always agree.
        """
        observation = self.observe()
        counts = observation["states"]
        total = observation["cells"]
        quarantined = [
            {
                "index": row["idx"],
                "repetition": row["rep"],
                "name": row["name"],
                "attempts": row["attempts"],
                "error": row["error"],
            }
            for row in self._conn.execute(
                "SELECT idx, rep, name, attempts, error FROM cells"
                " WHERE state='quarantined' ORDER BY idx, rep"
            )
        ]
        return {
            "schema": STORE_SCHEMA,
            "path": self.path,
            "cells": total,
            "states": counts,
            "attempts": observation["attempts_total"],
            "retries": observation["retries_total"],
            "attempt_histogram": {
                str(attempts): count
                for attempts, count in observation["attempt_histogram"].items()
            },
            "lease_expired": observation["lease_expired"],
            "workers": observation["workers"],
            "complete": counts["done"] == total,
            "quarantined": quarantined,
            "metadata": self.metadata,
        }

    # ---------------------------------------------------------------- repair

    def requeue(
        self,
        states: Sequence[str] = ("failed", "quarantined"),
        *,
        expired_leases: bool = False,
    ) -> int:
        """Put cells back to ``pending`` (immediately claimable); returns count.

        ``states`` picks which non-terminal failure states to drain;
        ``expired_leases=True`` additionally requeues leased cells whose
        deadline has passed without waiting for a claim to notice them.
        ``done`` cells are never requeued — completed work is immutable.
        """
        for state in states:
            if state not in ("failed", "quarantined", "pending"):
                raise ValueError(f"cannot requeue cells in state {state!r}")
        now = self.clock()
        total = 0
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            if states:
                placeholders = ",".join("?" for _ in states)
                cursor = self._conn.execute(
                    f"UPDATE cells SET state='pending', worker=NULL,"
                    f" deadline=NULL, not_before=0, error=NULL, updated_at=?"
                    f" WHERE state IN ({placeholders})",
                    (now, *states),
                )
                total += cursor.rowcount
            if expired_leases:
                cursor = self._conn.execute(
                    "UPDATE cells SET state='pending', worker=NULL,"
                    " deadline=NULL, not_before=0, updated_at=?"
                    " WHERE state='leased' AND deadline < ?",
                    (now, now),
                )
                total += cursor.rowcount
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return total

"""The fault-tolerant distributed sweep fabric (api/worker split).

A sweep grid's cells are idempotent, deterministic functions of
``(scenario, params, seed)`` — the flat-index seed convention from
:mod:`repro.experiments.runner` — so their execution does not need to live
and die with one parent process.  This package promotes the sweep into a
crash-safe fabric:

* :mod:`repro.fabric.store` — a durable SQLite (WAL) job + artifact
  catalog with atomic lease acquisition, heartbeat deadlines, deterministic
  retry backoff, and poison-cell quarantine;
* :mod:`repro.fabric.worker` — the pull-based worker loop behind
  ``repro worker --store PATH``: claim, heartbeat, run, write a
  sha256-stamped artifact atomically, commit;
* :mod:`repro.fabric.submit` — grid submission (``repro sweep --fabric``),
  status/requeue plumbing and the byte-identity export
  (``repro fabric export``).

The contract — certified by benchmark E18's chaos harness — is that *any*
interleaving of worker crashes, lease expiries and retries yields an
export byte-identical to ``repro sweep --jobs 1`` of the same grid.
See ``docs/FABRIC.md``.
"""

from repro.fabric.store import (
    CELL_STATES,
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    CellSpec,
    FabricError,
    JobStore,
    Lease,
    StoreFormatError,
    StoreStateError,
    retry_backoff,
)
from repro.fabric.submit import (
    StoreIncompleteError,
    export_store,
    grid_cells,
    store_results,
    submit_grid,
)
from repro.fabric.worker import (
    FabricWorker,
    artifact_dir_for,
    default_worker_id,
    metrics_sha256,
    read_cell_artifact,
    worker_main,
    write_cell_artifact,
)

__all__ = [
    "CELL_STATES",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "CellSpec",
    "FabricError",
    "JobStore",
    "Lease",
    "StoreFormatError",
    "StoreStateError",
    "StoreIncompleteError",
    "retry_backoff",
    "export_store",
    "grid_cells",
    "store_results",
    "submit_grid",
    "FabricWorker",
    "artifact_dir_for",
    "default_worker_id",
    "metrics_sha256",
    "read_cell_artifact",
    "worker_main",
    "write_cell_artifact",
]

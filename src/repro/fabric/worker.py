"""The pull-based fabric worker: claim, heartbeat, run, commit, repeat.

``repro worker --store PATH`` runs one of these.  Any number of workers —
across processes or machines sharing the filesystem — can drain the same
:class:`~repro.fabric.store.JobStore`; the store's lease transaction is the
only coordination point, so there is no controller process to lose.

One claimed cell runs through the exact same
:class:`~repro.experiments.runner.ScenarioRunOnce` path a ``repro sweep
--jobs N`` worker uses, so a cell's metrics are a pure function of its
``(scenario, params, seed)`` key regardless of which worker runs it, how
often it was retried, or what else died around it — the property the E18
chaos benchmark turns into a byte-identity gate.

Crash-safety mechanics:

* a daemon **heartbeat thread** renews the lease on a timer through its own
  store connection; if a renewal reports the lease lost, the eventual
  ``complete`` is a no-op and the result is discarded (some other worker
  owns the cell now);
* the **result artifact** is written atomically — temp file in the target
  directory, ``fsync``, ``os.replace`` — with the metrics' SHA-256 stamped
  in the JSON, so a SIGKILL mid-write can never leave a torn artifact that
  parses;
* **SIGTERM** drains cleanly: the current cell finishes and commits, then
  the loop exits; a second SIGTERM (or SIGINT) abandons the in-flight cell
  by *releasing* its lease — the attempt is refunded and the cell is
  immediately claimable by someone else.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import tempfile
import threading
import time
from typing import Callable, Dict, Optional

from repro.experiments.runner import ScenarioRunOnce
from repro.fabric.store import JobStore, Lease
from repro.telemetry.trace import current_tracer

#: Artifact schema tag.
CELL_ARTIFACT_SCHEMA = "repro.fabric.cell/1"

#: How often the heartbeat thread renews, as a fraction of the lease TTL.
HEARTBEAT_FRACTION = 0.25


class _AbandonCell(BaseException):
    """Raised inside the worker loop by a second SIGTERM / SIGINT.

    Derives from ``BaseException`` so an over-broad ``except Exception``
    inside scenario code cannot swallow the abandon request.
    """


def default_worker_id() -> str:
    """A worker identity unique across hosts and processes."""
    return f"{socket.gethostname()}:{os.getpid()}"


def metrics_sha256(metrics: Dict[str, float]) -> str:
    """The digest stamped into (and verified against) cell artifacts.

    Canonical form: sorted keys, compact separators — independent of the
    insertion order the artifact's ``metrics`` object itself preserves.
    """
    canonical = json.dumps(metrics, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_cell_artifact(
    directory: str, lease: Lease, metrics: Dict[str, float]
) -> str:
    """Atomically write one cell's result artifact; returns its path.

    Temp file + ``fsync`` + ``os.replace`` in the same directory, exactly
    the discipline :mod:`repro.snapshot` applies: after a crash the artifact
    either exists in full (hash verifies) or not at all.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"cell-{lease.index:05d}-r{lease.repetition}.json"
    )
    document = {
        "schema": CELL_ARTIFACT_SCHEMA,
        "index": lease.index,
        "repetition": lease.repetition,
        "name": lease.name,
        "seed": lease.seed,
        "params": lease.params,
        "metrics_sha256": metrics_sha256(metrics),
        "metrics": metrics,
    }
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".cell-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            # allow_nan: cell metrics legitimately contain NaN (e.g. a mean
            # latency with zero completed tasks).  Python's json module
            # round-trips the NaN/Infinity tokens, and the sweep exporter —
            # not the artifact — is where strict-JSON null mapping happens.
            json.dump(document, stream, indent=2)
            stream.write("\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return path


def read_cell_artifact(path: str) -> Dict[str, object]:
    """Load and hash-verify one cell artifact."""
    with open(path, "r", encoding="utf-8") as stream:
        document = json.load(stream)
    if document.get("schema") != CELL_ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path!r} is not a fabric cell artifact "
            f"(schema {document.get('schema')!r})"
        )
    digest = metrics_sha256(document["metrics"])
    if digest != document["metrics_sha256"]:
        raise ValueError(
            f"{path!r} is corrupt: metrics hash to {digest}, "
            f"artifact stamps {document['metrics_sha256']}"
        )
    return document


def artifact_dir_for(store_path: str) -> str:
    """The artifact directory convention: ``<store>.artifacts/`` beside it."""
    return store_path + ".artifacts"


class _Heartbeat:
    """Daemon thread renewing one lease until stopped.

    Uses its *own* store connection — sqlite3 connections are not shareable
    across threads — and records whether any renewal reported the lease
    lost, which the worker checks before trusting its completion.
    """

    def __init__(self, store_path: str, lease: Lease, interval: float) -> None:
        self._store_path = store_path
        self._lease = lease
        self._interval = interval
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *_exc) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        with JobStore(self._store_path) as store:
            while not self._stop.wait(self._interval):
                renewed = store.heartbeat(self._lease)
                tracer = current_tracer()
                if tracer is not None:
                    tracer.instant(
                        "heartbeat",
                        "fabric",
                        args={
                            "index": self._lease.index,
                            "repetition": self._lease.repetition,
                            "renewed": renewed,
                        },
                    )
                if not renewed:
                    self.lost = True
                    return


class FabricWorker:
    """The worker loop. One instance per process.

    Parameters
    ----------
    store_path:
        The job store to drain.
    worker_id:
        Identity recorded on leases (default ``host:pid``).
    run_cell:
        Callable ``(params, seed) -> metrics``; defaults to the store's own
        scenario via :class:`ScenarioRunOnce` — override in tests.
    heartbeat_interval:
        Lease renewal period (default: a quarter of the lease TTL).
    poll_interval:
        Sleep between claim attempts when nothing is claimable.
    max_cells:
        Stop after completing this many cells (``None`` = unbounded).
    exit_when_idle:
        Return once nothing is claimable *and* every cell is terminal
        (the batch mode the CLI and benchmarks use); ``False`` keeps
        polling until signalled (the long-lived daemon mode).
    install_signal_handlers:
        Install the SIGTERM/SIGINT drain/abandon handlers (main thread of
        a dedicated worker process only).
    """

    def __init__(
        self,
        store_path: str,
        *,
        worker_id: Optional[str] = None,
        run_cell: Optional[Callable[[Dict[str, object], int], Dict[str, float]]] = None,
        heartbeat_interval: Optional[float] = None,
        poll_interval: float = 0.2,
        max_cells: Optional[int] = None,
        exit_when_idle: bool = True,
        install_signal_handlers: bool = False,
    ) -> None:
        self.store_path = store_path
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval = poll_interval
        self.max_cells = max_cells
        self.exit_when_idle = exit_when_idle
        self.install_signal_handlers = install_signal_handlers
        self.artifact_dir = artifact_dir_for(store_path)
        self.completed = 0
        self.failed = 0
        self.abandoned = 0
        self._heartbeat_interval = heartbeat_interval
        self._run_cell = run_cell
        self._draining = False
        self._abandon_requested = False

    # ------------------------------------------------------------- signals

    def _on_signal(self, signum, _frame) -> None:
        if self._draining or signum == signal.SIGINT:
            # Second notice (or an interactive ^C): abandon the in-flight
            # cell by releasing its lease, then exit.
            self._abandon_requested = True
            raise _AbandonCell()
        self._draining = True

    # ---------------------------------------------------------------- loop

    def _build_run_cell(self, store: JobStore):
        if self._run_cell is not None:
            return self._run_cell
        meta = store.metadata
        scenario = meta.get("scenario")
        if scenario is None:
            raise ValueError(
                f"store {self.store_path!r} records no scenario; pass "
                "run_cell explicitly"
            )
        return ScenarioRunOnce(
            scenario=scenario,
            duration=float(meta.get("duration", 20.0)),
            overrides=tuple(sorted((meta.get("overrides") or {}).items())),
        )

    def run(self) -> int:
        """Drain the store; returns the number of cells completed."""
        if self.install_signal_handlers:
            signal.signal(signal.SIGTERM, self._on_signal)
            signal.signal(signal.SIGINT, self._on_signal)
        with JobStore(self.store_path) as store:
            run_cell = self._build_run_cell(store)
            interval = (
                store.lease_ttl * HEARTBEAT_FRACTION
                if self._heartbeat_interval is None
                else self._heartbeat_interval
            )
            try:
                while not self._draining:
                    if self.max_cells is not None and self.completed >= self.max_cells:
                        break
                    lease = store.claim(self.worker_id)
                    if lease is None:
                        if self.exit_when_idle and store.unfinished() == 0:
                            break
                        time.sleep(self.poll_interval)
                        continue
                    self._run_lease(store, run_cell, lease, interval)
            except _AbandonCell:
                pass
        return self.completed

    def _run_lease(self, store: JobStore, run_cell, lease: Lease, interval) -> None:
        tracer = current_tracer()
        trace_start = tracer.clock() if tracer is not None else 0.0
        outcome = "completed"
        try:
            with _Heartbeat(self.store_path, lease, interval) as heartbeat:
                metrics = dict(run_cell(lease.params, lease.seed))
            if heartbeat.lost:
                # Someone else owns the cell now; complete() below would be
                # a no-op anyway, but skip the artifact write too: the owner
                # will produce the identical one.
                self.abandoned += 1
                outcome = "abandoned"
                return
            artifact = write_cell_artifact(self.artifact_dir, lease, metrics)
            if not store.complete(lease, metrics, artifact=artifact):
                self.abandoned += 1
                outcome = "abandoned"
                return
        except _AbandonCell:
            store.release(lease)
            self.abandoned += 1
            outcome = "abandoned"
            raise
        except Exception as error:  # noqa: BLE001 - any cell failure retries
            state = store.fail(lease, f"{type(error).__name__}: {error}")
            if state is not None:
                self.failed += 1
            outcome = "failed"
        else:
            self.completed += 1
        finally:
            if tracer is not None:
                tracer.span(
                    "cell",
                    "fabric",
                    trace_start,
                    args={
                        "index": lease.index,
                        "repetition": lease.repetition,
                        "seed": lease.seed,
                        "worker": self.worker_id,
                        "outcome": outcome,
                    },
                )


def worker_metrics_render(worker: "FabricWorker") -> Callable[[], str]:
    """Build the exposition callable a worker's ``--metrics-port`` serves.

    Combines the worker's own cell counters with a fresh store observation
    per scrape — sqlite connections are thread-bound, so the render opens
    (and closes) its own on the server thread.
    """
    from repro.telemetry.prometheus import (
        job_store_points,
        render_exposition,
        worker_points,
    )

    def render() -> str:
        points = list(worker_points(worker))
        with JobStore(worker.store_path) as store:
            points.extend(job_store_points(store.observe()))
        return render_exposition(points)

    return render


def worker_main(
    store_path: str,
    *,
    worker_id: Optional[str] = None,
    heartbeat_interval: Optional[float] = None,
    poll_interval: float = 0.2,
    max_cells: Optional[int] = None,
    exit_when_idle: bool = True,
    metrics_port: Optional[int] = None,
) -> int:
    """Module-level entry point (picklable for ``multiprocessing.Process``).

    ``metrics_port`` attaches a :class:`~repro.telemetry.httpd.MetricsServer`
    sidecar for the worker's lifetime (0 = any free port).
    """
    worker = FabricWorker(
        store_path,
        worker_id=worker_id,
        heartbeat_interval=heartbeat_interval,
        poll_interval=poll_interval,
        max_cells=max_cells,
        exit_when_idle=exit_when_idle,
        install_signal_handlers=True,
    )
    if metrics_port is None:
        return worker.run()
    from repro.telemetry.httpd import MetricsServer

    with MetricsServer(worker_metrics_render(worker), port=metrics_port) as server:
        print(f"metrics: http://{server.host}:{server.port}/metrics", flush=True)
        return worker.run()

"""Populating and draining fabric stores: the submit/export API.

``repro sweep --fabric PATH`` calls :func:`submit_grid` to expand a
:class:`~repro.experiments.runner.SweepGrid` into one store cell per
``(point, repetition)`` — the same flat-index seed convention as an
in-process sweep, so any cell's result is byte-identical no matter which
side computes it.  A prior ``--out`` JSON export can seed the store
(``resume_cache``): cells it already holds are inserted as ``done``, and
only the remainder is ever leased.

:func:`export_store` is the inverse: it reassembles the completed cells
into :class:`~repro.experiments.runner.ExperimentResult` rows in flat-index
order and hands them to the *same* :func:`~repro.experiments.export.
export_results` writer with the *same* metadata the sequential CLI path
uses — which is why a fabric export is certified byte-identical to
``repro sweep --jobs 1`` output (benchmark E18), no matter how many workers
ran, died, or retried in between.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.export import export_results
from repro.experiments.runner import (
    DEFAULT_SEED_STRIDE,
    ExperimentResult,
    SweepGrid,
    SweepPoint,
)
from repro.fabric.store import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_CAP,
    DEFAULT_JITTER_FRACTION,
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    CellSpec,
    FabricError,
    JobStore,
)


class StoreIncompleteError(FabricError):
    """An export was requested from a store with unfinished cells."""


def grid_cells(
    grid: SweepGrid,
    *,
    scenario: str,
    repetitions: int,
    base_seed: int,
    seed_stride: int = DEFAULT_SEED_STRIDE,
) -> List[CellSpec]:
    """Expand a grid into fabric cells under the flat-index seed convention.

    ``seed = base_seed + point_index * seed_stride + repetition`` — exactly
    :meth:`ExperimentRunner.seed_for`, so a fabric cell and an in-process
    sweep cell of the same grid agree on every seed.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    if repetitions > seed_stride:
        raise ValueError(
            f"repetitions ({repetitions}) must not exceed seed_stride "
            f"({seed_stride}), or adjacent sweep points would share seeds"
        )
    cells = []
    for index, point in enumerate(grid.points(f"{scenario}:")):
        params = point.as_dict()
        for repetition in range(repetitions):
            cells.append(
                CellSpec(
                    index=index,
                    repetition=repetition,
                    name=point.name,
                    params=params,
                    seed=base_seed + index * seed_stride + repetition,
                )
            )
    return cells


def submit_grid(
    store_path: str,
    scenario: str,
    grid: SweepGrid,
    *,
    duration: float = 20.0,
    repetitions: int = 3,
    base_seed: int = 1000,
    seed_stride: int = DEFAULT_SEED_STRIDE,
    resume_cache: Optional[object] = None,
    overrides: Optional[Dict[str, object]] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    backoff_base: float = DEFAULT_BACKOFF_BASE,
    backoff_cap: float = DEFAULT_BACKOFF_CAP,
    jitter_fraction: float = DEFAULT_JITTER_FRACTION,
) -> JobStore:
    """Create a job store holding every cell of one scenario sweep.

    ``resume_cache`` (a :class:`~repro.experiments.export.SweepCache`) seeds
    cells an earlier export already computed: they are stored ``done`` with
    their cached metrics and never leased.  ``overrides`` are fixed knobs
    applied to every cell on top of the grid parameters (the programmatic
    equivalent of a point dimension with one value).

    The store records the exact export metadata a sequential
    ``repro sweep --jobs 1 --out`` call would write, so
    :func:`export_store` can reproduce that output byte for byte.
    """
    cells = grid_cells(
        grid,
        scenario=scenario,
        repetitions=repetitions,
        base_seed=base_seed,
        seed_stride=seed_stride,
    )
    # Key order matters: this dict is replayed verbatim into the JSON
    # export's "sweep" object, matching the CLI's kwargs order.
    metadata: Dict[str, object] = {
        "scenario": scenario,
        "grid": dict(grid.dimensions),
        "duration": duration,
        "repetitions": repetitions,
        "base_seed": base_seed,
        "jobs": 1,
        "seed_stride": seed_stride,
        "overrides": dict(overrides or {}),
    }
    store = JobStore.create(
        store_path,
        cells,
        metadata=metadata,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        jitter_fraction=jitter_fraction,
    )
    if resume_cache is not None:
        for cell in cells:
            metrics = resume_cache.lookup(cell.params, cell.seed)
            if metrics is not None:
                store.preload_done(cell.index, cell.repetition, metrics)
    return store


def store_results(store: JobStore, *, partial: bool = False) -> List[ExperimentResult]:
    """Reassemble a store's cells into per-point results, flat-index order.

    Raises :class:`StoreIncompleteError` unless every cell is ``done``
    (``partial=True`` keeps only fully-done points instead — useful for
    peeking at a running grid, never for the byte-identity export).
    """
    cells = store.cells()
    missing = [c for c in cells if c["state"] != "done"]
    if missing and not partial:
        states: Dict[str, int] = {}
        for cell in missing:
            states[cell["state"]] = states.get(cell["state"], 0) + 1
        summary = ", ".join(f"{n} {state}" for state, n in sorted(states.items()))
        raise StoreIncompleteError(
            f"store {store.path!r} has {len(missing)} unfinished cells "
            f"({summary}); run more workers or `repro fabric requeue`"
        )
    by_point: Dict[int, List[Dict[str, object]]] = {}
    for cell in cells:
        by_point.setdefault(cell["idx"], []).append(cell)
    results = []
    for index in sorted(by_point):
        point_cells = sorted(by_point[index], key=lambda c: c["rep"])
        if any(c["state"] != "done" for c in point_cells):
            continue  # partial=True: drop incomplete points wholesale
        first = point_cells[0]
        point = SweepPoint.of(first["name"], **first["params"])
        results.append(
            ExperimentResult(
                point=point, runs=[dict(c["metrics"]) for c in point_cells]
            )
        )
    return results


def export_store(
    store: JobStore,
    paths: Sequence[str],
    *,
    partial: bool = False,
) -> List[ExperimentResult]:
    """Write a completed store to ``paths`` (.json / .csv by suffix).

    Uses the submit-time metadata and the grid's own dimension order, so
    the JSON and CSV bytes match a sequential ``repro sweep --jobs 1
    --out`` of the same grid exactly (E18's gate).  Returns the results.
    """
    results = store_results(store, partial=partial)
    meta = store.metadata
    grid_dims = meta.get("grid") or {}
    export_metadata = {
        key: meta[key]
        for key in ("scenario", "grid", "duration", "repetitions", "base_seed", "jobs")
        if key in meta
    }
    for path in paths:
        export_results(
            path,
            results,
            dimensions=list(grid_dims) or None,
            **export_metadata,
        )
    return results

"""The live side of fault injection: applying a schedule to a simulation.

A :class:`FaultInjector` owns the runtime effects of an expanded
:class:`~repro.faults.schedule.FaultSchedule`:

* **crash / recover** — delegates to
  :meth:`~repro.core.api.AirDnDNode.crash` /
  :meth:`~repro.core.api.AirDnDNode.recover`, plus the pieces the node
  cannot reach itself: pulling the mobile out of (and back into) the
  mobility manager's substrate, suspending/resuming the node as a workload
  origin, and re-applying the node's adversary profile after the mesh stack
  is rebuilt;
* **radio degradation** — a stack of active noise-figure bumps pushed onto
  the environment's link budget (``noise_penalty_db``), flushed through the
  per-epoch link caches via ``notify_positions_changed``;
* **message-loss bursts** — a stack of active extra-drop probabilities
  combined independently into ``extra_loss_probability``;
* **adversaries** — seeded profile assignment applied once at install time.

The injector is deliberately passive when idle: constructing it, or arming a
null schedule, draws no randomness and schedules no events, so the simulation
stays byte-identical to one with no injector at all (benchmark E14).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.faults.adversary import apply_profile
from repro.faults.schedule import (
    CRASH,
    LOSS_END,
    LOSS_START,
    RADIO_DEGRADE,
    RADIO_RESTORE,
    RECOVER,
    FaultEvent,
    FaultSchedule,
)
from repro.simcore.simulator import Simulator


class FaultInjector:
    """Applies fault events to a live fleet of AirDnD nodes.

    Parameters
    ----------
    sim:
        The simulator fault events are scheduled on.
    nodes:
        The :class:`~repro.core.api.AirDnDNode` s faults may target.
    environment:
        The shared radio environment (needed for degradation and loss
        bursts; crash/recover work without it).
    mobility:
        Optional :class:`~repro.mobility.manager.MobilityManager`; when
        given, crashed nodes are removed from (and recovered nodes returned
        to) its substrate.
    workload:
        Optional workload exposing ``suspend_node`` / ``resume_node`` (as
        :class:`~repro.scenarios.workloads.GenericComputeWorkload` does), so
        crashed nodes stop originating tasks.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Any],
        environment: Optional[Any] = None,
        mobility: Optional[Any] = None,
        workload: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self._nodes: Dict[str, Any] = {node.name: node for node in nodes}
        self.environment = environment
        self.mobility = mobility
        self.workload = workload
        self._created_at = sim.now
        self._assignment: Dict[str, str] = {}
        #: Per-crash downtime bookkeeping for the availability metric.
        self._down_since: Dict[str, float] = {}
        self._downtime_total = 0.0
        #: Seconds from each recovery to the node's first regained neighbour.
        self.rejoin_delays: List[float] = []
        self._await_rejoin: Dict[str, float] = {}
        #: Active burst stacks (overlapping bursts are legal).
        self._noise_stack: List[float] = []
        self._loss_stack: List[float] = []
        # Counters (exported by report_extra).
        self.crashes_injected = 0
        self.recoveries_injected = 0
        self.degradation_bursts = 0
        self.loss_bursts = 0
        self._on_crash: List[Callable[[Any], None]] = []
        self._on_recover: List[Callable[[Any], None]] = []

    # ------------------------------------------------------------ listeners

    def on_crash(self, callback: Callable[[Any], None]) -> None:
        """Register a callback fired with the node after each crash."""
        self._on_crash.append(callback)

    def on_recover(self, callback: Callable[[Any], None]) -> None:
        """Register a callback fired with the node after each recovery."""
        self._on_recover.append(callback)

    # ---------------------------------------------------------- adversaries

    @property
    def malicious_names(self) -> List[str]:
        """Names of the nodes carrying an adversary profile (sorted)."""
        return sorted(self._assignment)

    def assign_adversaries(self, assignment: Mapping[str, str]) -> None:
        """Apply ``node name → profile name`` and remember it for re-application.

        Unknown node names are rejected: a silent skip would make a sweep
        with a typo'd fleet report an honest fleet as attacked.
        """
        for name, profile_name in assignment.items():
            node = self._nodes.get(name)
            if node is None:
                raise ValueError(f"cannot make unknown node {name!r} malicious")
            apply_profile(node, profile_name)
            self._assignment[name] = profile_name

    # -------------------------------------------------------------- arming

    def arm(
        self,
        schedule: FaultSchedule,
        start: Optional[float] = None,
        duration: float = 0.0,
    ) -> int:
        """Expand ``schedule`` over ``[start, start+duration)`` and schedule it.

        Returns the number of events armed.  With a null schedule this is 0
        and the simulation is left completely untouched.  May be called once
        per ``run()`` window; windows expand independently.
        """
        if start is None:
            start = self.sim.now
        if schedule.knobs.is_null:
            return 0
        events = schedule.timeline(sorted(self._nodes), start, duration)
        for event in events:
            # Events never land before the window start by construction;
            # guard against float dust anyway.
            self.sim.schedule_at(
                max(event.time, self.sim.now),
                _EventFiring(self, event),
                name=f"fault:{event.kind}",
            )
        return len(events)

    # ------------------------------------------------------------- dispatch

    def _fire(self, event: FaultEvent) -> None:
        if event.kind == CRASH:
            self.crash(event.node)
        elif event.kind == RECOVER:
            self.recover(event.node)
        elif event.kind == RADIO_DEGRADE:
            self._radio_degrade(event.magnitude)
        elif event.kind == RADIO_RESTORE:
            self._radio_restore(event.magnitude)
        elif event.kind == LOSS_START:
            self._loss_start(event.magnitude)
        elif event.kind == LOSS_END:
            self._loss_end(event.magnitude)
        else:  # pragma: no cover - schedules only emit known kinds
            raise ValueError(f"unknown fault event kind {event.kind!r}")

    # ------------------------------------------------------- crash / recover

    def crash(self, name: str) -> bool:
        """Crash node ``name`` now; returns whether a crash happened.

        No-op (``False``) when the node is already down — consecutive arm
        windows can legitimately overlap a long downtime.
        """
        node = self._nodes[name]
        if node.crashed:
            return False
        node.crash()
        if self.mobility is not None and self.mobility.has_node(name):
            self.mobility.remove_node(name)
        if self.workload is not None:
            self.workload.suspend_node(node)
        self._down_since[name] = self.sim.now
        self._await_rejoin.pop(name, None)
        self.crashes_injected += 1
        self.sim.monitor.counter("faults.crashes").add()
        for callback in self._on_crash:
            callback(node)
        return True

    def recover(self, name: str) -> bool:
        """Recover node ``name`` now; returns whether a recovery happened."""
        node = self._nodes[name]
        if not node.crashed:
            return False
        if self.mobility is not None and not self.mobility.has_node(name):
            self.mobility.add_node(node.mobile)
        node.recover()
        profile_name = self._assignment.get(name)
        if profile_name is not None:
            # Recovery rebuilt the mesh stack; beacon-level behaviours must
            # be re-applied (executor-level flags survive but re-applying is
            # idempotent).
            apply_profile(node, profile_name)
        if self.workload is not None:
            self.workload.resume_node(node)
        down_since = self._down_since.pop(name, None)
        if down_since is not None:
            self._downtime_total += self.sim.now - down_since
        self._watch_rejoin(node)
        self.recoveries_injected += 1
        self.sim.monitor.counter("faults.recoveries").add()
        for callback in self._on_recover:
            callback(node)
        return True

    def _watch_rejoin(self, node: Any) -> None:
        """Measure recovery → first regained neighbour on the new stack."""
        recovered_at = self.sim.now
        self._await_rejoin[node.name] = recovered_at
        node.mesh.beacon_agent.on_neighbor_up(
            _RejoinWatch(self, node.name, recovered_at)
        )

    # ----------------------------------------------------- radio degradation

    def _flush_radio_caches(self) -> None:
        """Make a changed physical layer visible despite per-epoch caches."""
        if self.environment is not None:
            self.environment.notify_positions_changed()

    def _radio_degrade(self, db: float) -> None:
        if self.environment is None:
            return
        self._noise_stack.append(db)
        self.environment.link_budget.noise_penalty_db = math.fsum(self._noise_stack)
        self.degradation_bursts += 1
        self.sim.monitor.counter("faults.degradation_bursts").add()
        self._flush_radio_caches()

    def _radio_restore(self, db: float) -> None:
        if self.environment is None:
            return
        if db in self._noise_stack:
            self._noise_stack.remove(db)
        self.environment.link_budget.noise_penalty_db = (
            math.fsum(self._noise_stack) if self._noise_stack else 0.0
        )
        self._flush_radio_caches()

    # ----------------------------------------------------------- loss bursts

    def _combined_loss(self) -> float:
        survive = 1.0
        for probability in self._loss_stack:
            survive *= 1.0 - probability
        return 1.0 - survive

    def _loss_start(self, probability: float) -> None:
        if self.environment is None:
            return
        self._loss_stack.append(probability)
        self.environment.extra_loss_probability = self._combined_loss()
        self.loss_bursts += 1
        self.sim.monitor.counter("faults.loss_bursts").add()

    def _loss_end(self, probability: float) -> None:
        if self.environment is None:
            return
        if probability in self._loss_stack:
            self._loss_stack.remove(probability)
        self.environment.extra_loss_probability = (
            self._combined_loss() if self._loss_stack else 0.0
        )

    # ------------------------------------------------------------- snapshot

    def capture_state(self) -> dict:
        """The injector's durable state as plain data.

        Covers the adversary assignment, in-progress burst windows (the
        noise/loss stacks), open crash intervals and every counter.  The
        *remaining* fault timeline — events armed but not yet fired — lives
        in the simulator's event queue and travels with the object graph;
        an in-progress burst restores as exactly the stack the matching
        ``*_end`` event will later pop.
        """
        return {
            "assignment": dict(self._assignment),
            "noise_stack": list(self._noise_stack),
            "loss_stack": list(self._loss_stack),
            "down_since": dict(self._down_since),
            "downtime_total": self._downtime_total,
            "await_rejoin": dict(self._await_rejoin),
            "rejoin_delays": list(self.rejoin_delays),
            "created_at": self._created_at,
            "crashes_injected": self.crashes_injected,
            "recoveries_injected": self.recoveries_injected,
            "degradation_bursts": self.degradation_bursts,
            "loss_bursts": self.loss_bursts,
        }

    def restore_state(self, state: dict) -> None:
        """Re-apply a capture, including the live radio burst effects."""
        self._assignment = dict(state["assignment"])
        self._noise_stack = list(state["noise_stack"])
        self._loss_stack = list(state["loss_stack"])
        self._down_since = dict(state["down_since"])
        self._downtime_total = float(state["downtime_total"])
        self._await_rejoin = dict(state["await_rejoin"])
        self.rejoin_delays = list(state["rejoin_delays"])
        self._created_at = float(state["created_at"])
        self.crashes_injected = int(state["crashes_injected"])
        self.recoveries_injected = int(state["recoveries_injected"])
        self.degradation_bursts = int(state["degradation_bursts"])
        self.loss_bursts = int(state["loss_bursts"])
        if self.environment is not None:
            self.environment.link_budget.noise_penalty_db = (
                math.fsum(self._noise_stack) if self._noise_stack else 0.0
            )
            self.environment.extra_loss_probability = (
                self._combined_loss() if self._loss_stack else 0.0
            )
            self._flush_radio_caches()

    # -------------------------------------------------------------- metrics

    def downtime_s(self) -> float:
        """Accumulated node downtime, open crash intervals clamped at now."""
        now = self.sim.now
        return self._downtime_total + sum(
            now - since for since in self._down_since.values()
        )

    def availability(self) -> float:
        """Fraction of node-time the fleet was up since the injector existed."""
        elapsed = self.sim.now - self._created_at
        node_time = len(self._nodes) * elapsed
        if node_time <= 0:
            return 1.0
        return 1.0 - self.downtime_s() / node_time

    def mean_recovery_time_s(self) -> float:
        """Mean seconds from recovery to the first regained neighbour."""
        if not self.rejoin_delays:
            return math.nan
        return sum(self.rejoin_delays) / len(self.rejoin_delays)

    def report_extra(self) -> Dict[str, float]:
        """Flat fault metrics merged into a scenario report's ``extra``."""
        return {
            "availability": self.availability(),
            "crashes_injected": float(self.crashes_injected),
            "recoveries_injected": float(self.recoveries_injected),
            "mean_recovery_time_s": self.mean_recovery_time_s(),
            "degradation_bursts": float(self.degradation_bursts),
            "loss_bursts": float(self.loss_bursts),
            "malicious_node_count": float(len(self._assignment)),
        }


class _EventFiring:
    """One scheduled fault event as a compact preallocated callable."""

    __slots__ = ("injector", "event")

    def __init__(self, injector: FaultInjector, event: FaultEvent) -> None:
        self.injector = injector
        self.event = event

    def __call__(self) -> None:
        self.injector._fire(self.event)


class _RejoinWatch:
    """Neighbour-up listener measuring one recovery's rejoin delay.

    A picklable class (not a closure): it is registered on the beacon agent,
    which is part of the snapshotted simulation graph.  The ``recovered_at``
    guard makes a stale watch from an earlier recovery a no-op.
    """

    __slots__ = ("injector", "name", "recovered_at")

    def __init__(self, injector: FaultInjector, name: str, recovered_at: float) -> None:
        self.injector = injector
        self.name = name
        self.recovered_at = recovered_at

    def __call__(self, _peer: str, _beacon: Any) -> None:
        injector = self.injector
        if injector._await_rejoin.get(self.name) == self.recovered_at:
            del injector._await_rejoin[self.name]
            injector.rejoin_delays.append(injector.sim.now - self.recovered_at)

"""Deterministic expansion of fault knobs into an explicit event timeline.

The reproducibility contract of the whole subsystem lives here: a
:class:`FaultSchedule` turns a handful of seeded knobs (:class:`FaultKnobs`)
into an explicit, sorted list of :class:`FaultEvent` s as a *pure function of
``(seed, knobs, node names, window)``*.  Nothing in this module ever touches
a simulator or its random streams — the schedule draws from its own
generators, derived with the same :func:`~repro.simcore.rng.derive_seed`
scheme the simulator uses, so:

* the same ``(seed, knobs)`` always expands to the same timeline, no matter
  what the simulation itself draws (property-tested);
* each node's crash/recovery sequence comes from a generator derived from
  the *node's name*, so adding or removing other nodes never perturbs it;
* a null schedule (:attr:`FaultKnobs.is_null`) expands to **no events and no
  draws at all** — armed on a simulation, it is byte-invisible (benchmark
  E14 asserts the delivered-frame sequence is identical to an injector-free
  run at fixed seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.faults.adversary import ADVERSARY_PROFILES, MIXED_PROFILE
from repro.simcore.rng import derive_seed

#: Event kinds a schedule can emit (paired: every start has a matching end).
CRASH = "crash"
RECOVER = "recover"
RADIO_DEGRADE = "radio_degrade"
RADIO_RESTORE = "radio_restore"
LOSS_START = "loss_start"
LOSS_END = "loss_end"


@dataclass(frozen=True)
class FaultKnobs:
    """Every tunable of the fault subsystem, validated fail-fast.

    The first five fields are the sweepable scenario knobs (mirrored on
    :class:`~repro.scenarios.base.BaseScenarioConfig`); the rest shape the
    burst processes and rarely need changing.

    Attributes
    ----------
    crash_rate:
        Expected crashes per node per simulated second (Poisson process per
        node; 0 disables churn).
    mean_downtime:
        Mean seconds a crashed node stays down (exponentially distributed).
    radio_degradation:
        Extra receiver noise figure in dB applied during fleet-wide
        degradation bursts (0 disables the burst process).
    malicious_fraction:
        Fraction of the fleet assigned an adversary profile; the count is
        ``round(fraction * n)``, so small fleets with small fractions may
        legitimately end up with zero adversaries.
    adversary_profile:
        Profile name from :data:`~repro.faults.adversary.ADVERSARY_PROFILES`
        (or ``"mixed"`` to cycle through all of them).
    loss_burst_rate:
        Fleet-wide message-loss bursts per second (0 disables).
    loss_burst_probability:
        Extra frame-drop probability while a loss burst is active.
    degradation_rate:
        Degradation bursts per second while ``radio_degradation > 0``.
    degradation_duration:
        Mean seconds one degradation burst lasts.
    loss_burst_duration:
        Mean seconds one message-loss burst lasts.
    """

    crash_rate: float = 0.0
    mean_downtime: float = 5.0
    radio_degradation: float = 0.0
    malicious_fraction: float = 0.0
    adversary_profile: str = "liar"
    loss_burst_rate: float = 0.0
    loss_burst_probability: float = 0.5
    degradation_rate: float = 0.05
    degradation_duration: float = 3.0
    loss_burst_duration: float = 1.5

    def __post_init__(self) -> None:
        """Fail fast on nonsensical knob values (these are swept via --set)."""
        if self.crash_rate < 0:
            raise ValueError(f"crash_rate must be >= 0, got {self.crash_rate}")
        if self.mean_downtime <= 0:
            raise ValueError(
                f"mean_downtime must be positive, got {self.mean_downtime}"
            )
        if self.radio_degradation < 0:
            raise ValueError(
                f"radio_degradation must be >= 0 dB, got {self.radio_degradation}"
            )
        if not 0.0 <= self.malicious_fraction <= 1.0:
            raise ValueError(
                f"malicious_fraction must be in [0, 1], got {self.malicious_fraction}"
            )
        known = sorted(ADVERSARY_PROFILES) + [MIXED_PROFILE]
        if self.adversary_profile not in known:
            raise ValueError(
                f"unknown adversary_profile {self.adversary_profile!r} "
                f"(known: {', '.join(known)})"
            )
        if self.loss_burst_rate < 0:
            raise ValueError(
                f"loss_burst_rate must be >= 0, got {self.loss_burst_rate}"
            )
        if not 0.0 <= self.loss_burst_probability <= 1.0:
            raise ValueError(
                "loss_burst_probability must be in [0, 1], "
                f"got {self.loss_burst_probability}"
            )
        if self.degradation_rate < 0:
            raise ValueError(
                f"degradation_rate must be >= 0, got {self.degradation_rate}"
            )
        if self.degradation_duration <= 0:
            raise ValueError(
                f"degradation_duration must be positive, got {self.degradation_duration}"
            )
        if self.loss_burst_duration <= 0:
            raise ValueError(
                f"loss_burst_duration must be positive, got {self.loss_burst_duration}"
            )

    @property
    def is_null(self) -> bool:
        """Whether these knobs inject nothing at all (the default)."""
        return (
            self.crash_rate == 0.0
            and self.radio_degradation == 0.0
            and self.loss_burst_rate == 0.0
            and self.malicious_fraction == 0.0
        )


@dataclass(frozen=True)
class FaultEvent:
    """One entry of an expanded fault timeline.

    ``node`` is set for crash/recover events; ``magnitude`` carries the dB
    bump for radio events and the drop probability for loss events, on both
    the start *and* the matching end event so the injector can maintain a
    stack of overlapping bursts without pairing state.
    """

    time: float
    kind: str
    node: str = ""
    magnitude: float = 0.0


class FaultSchedule:
    """Pure, seeded expansion of :class:`FaultKnobs` into fault events."""

    def __init__(self, knobs: FaultKnobs, seed: int = 0) -> None:
        self.knobs = knobs
        self.seed = int(seed)

    def _rng(self, label: str) -> np.random.Generator:
        """A private generator for one sub-process of the schedule."""
        return np.random.default_rng(derive_seed(self.seed, f"faults:{label}"))

    # ---------------------------------------------------------- adversaries

    def adversary_assignment(self, node_names: Sequence[str]) -> Dict[str, str]:
        """Seeded ``node name → profile name`` map for the malicious subset.

        Picks ``round(malicious_fraction · n)`` of the (sorted) names without
        replacement.  ``"mixed"`` cycles deterministically through every
        registered profile in name order.  Draws nothing when the resulting
        count is zero.
        """
        fraction = self.knobs.malicious_fraction
        names = sorted(node_names)
        count = int(fraction * len(names) + 0.5)
        if count == 0:
            return {}
        rng = self._rng("adversaries")
        chosen = sorted(rng.choice(names, size=count, replace=False).tolist())
        if self.knobs.adversary_profile == MIXED_PROFILE:
            cycle = sorted(ADVERSARY_PROFILES)
            return {name: cycle[i % len(cycle)] for i, name in enumerate(chosen)}
        return {name: self.knobs.adversary_profile for name in chosen}

    # ------------------------------------------------------------- timeline

    def timeline(
        self, node_names: Sequence[str], start: float, duration: float
    ) -> List[FaultEvent]:
        """All fault events whose *start* falls in ``[start, start+duration)``.

        Recovery / restore events may land beyond the window end — a crash
        near the end of a run legitimately outlives it; armed on a simulator
        they simply stay queued past ``run(until=...)``.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        end = start + duration
        events: List[FaultEvent] = []
        knobs = self.knobs
        if knobs.crash_rate > 0:
            for name in sorted(node_names):
                # Per-node generator, additionally qualified by the window
                # start so consecutive run() windows stay independent.
                rng = self._rng(f"crash:{name}@{start!r}")
                t = start
                while True:
                    t += float(rng.exponential(1.0 / knobs.crash_rate))
                    if t >= end:
                        break
                    downtime = float(rng.exponential(knobs.mean_downtime))
                    events.append(FaultEvent(t, CRASH, node=name))
                    events.append(FaultEvent(t + downtime, RECOVER, node=name))
                    t += downtime
        if knobs.radio_degradation > 0 and knobs.degradation_rate > 0:
            events.extend(
                self._bursts(
                    "radio",
                    start,
                    end,
                    rate=knobs.degradation_rate,
                    mean_duration=knobs.degradation_duration,
                    magnitude=knobs.radio_degradation,
                    start_kind=RADIO_DEGRADE,
                    end_kind=RADIO_RESTORE,
                )
            )
        if knobs.loss_burst_rate > 0 and knobs.loss_burst_probability > 0:
            events.extend(
                self._bursts(
                    "loss",
                    start,
                    end,
                    rate=knobs.loss_burst_rate,
                    mean_duration=knobs.loss_burst_duration,
                    magnitude=knobs.loss_burst_probability,
                    start_kind=LOSS_START,
                    end_kind=LOSS_END,
                )
            )
        events.sort(key=lambda e: (e.time, e.kind, e.node))
        return events

    def _bursts(
        self,
        label: str,
        start: float,
        end: float,
        rate: float,
        mean_duration: float,
        magnitude: float,
        start_kind: str,
        end_kind: str,
    ) -> List[FaultEvent]:
        """One fleet-wide Poisson burst process; bursts may overlap."""
        rng = self._rng(f"{label}@{start!r}")
        events: List[FaultEvent] = []
        t = start
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= end:
                break
            length = float(rng.exponential(mean_duration))
            events.append(FaultEvent(t, start_kind, magnitude=magnitude))
            events.append(FaultEvent(t + length, end_kind, magnitude=magnitude))
        return events

    # -------------------------------------------------------------- queries

    def expected_crashes(self, node_count: int, duration: float) -> float:
        """Expected crash count (diagnostics; ignores downtime pauses)."""
        return self.knobs.crash_rate * node_count * duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule(seed={self.seed}, knobs={self.knobs})"


def null_schedule(seed: int = 0) -> FaultSchedule:
    """A schedule that injects nothing (used by determinism tests)."""
    return FaultSchedule(FaultKnobs(), seed=seed)

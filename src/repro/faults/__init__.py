"""Deterministic fault & adversary injection (`repro.faults`).

The trust, membership and orchestration layers were designed for disturbed
fleets; this package supplies the disturbances, reproducibly:

* :mod:`repro.faults.schedule` — :class:`FaultKnobs` and
  :class:`FaultSchedule`: seeded knobs expanded into an explicit event
  timeline as a pure function of ``(seed, knobs)``.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: applies the
  timeline live (node crash/recovery, radio degradation, message-loss
  bursts) and assigns adversary profiles.
* :mod:`repro.faults.adversary` — composable malicious behaviours
  (result-corrupting liar, free-rider, reputation-inflating beaconer).

Determinism contract (asserted by benchmark E14 and the property suite):
a null schedule draws nothing and schedules nothing, so a simulation with an
idle injector is byte-identical to one without an injector; any non-null
schedule is reproducible from ``(seed, knobs)`` alone.  See
``docs/FAULTS.md`` for the knob table.
"""

from repro.faults.adversary import (
    ADVERSARY_PROFILES,
    AdversaryProfile,
    CorruptedResult,
    FreeRider,
    MIXED_PROFILE,
    ReputationInflatingBeaconer,
    ResultCorruptingLiar,
    apply_profile,
    is_corrupted,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    FaultEvent,
    FaultKnobs,
    FaultSchedule,
    null_schedule,
)

__all__ = [
    "ADVERSARY_PROFILES",
    "AdversaryProfile",
    "CorruptedResult",
    "FaultEvent",
    "FaultInjector",
    "FaultKnobs",
    "FaultSchedule",
    "FreeRider",
    "MIXED_PROFILE",
    "ReputationInflatingBeaconer",
    "ResultCorruptingLiar",
    "apply_profile",
    "is_corrupted",
    "null_schedule",
]

"""Composable adversary behaviour profiles (RQ3 threat models).

A profile configures one :class:`~repro.core.api.AirDnDNode` to misbehave in
a specific, detectable-or-not way; the fault injector assigns profiles to a
seeded ``malicious_fraction`` of the fleet and re-applies them after a node
recovers from a crash (recovery rebuilds the mesh stack, which drops
beacon-level profile hooks).

Three profiles ship, matching the trust layer's three defences:

* :class:`ResultCorruptingLiar` — fabricates results through the executor's
  ``result_corruptor`` hook.  Caught by redundant execution: two liars wrap
  their fabrications with their own names, so no two corrupted values can
  ever agree in a vote, and the strict-majority quorum keeps a lone liar
  from winning one.
* :class:`FreeRider` — accepts every admissible offer and never replies.
  Caught by offer timeouts, which feed the requester's reputation store.
* :class:`ReputationInflatingBeaconer` — advertises a too-good self-image
  (maximum trust, huge compute headroom, empty queue) to attract placements
  it then serves at its true, unimproved capacity.  Degrades fleet latency;
  only local experience (reputation) corrects for it, since beacons are
  self-reported by design.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Type

#: Sentinel profile name that cycles through every registered profile.
MIXED_PROFILE = "mixed"


@dataclass(frozen=True)
class CorruptedResult:
    """A fabricated task result, tagged with the liar that produced it.

    Wrapping (rather than replacing with a constant) keeps two properties
    the integrity experiments need: corrupted values are *recognisable*
    (``is_corrupted``), so the wrong-result-acceptance metric needs no task
    ground truth; and two independent liars produce *unequal* values (the
    ``by`` field differs), so fabrications can never form a voting quorum by
    accident.
    """

    original: Any
    by: str

    #: Duck-typed marker checked by the wrong-result-acceptance metric.
    is_corrupted = True


class AdversaryProfile:
    """Base class: applies one malicious behaviour to an AirDnD node.

    ``apply`` must be idempotent-safe: the injector re-applies profiles on
    every recovery, against a freshly rebuilt mesh stack.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    def apply(self, node: Any) -> None:
        """Configure ``node`` (an :class:`~repro.core.api.AirDnDNode`)."""
        raise NotImplementedError


class ResultCorruptingLiar(AdversaryProfile):
    """Executes tasks but returns fabricated results."""

    name = "liar"

    def apply(self, node: Any) -> None:
        node.executor.result_corruptor = ResultCorruptor(node.name)


class ResultCorruptor:
    """Wraps result values as :class:`CorruptedResult` (picklable callable).

    Installed on ``executor.result_corruptor``, so it is part of the
    simulation graph snapshots serialise — a closure here would break the
    pickle round-trip.
    """

    __slots__ = ("by",)

    def __init__(self, by: str) -> None:
        self.by = by

    def __call__(self, value: Any) -> CorruptedResult:
        return CorruptedResult(original=value, by=self.by)


class FreeRider(AdversaryProfile):
    """Accepts offers (implicitly, by never rejecting) and never replies."""

    name = "free_rider"

    def apply(self, node: Any) -> None:
        node.executor.silent = True


class ReputationInflatingBeaconer(AdversaryProfile):
    """Advertises an inflated self-image in every outgoing beacon."""

    name = "inflator"

    #: Advertised headroom, far beyond any honest fleet member.
    CLAIMED_HEADROOM_OPS = 1e12

    def apply(self, node: Any) -> None:
        # Registered after the node's own enricher, so the lie overwrites
        # the honest values.  Recovery rebuilds the beacon agent, which is
        # why the injector re-applies profiles then.
        node.mesh.beacon_agent.add_enricher(
            BeaconInflater(self.CLAIMED_HEADROOM_OPS)
        )


class BeaconInflater:
    """Beacon enricher advertising an inflated self-image (picklable)."""

    __slots__ = ("claimed_headroom_ops",)

    def __init__(self, claimed_headroom_ops: float) -> None:
        self.claimed_headroom_ops = claimed_headroom_ops

    def __call__(self, beacon):
        return replace(
            beacon,
            trust_score=1.0,
            compute_headroom_ops=self.claimed_headroom_ops,
            queue_length=0,
        )


#: Registered profiles: ``name → profile class``.
ADVERSARY_PROFILES: Dict[str, Type[AdversaryProfile]] = {
    profile.name: profile
    for profile in (ResultCorruptingLiar, FreeRider, ReputationInflatingBeaconer)
}


def apply_profile(node: Any, profile_name: str) -> AdversaryProfile:
    """Instantiate and apply the registered profile ``profile_name``."""
    try:
        profile_cls = ADVERSARY_PROFILES[profile_name]
    except KeyError:
        known = ", ".join(sorted(ADVERSARY_PROFILES))
        raise ValueError(
            f"unknown adversary profile {profile_name!r} (known: {known})"
        ) from None
    profile = profile_cls()
    profile.apply(node)
    return profile


def is_corrupted(value: Any) -> bool:
    """Whether a task-result value is a recognised fabrication."""
    return bool(getattr(value, "is_corrupted", False))

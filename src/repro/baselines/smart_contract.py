"""Smart-contract style decentralised allocation (after Xu et al., CCGrid'22).

The reference scheme registers geo-distributed edge providers on a ledger;
requesters post resource requests, providers claim them first-come-first-
served after locking collateral, and misbehaviour slashes the collateral and
the provider's on-ledger reputation.  The economic machinery is reproduced
without an actual blockchain: a :class:`Ledger` records providers, claims,
collateral and reputation, and a fixed *block interval* delays every
allocation decision (the cost of consensus, which is what makes this baseline
slower than AirDnD's purely local decisions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.candidate import CandidateScore
from repro.core.models import TaskDescription


@dataclass
class ProviderAccount:
    """One provider's on-ledger state."""

    name: str
    collateral: float = 10.0
    reputation: float = 1.0
    active_claims: int = 0
    completed: int = 0
    slashed: int = 0


@dataclass
class Claim:
    """A provider's claim on a posted request."""

    task_id: int
    provider: str
    claimed_at_block: int


class Ledger:
    """A minimal ledger of providers, claims and reputation."""

    def __init__(self, block_interval_s: float = 0.5, min_collateral: float = 1.0) -> None:
        self.block_interval_s = block_interval_s
        self.min_collateral = min_collateral
        self.accounts: Dict[str, ProviderAccount] = {}
        self.claims: Dict[int, Claim] = {}
        self.block_height = 0

    def register(self, provider: str, collateral: float = 10.0) -> ProviderAccount:
        """Register (or return) a provider account."""
        if provider not in self.accounts:
            self.accounts[provider] = ProviderAccount(name=provider, collateral=collateral)
        return self.accounts[provider]

    def advance_block(self) -> int:
        """Mine one block (advances allocation rounds)."""
        self.block_height += 1
        return self.block_height

    def eligible(self, provider: str) -> bool:
        """Whether a provider may claim work (enough collateral, not banned)."""
        account = self.accounts.get(provider)
        if account is None:
            return False
        return account.collateral >= self.min_collateral and account.reputation > 0.2

    def claim(self, task_id: int, provider: str) -> Optional[Claim]:
        """First eligible claimer wins; later claims are rejected."""
        if task_id in self.claims or not self.eligible(provider):
            return None
        claim = Claim(task_id=task_id, provider=provider, claimed_at_block=self.block_height)
        self.claims[task_id] = claim
        self.accounts[provider].active_claims += 1
        return claim

    def settle_success(self, task_id: int) -> None:
        """Release collateral and bump reputation on successful completion."""
        claim = self.claims.pop(task_id, None)
        if claim is None:
            return
        account = self.accounts[claim.provider]
        account.active_claims = max(0, account.active_claims - 1)
        account.completed += 1
        account.reputation = min(2.0, account.reputation + 0.05)

    def settle_failure(self, task_id: int, slash_amount: float = 2.0) -> None:
        """Slash collateral and reputation when the provider fails."""
        claim = self.claims.pop(task_id, None)
        if claim is None:
            return
        account = self.accounts[claim.provider]
        account.active_claims = max(0, account.active_claims - 1)
        account.slashed += 1
        account.collateral = max(0.0, account.collateral - slash_amount)
        account.reputation = max(0.0, account.reputation - 0.25)


class SmartContractAllocator:
    """Allocation engine: requests are claimed FCFS by eligible providers."""

    def __init__(self, ledger: Optional[Ledger] = None) -> None:
        self.ledger = ledger or Ledger()
        self.allocations: Dict[int, str] = {}

    def allocate(
        self, task: TaskDescription, provider_names: List[str]
    ) -> Optional[str]:
        """Allocate a task to the first eligible provider (registering new ones).

        Providers "race" in the order given (which in the reference system is
        network arrival order); the ledger arbitrates.
        """
        for provider in provider_names:
            self.ledger.register(provider)
        self.ledger.advance_block()
        for provider in provider_names:
            claim = self.ledger.claim(task.task_id, provider)
            if claim is not None:
                self.allocations[task.task_id] = provider
                return provider
        return None

    def complete(self, task_id: int, success: bool) -> None:
        """Settle a finished allocation on the ledger."""
        if success:
            self.ledger.settle_success(task_id)
        else:
            self.ledger.settle_failure(task_id)


class ContractPlacement:
    """Placement adapter running the smart-contract allocation per task."""

    def __init__(self, allocator: Optional[SmartContractAllocator] = None) -> None:
        self.allocator = allocator or SmartContractAllocator()

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Allocate via the ledger; losers keep their relative order as backups."""
        if not candidates:
            return []
        provider_names = [c.name for c in candidates]
        winner = self.allocator.allocate(task, provider_names)
        if winner is None:
            return []
        ordered = [c for c in candidates if c.name == winner] + [
            c for c in candidates if c.name != winner
        ]
        return ordered[:count]

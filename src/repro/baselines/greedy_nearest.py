"""Nearest-neighbour baseline: offload to whoever is closest.

Distance is a reasonable proxy for link quality but ignores compute headroom,
data availability, contact time and trust — exactly the properties RQ1 says
must be considered.  Used in the E6 ablation.
"""

from __future__ import annotations

from typing import List

from repro.core.candidate import CandidateScore
from repro.core.models import TaskDescription


class NearestNeighborPlacement:
    """Pick the geographically nearest eligible candidates."""

    def choose(
        self, candidates: List[CandidateScore], task: TaskDescription, count: int = 1
    ) -> List[CandidateScore]:
        """Return ``count`` candidates ordered by distance."""
        ordered = sorted(candidates, key=lambda c: (c.neighbor.distance_m, c.name))
        return ordered[:count]
